"""Backward (recurrent) skip connections — the paper's first future-work item.

"In future work, we plan to further improve the performance of SNNs by
incorporating backward connections into our hyperparameter optimization."
(Section V.)  A backward connection routes the output of a *later* node back
into an *earlier* layer; inside a single time step that would create a cycle,
so — as is standard for recurrent SNNs — the connection is applied across
time: layer ``j`` at step ``t`` receives node ``i``'s output from step
``t - 1``.  At the first step the contribution is zero.

:class:`RecurrentDAGBlock` extends :class:`~repro.models.blocks.DAGBlock` with
a set of such connections, each typed like forward skips (ASC adds the
delayed feature map, DSC concatenates it), and
:func:`extend_search_space_with_backward` builds the enlarged search space so
the existing Bayesian optimizer can search over backward connections too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.adjacency import ASC, DSC, NO_CONNECTION, BlockAdjacency
from repro.core.search_space import ArchitectureSpec, BlockSearchInfo, SearchSpace
from repro.models.blocks import BlockSpec, DAGBlock, NeuronConfig
from repro.nn import Conv2d
from repro.nn.module import ModuleList
from repro.tensor import Tensor, ops
from repro.tensor.random import default_rng


@dataclass(frozen=True)
class BackwardConnection:
    """One backward (recurrent) connection inside a block.

    Attributes
    ----------
    source_node:
        DAG node whose *previous-time-step* output is routed back
        (1 = first layer's output, ..., depth = block output).
    destination_layer:
        0-based index of the layer receiving the delayed signal.
    code:
        Connection type: :data:`~repro.core.adjacency.ASC` (add) or
        :data:`~repro.core.adjacency.DSC` (concatenate).
    """

    source_node: int
    destination_layer: int
    code: int

    def __post_init__(self) -> None:
        if self.code not in (DSC, ASC):
            raise ValueError(f"backward connection code must be DSC or ASC, got {self.code}")
        if self.source_node < 1:
            raise ValueError("backward connections must originate from a layer output (node >= 1)")
        if self.destination_layer < 0:
            raise ValueError("destination_layer must be >= 0")
        if self.source_node <= self.destination_layer:
            raise ValueError(
                "a connection from an earlier node to a later layer is a forward skip; "
                "use the BlockAdjacency for it"
            )


class RecurrentDAGBlock(DAGBlock):
    """A :class:`DAGBlock` extended with backward (time-delayed) connections."""

    def __init__(
        self,
        spec: BlockSpec,
        adjacency: Optional[BlockAdjacency] = None,
        backward_connections: Sequence[BackwardConnection] = (),
        spiking: bool = True,
        neuron_config: Optional[NeuronConfig] = None,
        rng=None,
    ) -> None:
        rng = default_rng(rng)
        backward_connections = tuple(backward_connections)
        for connection in backward_connections:
            if connection.source_node > spec.depth:
                raise ValueError(
                    f"backward source node {connection.source_node} outside a depth-{spec.depth} block"
                )
            if connection.destination_layer >= spec.depth:
                raise ValueError(
                    f"backward destination layer {connection.destination_layer} outside a depth-{spec.depth} block"
                )
            if connection.code == DSC and not spec.layers[connection.destination_layer].allow_dsc_input:
                raise ValueError(
                    f"layer {connection.destination_layer} ({spec.layers[connection.destination_layer].kind}) "
                    "cannot accept DSC input"
                )

        # Build the base block with input channels widened for DSC backward edges:
        # we widen after calling super().__init__ by rebuilding the affected layers,
        # so instead we pre-compute per-layer extra channels and rebuild cleanly.
        self._backward_connections = backward_connections
        super().__init__(spec, adjacency, spiking=spiking, neuron_config=neuron_config, rng=rng)

        node_channels = spec.node_channels()
        self.backward_projections = ModuleList()
        self._backward_projection_index: Dict[Tuple[int, int], int] = {}
        extra_channels = [0] * spec.depth
        for connection in backward_connections:
            source_channels = node_channels[connection.source_node]
            sequential_channels = node_channels[connection.destination_layer]
            if connection.code == DSC:
                extra_channels[connection.destination_layer] += source_channels
            elif source_channels != sequential_channels:
                projection = Conv2d(source_channels, sequential_channels, 1, bias=False, rng=rng)
                key = (connection.source_node, connection.destination_layer)
                self._backward_projection_index[key] = len(self.backward_projections)
                self.backward_projections.append(projection)

        # rebuild the synaptic layers whose input grew because of DSC backward edges
        from repro.models.blocks import _DAGLayer  # local import to reuse the layer builder

        for layer_index, extra in enumerate(extra_channels):
            if extra:
                new_in = self._layer_input_channels[layer_index] + extra
                self._layer_input_channels[layer_index] = new_in
                replacement = _DAGLayer(
                    spec.layers[layer_index].kind,
                    new_in,
                    spec.layers[layer_index].out_channels,
                    self.spiking,
                    self.neuron_config,
                    rng,
                )
                self.layers._items[layer_index] = replacement
                self.layers._modules[str(layer_index)] = replacement
                object.__setattr__(self.layers, str(layer_index), replacement)

        self._previous_node_outputs: Optional[List[Tensor]] = None

    # ------------------------------------------------------------------
    @property
    def backward_connections(self) -> Tuple[BackwardConnection, ...]:
        """The block's backward connections."""
        return self._backward_connections

    def reset_state(self) -> None:
        """Clear the delayed node outputs (called at the start of every sequence)."""
        self._previous_node_outputs = None

    def detach_state(self) -> None:
        """Cut the delayed outputs from the autodiff graph (truncated BPTT)."""
        if self._previous_node_outputs is not None:
            self._previous_node_outputs = [
                Tensor(node.data.copy()) if node is not None else None
                for node in self._previous_node_outputs
            ]

    # ------------------------------------------------------------------
    def _delayed_output(self, source_node: int, like: Tensor, channels: int) -> Tensor:
        """Previous-step output of ``source_node`` or zeros at the first step."""
        if self._previous_node_outputs is not None:
            stored = self._previous_node_outputs[source_node]
            if stored is not None:
                return stored
        batch, _, height, width = like.shape
        return Tensor(np.zeros((batch, channels, height, width)))

    def forward(self, x: Tensor) -> Tensor:
        node_channels = self.spec.node_channels()
        node_outputs: List[Tensor] = [x]
        backward_by_layer: Dict[int, List[BackwardConnection]] = {}
        for connection in self._backward_connections:
            backward_by_layer.setdefault(connection.destination_layer, []).append(connection)

        for layer_index, layer in enumerate(self.layers):
            destination = layer_index + 1
            combined = node_outputs[layer_index]
            concat_inputs: List[Tensor] = []
            # forward skips (same semantics as DAGBlock)
            for source, code in self.adjacency.sources_of(layer_index):
                source_output = node_outputs[source]
                if code == ASC:
                    key = (source, destination)
                    if key in self._projection_index:
                        source_output = self.projections[self._projection_index[key]](source_output)
                    combined = combined + source_output
                elif code == DSC:
                    concat_inputs.append(source_output)
            # backward (delayed) connections
            for connection in backward_by_layer.get(layer_index, []):
                delayed = self._delayed_output(
                    connection.source_node, combined, node_channels[connection.source_node]
                )
                if connection.code == ASC:
                    key = (connection.source_node, connection.destination_layer)
                    if key in self._backward_projection_index:
                        delayed = self.backward_projections[self._backward_projection_index[key]](delayed)
                    combined = combined + delayed
                else:
                    concat_inputs.append(delayed)
            if concat_inputs:
                combined = ops.concat([combined] + concat_inputs, axis=1)
            node_outputs.append(layer(combined))

        self._previous_node_outputs = list(node_outputs)
        return node_outputs[-1]

    def extra_repr(self) -> str:
        return super().extra_repr() + f", backward={len(self._backward_connections)}"


def enumerate_backward_positions(depth: int) -> List[Tuple[int, int]]:
    """All legal (source_node, destination_layer) backward positions of a block."""
    positions = []
    for destination_layer in range(depth):
        for source_node in range(destination_layer + 1, depth + 1):
            positions.append((source_node, destination_layer))
    return positions


def extend_search_space_with_backward(
    space: SearchSpace,
    allowed_codes: Sequence[int] = (NO_CONNECTION, ASC),
) -> "BackwardSearchSpace":
    """Return a search space whose blocks also expose backward positions.

    The backward positions are appended as additional categorical dimensions
    per block (encoded exactly like forward positions), so the existing
    Bayesian optimizer searches forward and backward connections jointly —
    the paper's stated future-work extension.  By default only addition-type
    backward connections are allowed (the common choice for recurrent SNNs);
    pass ``allowed_codes=(0, 1, 2)`` to include concatenation.
    """
    return BackwardSearchSpace(space, allowed_codes=tuple(allowed_codes))


class BackwardSearchSpace:
    """Joint search space over forward adjacencies and backward connections.

    Points of this space are ``(ArchitectureSpec, per-block backward lists)``
    pairs, encoded as the concatenation of the forward encoding and one code
    per backward position per block.  The class mirrors the subset of the
    :class:`~repro.core.search_space.SearchSpace` interface the optimizers use
    (``encoding_length``, ``size``, ``sample_batch``, ``default_spec``,
    ``contains``), so :class:`~repro.core.bayes_opt.BayesianOptimizer` can run
    on it unchanged when paired with an objective that understands the joint
    specification (see ``examples/`` and the recurrent tests).
    """

    def __init__(self, forward_space: SearchSpace, allowed_codes: Tuple[int, ...] = (NO_CONNECTION, ASC)) -> None:
        if not allowed_codes or any(code not in (NO_CONNECTION, DSC, ASC) for code in allowed_codes):
            raise ValueError(f"invalid allowed_codes {allowed_codes}")
        self.forward_space = forward_space
        self.allowed_codes = tuple(allowed_codes)
        self._backward_positions = [
            enumerate_backward_positions(info.depth) for info in forward_space.block_infos
        ]
        self.name = f"{forward_space.name}+backward"

    # -- geometry ------------------------------------------------------
    def backward_positions(self, block_index: int) -> List[Tuple[int, int]]:
        """Backward positions of one block."""
        return list(self._backward_positions[block_index])

    def encoding_length(self) -> int:
        """Total encoding dimensionality (forward + backward)."""
        return self.forward_space.encoding_length() + sum(len(p) for p in self._backward_positions)

    def size(self) -> int:
        """Number of joint configurations."""
        total = self.forward_space.size()
        for positions in self._backward_positions:
            total *= len(self.allowed_codes) ** len(positions)
        return total

    # -- encode / decode -----------------------------------------------
    def encode(self, forward_spec: ArchitectureSpec, backward: Sequence[Sequence[BackwardConnection]]) -> np.ndarray:
        """Encode a joint configuration into a flat integer vector."""
        parts = [self.forward_space.encode(forward_spec)]
        for block_index, positions in enumerate(self._backward_positions):
            codes = {(c.source_node, c.destination_layer): c.code for c in backward[block_index]}
            parts.append(np.array([codes.get(pos, NO_CONNECTION) for pos in positions], dtype=np.int64))
        return np.concatenate(parts)

    def decode(self, encoding: Sequence[int]) -> Tuple[ArchitectureSpec, List[List[BackwardConnection]]]:
        """Inverse of :meth:`encode`."""
        encoding = np.asarray(encoding, dtype=np.int64).reshape(-1)
        if encoding.shape[0] != self.encoding_length():
            raise ValueError(
                f"encoding has length {encoding.shape[0]}, expected {self.encoding_length()}"
            )
        forward_length = self.forward_space.encoding_length()
        forward_spec = self.forward_space.decode(encoding[:forward_length])
        offset = forward_length
        backward: List[List[BackwardConnection]] = []
        for positions in self._backward_positions:
            block_connections = []
            for position, code in zip(positions, encoding[offset : offset + len(positions)]):
                code = int(code)
                if code not in self.allowed_codes:
                    raise ValueError(f"backward code {code} not allowed")
                if code != NO_CONNECTION:
                    block_connections.append(BackwardConnection(position[0], position[1], code))
            offset += len(positions)
            backward.append(block_connections)
        return forward_spec, backward

    # -- sampling --------------------------------------------------------
    def default(self) -> Tuple[ArchitectureSpec, List[List[BackwardConnection]]]:
        """The forward-default configuration with no backward connections."""
        return self.forward_space.default_spec(), [[] for _ in self._backward_positions]

    def sample(self, rng=None) -> Tuple[ArchitectureSpec, List[List[BackwardConnection]]]:
        """Draw one joint configuration uniformly at random."""
        rng = default_rng(rng)
        forward_spec = self.forward_space.sample(rng)
        backward: List[List[BackwardConnection]] = []
        for positions in self._backward_positions:
            block_connections = []
            for position in positions:
                code = int(rng.choice(self.allowed_codes))
                if code != NO_CONNECTION:
                    block_connections.append(BackwardConnection(position[0], position[1], code))
            backward.append(block_connections)
        return forward_spec, backward
