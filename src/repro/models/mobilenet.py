"""MobileNetV2-style template.

MobileNetV2 is built from *inverted residual* blocks: a 1x1 expansion
convolution, a 3x3 depthwise convolution on the expanded representation, and a
1x1 linear projection back down, with an addition shortcut from the block
input to the block output whenever the geometry allows it.  In the adjacency
formulation each inverted residual block is a depth-3 :class:`DAGBlock` with
layer kinds ``[conv1x1, dwconv3x3, conv1x1]``; the default adjacency carries a
single ASC connection from node 0 (block input) to node 3 (block output's
layer) — the inverted-residual shortcut.

Depthwise layers cannot accept concatenation inputs (their channel count is
structurally tied to their group count), so the derived search space
automatically restricts those positions to {none, ASC}; this is handled by
``LayerSpec(allow_dsc_input=False)``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.adjacency import ASC, BlockAdjacency
from repro.models.blocks import BlockSpec, LayerSpec
from repro.models.template import NetworkTemplate


def _inverted_residual_spec(in_channels: int, out_channels: int, expansion: int, name: str) -> BlockSpec:
    """Inverted residual block: expand (1x1) -> depthwise (3x3) -> project (1x1)."""
    hidden = in_channels * expansion
    return BlockSpec(
        in_channels=in_channels,
        layers=[
            LayerSpec("conv1x1", hidden),
            LayerSpec("dwconv3x3", hidden, allow_dsc_input=False),
            LayerSpec("conv1x1", out_channels),
        ],
        name=name,
    )


def _inverted_residual_default(depth: int = 3) -> BlockAdjacency:
    """Default MobileNetV2 wiring: ASC shortcut from block input to block output."""
    adjacency = BlockAdjacency(depth)
    adjacency.matrix[0, depth] = ASC
    return adjacency


def build_mobilenetv2_template(
    input_channels: int = 2,
    num_classes: int = 10,
    stage_channels: Sequence[int] = (8, 16),
    expansion: int = 2,
    width_multiplier: float = 1.0,
) -> NetworkTemplate:
    """Build the scaled MobileNetV2-style template.

    Parameters
    ----------
    stage_channels:
        Output width of each inverted residual block (the original network
        uses 16..320 with expansion 6; the defaults keep two blocks at
        CPU-friendly widths).
    expansion:
        Expansion ratio of the 1x1 expansion convolution.
    """
    widths = [max(2, int(round(c * width_multiplier))) for c in stage_channels]
    block_specs: List[BlockSpec] = []
    transition_channels: List[Optional[int]] = []
    defaults: List[BlockAdjacency] = []

    in_channels = widths[0]
    for stage_index, width in enumerate(widths):
        block_specs.append(
            _inverted_residual_spec(in_channels, width, expansion, name=f"invres{stage_index}")
        )
        defaults.append(_inverted_residual_default())
        if stage_index < len(widths) - 1:
            transition_channels.append(widths[stage_index + 1])
            in_channels = widths[stage_index + 1]
        else:
            transition_channels.append(None)

    return NetworkTemplate(
        name="mobilenetv2",
        input_channels=input_channels,
        num_classes=num_classes,
        stem_channels=widths[0],
        block_specs=block_specs,
        transition_channels=transition_channels,
        default_adjacencies=defaults,
    )
