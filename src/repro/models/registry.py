"""Model registry mapping the paper's architecture names to template builders."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.models.densenet import build_densenet121_template
from repro.models.mobilenet import build_mobilenetv2_template
from repro.models.resnet import build_resnet18_template
from repro.models.single_block import build_single_block_template
from repro.models.template import NetworkTemplate

_BUILDERS: Dict[str, Callable[..., NetworkTemplate]] = {
    "resnet18": build_resnet18_template,
    "densenet121": build_densenet121_template,
    "mobilenetv2": build_mobilenetv2_template,
    "single_block": build_single_block_template,
}

_ALIASES: Dict[str, str] = {
    "resnet": "resnet18",
    "resnet-18": "resnet18",
    "densenet": "densenet121",
    "densenet-121": "densenet121",
    "mobilenet": "mobilenetv2",
    "mobilenet-v2": "mobilenetv2",
    "mobilenet_v2": "mobilenetv2",
    "singleblock": "single_block",
    "single-block": "single_block",
}


def available_models() -> List[str]:
    """Names of the architecture templates the registry can build."""
    return sorted(_BUILDERS)


def get_template(name: str, **kwargs) -> NetworkTemplate:
    """Build the template called ``name`` (paper naming) with optional overrides.

    ``kwargs`` are forwarded to the underlying builder, e.g.
    ``get_template("resnet18", input_channels=2, num_classes=11, width_multiplier=0.5)``.
    """
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in _BUILDERS:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}")
    return _BUILDERS[key](**kwargs)
