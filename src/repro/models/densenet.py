"""DenseNet-121-style template.

DenseNet's defining property is all-to-all concatenation inside each dense
block: layer ``k`` receives the concatenated outputs of *every* earlier layer
and of the block input.  The paper generalises this ("we consider a
generalized version where we vary the number of skip connections") — which is
exactly what the adjacency formulation expresses: the original DenseNet is the
fully-DSC-connected adjacency, and the search can prune or retype individual
connections.

The CPU-scale replica uses two dense blocks of four 3x3 convolutions with a
modest growth-style width, separated by DenseNet's 1x1-conv + average-pool
transition layers.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.adjacency import DSC, BlockAdjacency
from repro.models.blocks import BlockSpec, LayerSpec
from repro.models.template import NetworkTemplate


def build_densenet121_template(
    input_channels: int = 2,
    num_classes: int = 10,
    stage_channels: Sequence[int] = (8, 12),
    layers_per_stage: int = 4,
    width_multiplier: float = 1.0,
) -> NetworkTemplate:
    """Build the scaled DenseNet-121-style template.

    Every block's default adjacency is fully DSC-connected (all-to-all
    concatenation), the signature of DenseNet; transitions compress with a
    1x1 convolution and halve the resolution, as in the original network.
    """
    widths = [max(2, int(round(c * width_multiplier))) for c in stage_channels]
    block_specs: List[BlockSpec] = []
    transition_channels: List[Optional[int]] = []
    defaults: List[BlockAdjacency] = []

    in_channels = widths[0]
    for stage_index, width in enumerate(widths):
        block_specs.append(
            BlockSpec(
                in_channels=in_channels,
                layers=[LayerSpec("conv3x3", width) for _ in range(layers_per_stage)],
                name=f"denseblock{stage_index}",
            )
        )
        defaults.append(BlockAdjacency.fully_connected(layers_per_stage, code=DSC))
        if stage_index < len(widths) - 1:
            transition_channels.append(widths[stage_index + 1])
            in_channels = widths[stage_index + 1]
        else:
            transition_channels.append(None)

    return NetworkTemplate(
        name="densenet121",
        input_channels=input_channels,
        num_classes=num_classes,
        stem_channels=widths[0],
        block_specs=block_specs,
        transition_channels=transition_channels,
        default_adjacencies=defaults,
    )
