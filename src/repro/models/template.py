"""Network templates: full topologies that can instantiate any skip configuration.

A :class:`NetworkTemplate` captures everything about an architecture *except*
the skip connections inside its blocks: the stem, the per-block layer
specifications, the transition layers and the classifier head.  From it one
can

* derive the skip-connection :class:`~repro.core.search_space.SearchSpace`
  (step 1 of the paper's Fig. 2 pipeline),
* obtain the architecture's *default* skip configuration (the one the original
  ANN uses, e.g. residual additions for ResNet),
* instantiate a concrete :class:`SkipConnectionNetwork` — ANN or SNN — for any
  :class:`~repro.core.search_space.ArchitectureSpec` drawn from that space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.adjacency import BlockAdjacency
from repro.core.search_space import ArchitectureSpec, SearchSpace
from repro.models.blocks import (
    BlockSpec,
    ClassifierHead,
    DAGBlock,
    NeuronConfig,
    Stem,
    TransitionLayer,
)
from repro.nn.module import Module, ModuleList
from repro.tensor import Tensor
from repro.tensor.random import default_rng


class SkipConnectionNetwork(Module):
    """A concrete network assembled from a template and an architecture spec.

    Structure: ``stem -> [block -> (transition)]* -> head``.  In the spiking
    variant every activation is a LIF neuron and the head accumulates logits
    in a leaky integrator, so the model must be driven by
    :class:`repro.snn.temporal.TemporalRunner`.
    """

    def __init__(
        self,
        stem: Stem,
        blocks: Sequence[DAGBlock],
        transitions: Sequence[Optional[TransitionLayer]],
        head: ClassifierHead,
        name: str = "network",
        spiking: bool = False,
    ) -> None:
        super().__init__()
        if len(blocks) != len(transitions):
            raise ValueError("blocks and transitions must have the same length (use None entries)")
        self.stem = stem
        self.blocks = ModuleList(blocks)
        # None transitions are stored as placeholders outside the module registry
        self.transitions = ModuleList([t for t in transitions if t is not None])
        self._transition_map: List[Optional[int]] = []
        index = 0
        for transition in transitions:
            if transition is None:
                self._transition_map.append(None)
            else:
                self._transition_map.append(index)
                index += 1
        self.head = head
        self.name = name
        self.spiking = bool(spiking)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        for block_index, block in enumerate(self.blocks):
            out = block(out)
            transition_index = self._transition_map[block_index]
            if transition_index is not None:
                out = self.transitions[transition_index](out)
        return self.head(out)

    def architecture_spec(self) -> ArchitectureSpec:
        """The skip configuration this network was built with."""
        return ArchitectureSpec([block.adjacency for block in self.blocks], name=self.name)

    def extra_repr(self) -> str:
        return f"name={self.name!r}, spiking={self.spiking}, blocks={len(self.blocks)}"


@dataclass
class NetworkTemplate:
    """Recipe for building a family of networks differing only in skip wiring.

    Attributes
    ----------
    name:
        Template name (``"resnet18"``, ``"densenet121"``, ``"mobilenetv2"``,
        ``"single_block"``).
    input_channels:
        Channels of the input data (3 for RGB images, 2 for ON/OFF event frames).
    num_classes:
        Size of the classifier output.
    stem_channels:
        Channels produced by the stem convolution.
    block_specs:
        One :class:`~repro.models.blocks.BlockSpec` per block, in order.  The
        ``in_channels`` of each spec must equal the channels flowing into it
        (stem/transition outputs); this is validated at construction.
    transition_channels:
        For each block, the output channels of the transition placed after it,
        or ``None`` for no transition.
    default_adjacencies:
        The skip configuration of the original (unmodified) architecture.
    """

    name: str
    input_channels: int
    num_classes: int
    stem_channels: int
    block_specs: List[BlockSpec]
    transition_channels: List[Optional[int]]
    default_adjacencies: List[BlockAdjacency] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.block_specs) != len(self.transition_channels):
            raise ValueError("block_specs and transition_channels must have the same length")
        if not self.block_specs:
            raise ValueError("a template needs at least one block")
        if not self.default_adjacencies:
            self.default_adjacencies = [BlockAdjacency(spec.depth) for spec in self.block_specs]
        if len(self.default_adjacencies) != len(self.block_specs):
            raise ValueError("default_adjacencies must match block_specs")
        # validate channel flow
        channels = self.stem_channels
        for index, (spec, transition) in enumerate(zip(self.block_specs, self.transition_channels)):
            if spec.in_channels != channels:
                raise ValueError(
                    f"block {index} ({spec.name!r}) expects {spec.in_channels} input channels "
                    f"but receives {channels}"
                )
            channels = spec.out_channels
            if transition is not None:
                channels = transition
        self._head_channels = channels
        for spec, adjacency in zip(self.block_specs, self.default_adjacencies):
            spec.validate_adjacency(adjacency)

    # ------------------------------------------------------------------
    @property
    def head_channels(self) -> int:
        """Channels entering the classifier head."""
        return self._head_channels

    def search_space(self) -> SearchSpace:
        """The skip-connection search space of this topology."""
        return SearchSpace([spec.search_info() for spec in self.block_specs], name=self.name)

    def default_architecture(self) -> ArchitectureSpec:
        """The original architecture's skip configuration."""
        return ArchitectureSpec(self.default_adjacencies, name=self.name)

    def build(
        self,
        spec: Optional[ArchitectureSpec] = None,
        spiking: bool = False,
        neuron_config: Optional[NeuronConfig] = None,
        rng=None,
    ) -> SkipConnectionNetwork:
        """Instantiate a network for the given architecture spec (default wiring if ``None``)."""
        rng = default_rng(rng)
        neuron_config = neuron_config or NeuronConfig()
        architecture = spec if spec is not None else self.default_architecture()
        if len(architecture.blocks) != len(self.block_specs):
            raise ValueError(
                f"architecture has {len(architecture.blocks)} blocks, template {self.name!r} "
                f"expects {len(self.block_specs)}"
            )
        stem = Stem(self.input_channels, self.stem_channels, spiking=spiking, neuron_config=neuron_config, rng=rng)
        blocks: List[DAGBlock] = []
        transitions: List[Optional[TransitionLayer]] = []
        for block_spec, adjacency, transition_out in zip(
            self.block_specs, architecture.blocks, self.transition_channels
        ):
            blocks.append(
                DAGBlock(block_spec, adjacency, spiking=spiking, neuron_config=neuron_config, rng=rng)
            )
            if transition_out is None:
                transitions.append(None)
            else:
                transitions.append(
                    TransitionLayer(
                        block_spec.out_channels,
                        transition_out,
                        spiking=spiking,
                        neuron_config=neuron_config,
                        rng=rng,
                    )
                )
        head = ClassifierHead(
            self.head_channels, self.num_classes, spiking=spiking, neuron_config=neuron_config, rng=rng
        )
        return SkipConnectionNetwork(stem, blocks, transitions, head, name=self.name, spiking=spiking)
