"""ResNet-18-style template.

ResNet-18 stacks stages of BasicBlocks, each BasicBlock being two 3x3
convolutions with an identity (addition) shortcut around them.  The CPU-scale
replica keeps that defining structure while shrinking widths and depths:

* each *stage* of two BasicBlocks becomes one :class:`DAGBlock` of four 3x3
  convolution layers;
* the original residual shortcuts appear in the default adjacency as
  addition-type (ASC) connections from node 0 to node 2 and from node 2 to
  node 4 — i.e. every pair of convolutions is bridged by an addition, exactly
  the BasicBlock wiring expressed in the paper's adjacency formalism;
* stages are separated by transition layers (1x1 conv + 2x2 average pool)
  that play the role of the strided downsampling convolutions.

The skip-connection search then explores the position, number and type of
those shortcuts, as in Table I.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.adjacency import ASC, BlockAdjacency
from repro.models.blocks import BlockSpec, LayerSpec
from repro.models.template import NetworkTemplate


def _residual_default(depth: int) -> BlockAdjacency:
    """Default ResNet wiring: ASC shortcut bridging every pair of layers."""
    adjacency = BlockAdjacency(depth)
    node = 0
    while node + 2 <= depth:
        adjacency.matrix[node, node + 2] = ASC
        node += 2
    return adjacency


def build_resnet18_template(
    input_channels: int = 2,
    num_classes: int = 10,
    stage_channels: Sequence[int] = (8, 16),
    layers_per_stage: int = 4,
    width_multiplier: float = 1.0,
) -> NetworkTemplate:
    """Build the scaled ResNet-18-style template.

    Parameters
    ----------
    stage_channels:
        Width of each stage; the original network uses (64, 128, 256, 512)
        with 4 convolutions per stage — the default here keeps two stages at
        CPU-friendly widths.
    layers_per_stage:
        Convolutions per stage (4 = two BasicBlocks, as in ResNet-18).
    """
    widths = [max(2, int(round(c * width_multiplier))) for c in stage_channels]
    block_specs: List[BlockSpec] = []
    transition_channels: List[Optional[int]] = []
    defaults: List[BlockAdjacency] = []

    in_channels = widths[0]
    for stage_index, width in enumerate(widths):
        block_specs.append(
            BlockSpec(
                in_channels=in_channels,
                layers=[LayerSpec("conv3x3", width) for _ in range(layers_per_stage)],
                name=f"stage{stage_index}",
            )
        )
        defaults.append(_residual_default(layers_per_stage))
        if stage_index < len(widths) - 1:
            transition_channels.append(widths[stage_index + 1])
            in_channels = widths[stage_index + 1]
        else:
            transition_channels.append(None)

    return NetworkTemplate(
        name="resnet18",
        input_channels=input_channels,
        num_classes=num_classes,
        stem_channels=widths[0],
        block_specs=block_specs,
        transition_channels=transition_channels,
        default_adjacencies=defaults,
    )
