"""Model zoo: DAG skip-blocks and the paper's reference architectures.

The central abstraction is the :class:`~repro.models.blocks.DAGBlock`: a block
of layers whose connectivity is given by a :class:`repro.core.adjacency.BlockAdjacency`
matrix, supporting both DenseNet-like concatenation (DSC) and addition-type
(ASC) skip connections, in both ANN (ReLU) and SNN (LIF neuron) variants.

On top of it, :class:`~repro.models.template.NetworkTemplate` describes a full
topology (stem, blocks, transitions, classifier head) and can instantiate any
point of the skip-connection search space.  The provided templates are
CPU-scale replicas of the three architectures adapted in the paper — ResNet-18,
DenseNet-121 and MobileNetV2 — plus the single-block 4-convolution model used
for the Fig. 1 analysis.
"""

from repro.models.blocks import (
    ClassifierHead,
    DAGBlock,
    LayerSpec,
    BlockSpec,
    NeuronConfig,
    Stem,
    TransitionLayer,
)
from repro.models.template import NetworkTemplate, SkipConnectionNetwork
from repro.models.single_block import build_single_block_template, single_block_sweep_spec
from repro.models.resnet import build_resnet18_template
from repro.models.densenet import build_densenet121_template
from repro.models.mobilenet import build_mobilenetv2_template
from repro.models.registry import available_models, get_template
from repro.models.recurrent import (
    BackwardConnection,
    BackwardSearchSpace,
    RecurrentDAGBlock,
    enumerate_backward_positions,
    extend_search_space_with_backward,
)

__all__ = [
    "ClassifierHead",
    "DAGBlock",
    "LayerSpec",
    "BlockSpec",
    "NeuronConfig",
    "Stem",
    "TransitionLayer",
    "NetworkTemplate",
    "SkipConnectionNetwork",
    "build_single_block_template",
    "single_block_sweep_spec",
    "build_resnet18_template",
    "build_densenet121_template",
    "build_mobilenetv2_template",
    "available_models",
    "get_template",
    "BackwardConnection",
    "BackwardSearchSpace",
    "RecurrentDAGBlock",
    "enumerate_backward_positions",
    "extend_search_space_with_backward",
]
