"""Single-block analysis model (paper Section III-A, Fig. 1).

"To analyze the skip connection effect, we first build a single-block
architecture, with 4 convolution layers inside the block."  This module builds
exactly that topology and provides the helper that produces the adjacency used
at each point of the Fig. 1 sweep: ``n_skip`` incoming skip connections of a
chosen type (DSC or ASC) into the final layer of the block, ``n_skip`` ranging
from 0 to 3.
"""

from __future__ import annotations

from typing import Optional

from repro.core.adjacency import ASC, DSC, BlockAdjacency
from repro.core.search_space import ArchitectureSpec
from repro.models.blocks import BlockSpec, LayerSpec
from repro.models.template import NetworkTemplate


def build_single_block_template(
    input_channels: int = 2,
    num_classes: int = 10,
    channels: int = 8,
    depth: int = 4,
    width_multiplier: float = 1.0,
) -> NetworkTemplate:
    """Template with one block of ``depth`` 3x3 convolutions (default 4).

    Parameters
    ----------
    input_channels:
        2 for event-frame data (ON/OFF), 3 for RGB images.
    num_classes:
        Classifier output size.
    channels:
        Base width of the block's layers (scaled by ``width_multiplier``).
    depth:
        Number of convolution layers in the block; the paper uses 4.
    """
    width = max(2, int(round(channels * width_multiplier)))
    block = BlockSpec(
        in_channels=width,
        layers=[LayerSpec("conv3x3", width) for _ in range(depth)],
        name="block0",
    )
    return NetworkTemplate(
        name="single_block",
        input_channels=input_channels,
        num_classes=num_classes,
        stem_channels=width,
        block_specs=[block],
        transition_channels=[None],
        default_adjacencies=[BlockAdjacency(depth)],
    )


def single_block_sweep_spec(n_skip: int, connection_type: str, depth: int = 4) -> ArchitectureSpec:
    """Architecture spec for one point of the Fig. 1 sweep.

    Parameters
    ----------
    n_skip:
        Number of skip connections into the block's final layer (0 to
        ``depth - 1``; larger values are clamped, as in the paper).
    connection_type:
        ``"dsc"`` for DenseNet-like concatenation (Fig. 1c) or ``"asc"`` for
        addition-type connections (Fig. 1d).
    """
    kind = connection_type.strip().lower()
    if kind in ("dsc", "densenet", "concat"):
        code = DSC
    elif kind in ("asc", "addition", "add", "resnet"):
        code = ASC
    else:
        raise ValueError(f"connection_type must be 'dsc' or 'asc', got {connection_type!r}")
    adjacency = BlockAdjacency.with_final_layer_skips(depth, n_skip, code)
    return ArchitectureSpec([adjacency], name=f"single_block[{kind}, n_skip={n_skip}]")
