"""Building blocks: DAG skip-blocks, stems, transitions and classifier heads.

The :class:`DAGBlock` realises the paper's block formulation (Section III-A):
a sequence of layers whose extra connectivity is described by a
:class:`~repro.core.adjacency.BlockAdjacency`.  For every layer the block

1. takes the sequential input (output of the previous layer, or the block
   input for the first layer),
2. **adds** every ASC skip source into it (projecting with a 1x1 convolution
   when the channel counts differ),
3. **concatenates** every DSC skip source onto the channel axis,
4. applies the layer's convolution, batch normalisation and activation.

In the ANN variant the activation is a ReLU; in the SNN variant it is a leaky
integrate-and-fire neuron, so the same weights and wiring describe both the
source and the adapted network — this is exactly the ANN→SNN conversion whose
accuracy drop the paper optimizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.adjacency import ASC, DSC, NO_CONNECTION, BlockAdjacency
from repro.core.search_space import BlockSearchInfo
from repro.nn import AvgPool2d, BatchNorm2d, Conv2d, Linear, ReLU
from repro.nn.module import Module, ModuleList
from repro.snn.neurons import LeakyIntegrator, LIFNeuron
from repro.tensor import Tensor, ops
from repro.tensor.random import default_rng


@dataclass
class NeuronConfig:
    """Hyperparameters of the spiking neurons used when a model is built as an SNN."""

    beta: float = 0.9
    threshold: float = 1.0
    surrogate: str = "fast_sigmoid"
    reset_mechanism: str = "subtract"
    readout_beta: float = 0.95

    def make_neuron(self) -> LIFNeuron:
        """Instantiate one hidden-layer LIF neuron."""
        return LIFNeuron(
            beta=self.beta,
            threshold=self.threshold,
            surrogate=self.surrogate,
            reset_mechanism=self.reset_mechanism,
        )

    def make_readout(self) -> LeakyIntegrator:
        """Instantiate the non-spiking readout integrator."""
        return LeakyIntegrator(beta=self.readout_beta)


@dataclass(frozen=True)
class LayerSpec:
    """Specification of one layer inside a block.

    ``kind`` selects the synaptic operation:

    * ``"conv3x3"`` — 3x3 convolution, padding 1;
    * ``"conv1x1"`` — pointwise convolution;
    * ``"dwconv3x3"`` — depthwise 3x3 convolution (groups = channels), as used
      by MobileNetV2; such layers cannot accept DSC (concatenation) inputs
      because their channel count is structurally fixed.
    """

    kind: str
    out_channels: int
    allow_dsc_input: bool = True

    def __post_init__(self) -> None:
        if self.kind not in ("conv3x3", "conv1x1", "dwconv3x3"):
            raise ValueError(f"unknown layer kind {self.kind!r}")
        if self.out_channels <= 0:
            raise ValueError(f"out_channels must be positive, got {self.out_channels}")
        if self.kind == "dwconv3x3" and self.allow_dsc_input:
            # depthwise layers cannot change their input width: forbid concatenation
            object.__setattr__(self, "allow_dsc_input", False)


@dataclass
class BlockSpec:
    """Static description of one block (independent of its adjacency)."""

    in_channels: int
    layers: List[LayerSpec]
    name: str = "block"

    @property
    def depth(self) -> int:
        """Number of layers in the block."""
        return len(self.layers)

    @property
    def out_channels(self) -> int:
        """Channels produced by the block's last layer."""
        return self.layers[-1].out_channels

    def node_channels(self) -> List[int]:
        """Channel count of every DAG node (block input + each layer output)."""
        return [self.in_channels] + [layer.out_channels for layer in self.layers]

    def search_info(self) -> BlockSearchInfo:
        """Describe which connection codes are legal at each skip position."""
        allowed: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        adjacency = BlockAdjacency(self.depth)
        for i, j in adjacency.skip_positions():
            layer = self.layers[j - 1]
            if not layer.allow_dsc_input:
                allowed[(i, j)] = (NO_CONNECTION, ASC)
        return BlockSearchInfo(depth=self.depth, allowed_types=allowed, name=self.name)

    def validate_adjacency(self, adjacency: BlockAdjacency) -> None:
        """Raise if ``adjacency`` is incompatible with this block's layers."""
        if adjacency.depth != self.depth:
            raise ValueError(
                f"adjacency depth {adjacency.depth} does not match block depth {self.depth}"
            )
        for layer_index in range(self.depth):
            for source, code in adjacency.sources_of(layer_index):
                if code == DSC and not self.layers[layer_index].allow_dsc_input:
                    raise ValueError(
                        f"layer {layer_index} ({self.layers[layer_index].kind}) of block "
                        f"{self.name!r} cannot accept DSC input from node {source}"
                    )


def _make_synaptic_layer(kind: str, in_channels: int, out_channels: int, rng) -> Conv2d:
    """Create the weight layer for a :class:`LayerSpec`."""
    if kind == "conv3x3":
        return Conv2d(in_channels, out_channels, 3, padding=1, bias=False, rng=rng)
    if kind == "conv1x1":
        return Conv2d(in_channels, out_channels, 1, bias=False, rng=rng)
    if kind == "dwconv3x3":
        if in_channels != out_channels:
            raise ValueError(
                f"depthwise layers require in_channels == out_channels, got {in_channels} vs {out_channels}"
            )
        return Conv2d(in_channels, out_channels, 3, padding=1, groups=in_channels, bias=False, rng=rng)
    raise ValueError(f"unknown layer kind {kind!r}")


class _DAGLayer(Module):
    """One layer of a :class:`DAGBlock`: synaptic op + batch norm + activation."""

    def __init__(self, kind: str, in_channels: int, out_channels: int, spiking: bool, neuron_config: NeuronConfig, rng) -> None:
        super().__init__()
        self.conv = _make_synaptic_layer(kind, in_channels, out_channels, rng)
        self.norm = BatchNorm2d(out_channels)
        self.activation = neuron_config.make_neuron() if spiking else ReLU()

    def forward(self, x: Tensor) -> Tensor:
        return self.activation(self.norm(self.conv(x)))


class DAGBlock(Module):
    """A block of layers wired according to a skip-connection adjacency matrix."""

    def __init__(
        self,
        spec: BlockSpec,
        adjacency: Optional[BlockAdjacency] = None,
        spiking: bool = False,
        neuron_config: Optional[NeuronConfig] = None,
        rng=None,
    ) -> None:
        super().__init__()
        rng = default_rng(rng)
        neuron_config = neuron_config or NeuronConfig()
        adjacency = adjacency if adjacency is not None else BlockAdjacency(spec.depth)
        spec.validate_adjacency(adjacency)

        self.spec = spec
        self.adjacency = adjacency.copy()
        self.spiking = bool(spiking)
        self.neuron_config = neuron_config

        node_channels = spec.node_channels()
        self.layers = ModuleList()
        self.projections = ModuleList()
        self._projection_index: Dict[Tuple[int, int], int] = {}
        self._layer_input_channels: List[int] = []

        for layer_index, layer_spec in enumerate(spec.layers):
            destination = layer_index + 1
            sequential_channels = node_channels[layer_index]
            in_channels = sequential_channels
            for source, code in adjacency.sources_of(layer_index):
                source_channels = node_channels[source]
                if code == DSC:
                    in_channels += source_channels
                elif code == ASC and source_channels != sequential_channels:
                    # 1x1 projection aligning the source with the sequential input
                    projection = Conv2d(source_channels, sequential_channels, 1, bias=False, rng=rng)
                    self._projection_index[(source, destination)] = len(self.projections)
                    self.projections.append(projection)
            self._layer_input_channels.append(in_channels)
            self.layers.append(
                _DAGLayer(layer_spec.kind, in_channels, layer_spec.out_channels, self.spiking, neuron_config, rng)
            )

    # ------------------------------------------------------------------
    @property
    def out_channels(self) -> int:
        """Channels of the block output."""
        return self.spec.out_channels

    def layer_input_channels(self) -> List[int]:
        """Input channel count of every layer after skip-induced growth."""
        return list(self._layer_input_channels)

    def forward(self, x: Tensor) -> Tensor:
        node_outputs: List[Tensor] = [x]
        for layer_index, layer in enumerate(self.layers):
            destination = layer_index + 1
            combined = node_outputs[layer_index]
            concat_inputs: List[Tensor] = []
            for source, code in self.adjacency.sources_of(layer_index):
                source_output = node_outputs[source]
                if code == ASC:
                    key = (source, destination)
                    if key in self._projection_index:
                        source_output = self.projections[self._projection_index[key]](source_output)
                    combined = combined + source_output
                elif code == DSC:
                    concat_inputs.append(source_output)
            if concat_inputs:
                combined = ops.concat([combined] + concat_inputs, axis=1)
            node_outputs.append(layer(combined))
        return node_outputs[-1]

    def extra_repr(self) -> str:
        return (
            f"name={self.spec.name!r}, depth={self.spec.depth}, spiking={self.spiking}, "
            f"skips={self.adjacency.total_skips()}"
        )


class Stem(Module):
    """Input stem: 3x3 convolution + batch norm + activation."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        spiking: bool = False,
        neuron_config: Optional[NeuronConfig] = None,
        rng=None,
    ) -> None:
        super().__init__()
        neuron_config = neuron_config or NeuronConfig()
        rng = default_rng(rng)
        self.conv = Conv2d(in_channels, out_channels, 3, padding=1, bias=False, rng=rng)
        self.norm = BatchNorm2d(out_channels)
        self.activation = neuron_config.make_neuron() if spiking else ReLU()
        self.out_channels = out_channels

    def forward(self, x: Tensor) -> Tensor:
        return self.activation(self.norm(self.conv(x)))


class TransitionLayer(Module):
    """Between-block transition: 1x1 convolution + norm + activation + 2x2 average pool.

    Mirrors the DenseNet transition layer; it is also where the spatial
    resolution is halved for all templates (keeping strides out of the blocks
    means skip connections never face spatial mismatches).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        spiking: bool = False,
        neuron_config: Optional[NeuronConfig] = None,
        rng=None,
    ) -> None:
        super().__init__()
        neuron_config = neuron_config or NeuronConfig()
        rng = default_rng(rng)
        self.conv = Conv2d(in_channels, out_channels, 1, bias=False, rng=rng)
        self.norm = BatchNorm2d(out_channels)
        self.activation = neuron_config.make_neuron() if spiking else ReLU()
        self.pool = AvgPool2d(2)
        self.out_channels = out_channels

    def forward(self, x: Tensor) -> Tensor:
        return self.pool(self.activation(self.norm(self.conv(x))))


class ClassifierHead(Module):
    """Global average pooling + linear classifier (+ leaky-integrator readout for SNNs)."""

    def __init__(
        self,
        in_channels: int,
        num_classes: int,
        spiking: bool = False,
        neuron_config: Optional[NeuronConfig] = None,
        rng=None,
    ) -> None:
        super().__init__()
        neuron_config = neuron_config or NeuronConfig()
        rng = default_rng(rng)
        self.fc = Linear(in_channels, num_classes, rng=rng)
        self.readout = neuron_config.make_readout() if spiking else None
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        pooled = x.mean(axis=(2, 3))
        logits = self.fc(pooled)
        if self.readout is not None:
            logits = self.readout(logits)
        return logits
