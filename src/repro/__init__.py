"""repro — reproduction of "Skip Connections in Spiking Neural Networks" (IPPS 2023).

The package is organised bottom-up:

* :mod:`repro.tensor` — NumPy reverse-mode autodiff (the compute substrate);
* :mod:`repro.nn` — ANN layers, losses, optimizers;
* :mod:`repro.snn` — spiking neurons, surrogate gradients, temporal unrolling,
  firing-rate and MAC/energy metrics;
* :mod:`repro.gp` — Gaussian-process regression and acquisition functions;
* :mod:`repro.core` — the paper's contribution: adjacency-matrix skip encoding,
  search-space construction, Bayesian optimization, random-search baseline and
  the end-to-end ANN→SNN adaptation pipeline;
* :mod:`repro.models` — DAG skip-blocks and the ResNet-18 / DenseNet-121 /
  MobileNetV2 / single-block templates;
* :mod:`repro.data` — synthetic CIFAR-10, CIFAR-10-DVS and DVS128-Gesture
  stand-ins;
* :mod:`repro.training` — shared training/evaluation harness;
* :mod:`repro.experiments` — harnesses regenerating Fig. 1, Table I, Fig. 3
  and the ablations.

Quickstart::

    from repro.data import load_dataset
    from repro.models import get_template
    from repro.core import SNNAdapter, AdaptationConfig

    splits = load_dataset("cifar10-dvs", num_samples=200, image_size=12, num_steps=6)
    template = get_template("resnet18", input_channels=2, num_classes=10)
    result = SNNAdapter(template, splits, AdaptationConfig()).run()
    print(result.summary())
"""

__version__ = "1.0.0"

from repro import core, data, experiments, gp, models, nn, snn, tensor, training
from repro.core import (
    ASC,
    DSC,
    AdaptationConfig,
    ArchitectureSpec,
    BayesianOptimizer,
    BlockAdjacency,
    RandomSearch,
    SearchSpace,
    SNNAdapter,
    WeightSnapshotStore,
    WeightStore,
    WeightUpdate,
)
from repro.data import load_dataset
from repro.models import NeuronConfig, get_template
from repro.snn import FiringRateMonitor, LIFNeuron, TemporalRunner
from repro.tensor import Tensor
from repro.training import SNNTrainer, SNNTrainingConfig, Trainer, TrainingConfig

__all__ = [
    "__version__",
    "core",
    "data",
    "experiments",
    "gp",
    "models",
    "nn",
    "snn",
    "tensor",
    "training",
    "ASC",
    "DSC",
    "AdaptationConfig",
    "ArchitectureSpec",
    "BayesianOptimizer",
    "BlockAdjacency",
    "RandomSearch",
    "SearchSpace",
    "SNNAdapter",
    "WeightSnapshotStore",
    "WeightStore",
    "WeightUpdate",
    "load_dataset",
    "NeuronConfig",
    "get_template",
    "FiringRateMonitor",
    "LIFNeuron",
    "TemporalRunner",
    "Tensor",
    "SNNTrainer",
    "SNNTrainingConfig",
    "Trainer",
    "TrainingConfig",
]
