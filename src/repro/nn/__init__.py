"""Neural-network layer library built on :mod:`repro.tensor`.

Provides the non-spiking (ANN) building blocks used by the paper's reference
architectures — convolutions, batch normalisation, pooling, linear heads —
plus parameter initialisation, losses, optimizers and learning-rate
schedules.  The spiking counterparts live in :mod:`repro.snn` and reuse these
modules for their synaptic (weight) computations.
"""

from repro.nn.module import Module, ModuleList, Parameter, Sequential
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
)
from repro.nn.activations import LeakyReLU, ReLU, Sigmoid, Softmax, Tanh
from repro.nn import init
from repro.nn.losses import CrossEntropyLoss, MSELoss, accuracy
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.scheduler import ConstantLR, CosineAnnealingLR, LRScheduler, StepLR

__all__ = [
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Flatten",
    "GlobalAvgPool2d",
    "Identity",
    "Linear",
    "MaxPool2d",
    "LeakyReLU",
    "ReLU",
    "Sigmoid",
    "Softmax",
    "Tanh",
    "init",
    "CrossEntropyLoss",
    "MSELoss",
    "accuracy",
    "SGD",
    "Adam",
    "Optimizer",
    "ConstantLR",
    "CosineAnnealingLR",
    "LRScheduler",
    "StepLR",
]
