"""Loss functions and classification metrics."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor, ops


class CrossEntropyLoss(Module):
    """Softmax cross-entropy over integer class targets.

    Accepts logits of shape ``(N, num_classes)`` and integer targets of shape
    ``(N,)``.  For spiking networks the logits are typically the spike counts
    (or membrane potentials) accumulated over the simulation window — the
    standard "rate loss" used by snnTorch.
    """

    def __init__(self, label_smoothing: float = 0.0) -> None:
        super().__init__()
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError(f"label_smoothing must be in [0, 1), got {label_smoothing}")
        self.label_smoothing = float(label_smoothing)

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        targets = np.asarray(targets)
        if targets.ndim != 1:
            raise ValueError(f"targets must be a 1-D integer array, got shape {targets.shape}")
        n, num_classes = logits.shape
        if targets.shape[0] != n:
            raise ValueError(f"batch mismatch: logits {n} vs targets {targets.shape[0]}")
        log_probs = ops.log_softmax(logits, axis=1)
        one_hot = np.zeros((n, num_classes), dtype=np.float64)
        one_hot[np.arange(n), targets.astype(int)] = 1.0
        if self.label_smoothing > 0.0:
            smooth = self.label_smoothing
            one_hot = one_hot * (1.0 - smooth) + smooth / num_classes
        weighted = log_probs * Tensor(one_hot)
        return -(weighted.sum() / float(n))


class MSELoss(Module):
    """Mean squared error between a prediction tensor and a target array."""

    def forward(self, prediction: Tensor, target) -> Tensor:
        target_tensor = target if isinstance(target, Tensor) else Tensor(np.asarray(target, dtype=np.float64))
        diff = prediction - target_tensor
        return (diff * diff).mean()


def accuracy(logits, targets: np.ndarray) -> float:
    """Top-1 accuracy of ``logits`` (Tensor or ndarray) against integer targets."""
    scores = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    predictions = scores.argmax(axis=1)
    targets = np.asarray(targets).astype(int)
    if predictions.shape[0] == 0:
        return 0.0
    return float((predictions == targets).mean())


def confusion_matrix(logits, targets: np.ndarray, num_classes: int) -> np.ndarray:
    """Return the ``num_classes x num_classes`` confusion matrix (rows = true)."""
    scores = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    predictions = scores.argmax(axis=1)
    targets = np.asarray(targets).astype(int)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (targets, predictions), 1)
    return matrix
