"""Standard trainable layers: linear, convolution, batch-norm, pooling.

These are the synaptic layers shared by the ANN and SNN variants of every
architecture — the SNN versions (see :mod:`repro.snn`) keep the same weight
layers and replace only the activation/neuron dynamics, which is precisely the
ANN→SNN conversion studied by the paper.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, avg_pool2d, conv2d, dropout_mask, max_pool2d
from repro.tensor.conv import conv_output_shape
from repro.tensor.random import default_rng

IntOrPair = Union[int, Tuple[int, int]]


class Identity(Module):
    """Pass-through layer (used when a skip connection replaces a transform)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Flatten(Module):
    """Flatten all axes except the leading batch axis."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Linear(Module):
    """Fully connected layer ``y = x @ W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None) -> None:
        super().__init__()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        rng = default_rng(rng)
        self.weight = Parameter(init.kaiming_normal((out_features, in_features), rng=rng), name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out

    def extra_repr(self) -> str:
        return f"in_features={self.in_features}, out_features={self.out_features}"


class Conv2d(Module):
    """2-D convolution over NCHW tensors with optional grouped/depthwise mode."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: IntOrPair,
        stride: IntOrPair = 1,
        padding: IntOrPair = 0,
        groups: int = 1,
        bias: bool = True,
        rng=None,
    ) -> None:
        super().__init__()
        if in_channels % groups != 0 or out_channels % groups != 0:
            raise ValueError(
                f"groups={groups} must divide in_channels={in_channels} and out_channels={out_channels}"
            )
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = kernel_size if isinstance(kernel_size, tuple) else (kernel_size, kernel_size)
        self.stride = stride
        self.padding = padding
        self.groups = int(groups)
        rng = default_rng(rng)
        weight_shape = (out_channels, in_channels // groups, *self.kernel_size)
        self.weight = Parameter(init.kaiming_normal(weight_shape, rng=rng), name="weight")
        self.bias = Parameter(init.zeros((out_channels,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding, groups=self.groups)

    def output_shape(self, height: int, width: int) -> Tuple[int, int, int]:
        """Return ``(out_channels, out_h, out_w)`` for a given input geometry."""
        out_h, out_w = conv_output_shape(height, width, self.kernel_size, self.stride, self.padding)
        return self.out_channels, out_h, out_w

    def extra_repr(self) -> str:
        return (
            f"in={self.in_channels}, out={self.out_channels}, kernel={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding}, groups={self.groups}"
        )


class BatchNorm2d(Module):
    """Batch normalisation over the channel axis of NCHW tensors.

    Keeps exponential running statistics for evaluation mode, matching the
    usual deep-learning convention.  Batch normalisation (through time, since
    the SNN applies the same layer at every step) is known to stabilise SNN
    training (Kim & Panda, 2021, cited in the paper's related work).
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = int(num_features)
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.weight = Parameter(init.ones((num_features,)), name="weight")
        self.bias = Parameter(init.zeros((num_features,)), name="bias")
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects NCHW input, got shape {x.shape}")
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=(0, 2, 3), keepdims=True)
            new_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean.data.reshape(-1)
            new_var = (1 - self.momentum) * self.running_var + self.momentum * var.data.reshape(-1)
            self.update_buffer("running_mean", new_mean)
            self.update_buffer("running_var", new_var)
            normalized = centered / (var + self.eps) ** 0.5
        else:
            mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
            normalized = (x - mean) / (var + self.eps) ** 0.5
        scale = self.weight.reshape(1, self.num_features, 1, 1)
        shift = self.bias.reshape(1, self.num_features, 1, 1)
        return normalized * scale + shift

    def extra_repr(self) -> str:
        return f"num_features={self.num_features}, eps={self.eps}, momentum={self.momentum}"


class MaxPool2d(Module):
    """Max pooling layer."""

    def __init__(self, kernel_size: IntOrPair, stride: Optional[IntOrPair] = None, padding: IntOrPair = 0) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, self.kernel_size, stride=self.stride, padding=self.padding)

    def extra_repr(self) -> str:
        return f"kernel={self.kernel_size}, stride={self.stride}, padding={self.padding}"


class AvgPool2d(Module):
    """Average pooling layer."""

    def __init__(self, kernel_size: IntOrPair, stride: Optional[IntOrPair] = None, padding: IntOrPair = 0) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool2d(x, self.kernel_size, stride=self.stride, padding=self.padding)

    def extra_repr(self) -> str:
        return f"kernel={self.kernel_size}, stride={self.stride}, padding={self.padding}"


class GlobalAvgPool2d(Module):
    """Global average pooling: NCHW → NC."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3))


class Dropout(Module):
    """Inverted dropout; identity in evaluation mode."""

    def __init__(self, p: float = 0.5, rng=None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self._rng = default_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        return dropout_mask(x, self.p, self._rng)

    def extra_repr(self) -> str:
        return f"p={self.p}"
