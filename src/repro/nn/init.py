"""Parameter initialisation schemes.

The reproduction defaults to Kaiming (He) initialisation for convolutional and
linear weights — the scheme used by the reference ResNet/DenseNet/MobileNet
implementations — with optional Xavier (Glorot) and uniform alternatives.
All functions take an explicit :class:`numpy.random.Generator` for
reproducibility.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.tensor.random import default_rng


def _fan_in_fan_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in / fan-out for linear (2-D) and conv (4-D) weight shapes."""
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    if len(shape) == 4:
        out_channels, in_channels, kh, kw = shape
        receptive = kh * kw
        return in_channels * receptive, out_channels * receptive
    size = int(np.prod(shape))
    return size, size


#: default He gain, sqrt(2), matching ReLU-family nonlinearities
HE_GAIN = float(np.sqrt(2.0))


def kaiming_normal(shape: Tuple[int, ...], rng=None, gain: float = HE_GAIN) -> np.ndarray:
    """He normal initialisation: ``std = gain / sqrt(fan_in)``."""
    rng = default_rng(rng)
    fan_in, _ = _fan_in_fan_out(shape)
    std = gain / np.sqrt(max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng=None, gain: float = HE_GAIN) -> np.ndarray:
    """He uniform initialisation with bound ``gain * sqrt(3 / fan_in)``."""
    rng = default_rng(rng)
    fan_in, _ = _fan_in_fan_out(shape)
    bound = gain * np.sqrt(3.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng=None, gain: float = 1.0) -> np.ndarray:
    """Glorot normal initialisation: ``std = gain * sqrt(2 / (fan_in + fan_out))``."""
    rng = default_rng(rng)
    fan_in, fan_out = _fan_in_fan_out(shape)
    std = gain * np.sqrt(2.0 / max(fan_in + fan_out, 1))
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: Tuple[int, ...], rng=None, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform initialisation."""
    rng = default_rng(rng)
    fan_in, fan_out = _fan_in_fan_out(shape)
    bound = gain * np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape)


def uniform(shape: Tuple[int, ...], low: float = -0.1, high: float = 0.1, rng=None) -> np.ndarray:
    """Plain uniform initialisation in ``[low, high)``."""
    rng = default_rng(rng)
    return rng.uniform(low, high, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases, batch-norm shift)."""
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-one initialisation (batch-norm scale)."""
    return np.ones(shape, dtype=np.float64)
