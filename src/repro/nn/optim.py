"""Gradient-descent optimizers.

The paper trains with SGD + momentum (CIFAR-10, CIFAR-10-DVS) and Adam
(DVS128 Gesture); both are provided, together with optional weight decay and
gradient clipping, which stabilise surrogate-gradient BPTT at the small batch
sizes used by the CPU-scale experiments.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer holding a flat list of parameters."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Reset the gradient of every managed parameter."""
        for param in self.parameters:
            param.zero_grad()

    def clip_grad_norm(self, max_norm: float) -> float:
        """Clip the global gradient norm to ``max_norm``; returns the pre-clip norm."""
        total = 0.0
        for param in self.parameters:
            if param.grad is not None:
                total += float((param.grad ** 2).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for param in self.parameters:
                if param.grad is not None:
                    param.grad *= scale
        return norm

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = bool(nesterov)
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                    self._velocity[id(param)] = velocity
                velocity *= self.momentum
                velocity += grad
                update = grad + self.momentum * velocity if self.nesterov else velocity
            else:
                update = grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer with bias-corrected first/second moment estimates."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must each be in [0, 1), got {betas}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias_correction1 = 1.0 - self.beta1 ** t
        bias_correction2 = 1.0 - self.beta2 ** t
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.setdefault(id(param), np.zeros_like(param.data))
            v = self._v.setdefault(id(param), np.zeros_like(param.data))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
