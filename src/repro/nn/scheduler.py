"""Learning-rate schedules driving :class:`repro.nn.optim.Optimizer`."""

from __future__ import annotations

import math

from repro.nn.optim import Optimizer


class LRScheduler:
    """Base class: subclasses compute the learning rate for a given epoch."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self, epoch: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and apply the new learning rate."""
        self.epoch += 1
        lr = self.get_lr(self.epoch)
        self.optimizer.lr = lr
        return lr

    def current_lr(self) -> float:
        """Learning rate currently installed in the optimizer."""
        return self.optimizer.lr


class ConstantLR(LRScheduler):
    """Keeps the base learning rate unchanged."""

    def get_lr(self, epoch: int) -> float:
        return self.base_lr


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base learning rate to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError(f"t_max must be positive, got {t_max}")
        self.t_max = int(t_max)
        self.eta_min = float(eta_min)

    def get_lr(self, epoch: int) -> float:
        progress = min(epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1.0 + math.cos(math.pi * progress))
