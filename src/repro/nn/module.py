"""Module/Parameter abstractions (a small, typed subset of ``torch.nn``).

A :class:`Module` owns :class:`Parameter` leaves and child modules, discovered
automatically through attribute assignment.  This registry powers:

* optimizers (``module.parameters()``),
* ANN→SNN conversion (walking the module tree and swapping activations),
* weight sharing between Bayesian-optimization candidates
  (``state_dict`` / ``load_state_dict`` keyed by the module path),
* train/eval mode switching (batch-norm statistics, dropout, spiking monitors).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a trainable leaf of a module."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for every layer and model.

    Subclasses implement :meth:`forward`; calling the module invokes it.
    Attribute assignment of :class:`Parameter`, :class:`Module` and
    :class:`ModuleList` instances registers them automatically.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable persistent array (e.g. batch-norm stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def update_buffer(self, name: str, value: np.ndarray) -> None:
        """Overwrite a previously registered buffer."""
        if name not in self._buffers:
            raise KeyError(f"unknown buffer {name!r}")
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs for the whole subtree."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        """Return all parameters of the subtree as a list."""
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` pairs, including ``self`` as ``""``."""
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> List["Module"]:
        """Return every module in the subtree (including ``self``)."""
        return [m for _, m in self.named_modules()]

    def children(self) -> List["Module"]:
        """Return direct child modules."""
        return list(self._modules.values())

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(dotted_name, buffer)`` pairs for the whole subtree."""
        for name in self._buffers:
            yield (f"{prefix}{name}", getattr(self, name))
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    # ------------------------------------------------------------------
    # parameter counting / state handling
    # ------------------------------------------------------------------
    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return int(sum(p.size for p in self.parameters()))

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a copy of every parameter and buffer keyed by dotted path."""
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buffer in self.named_buffers():
            state[f"buffer::{name}"] = np.array(buffer, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> List[str]:
        """Load parameters/buffers from :meth:`state_dict` output.

        Returns the list of keys in ``state`` that could not be applied
        (missing in the model or shape-mismatched).  With ``strict=True`` a
        mismatch raises instead.  Shape-tolerant loading (``strict=False``) is
        what enables weight sharing across architectures that differ only in
        their skip connections: layers whose shapes changed (e.g. a conv whose
        input grew because of a new concatenation skip) keep their fresh
        initialisation while all compatible layers inherit trained weights.
        """
        unapplied: List[str] = []
        params = dict(self.named_parameters())
        buffers = dict(self.named_buffers())
        for key, value in state.items():
            if key.startswith("buffer::"):
                name = key[len("buffer::"):]
                if name in buffers and np.shape(buffers[name]) == np.shape(value):
                    self._assign_buffer_by_path(name, np.array(value, copy=True))
                else:
                    unapplied.append(key)
            elif key in params and params[key].shape == value.shape:
                params[key].data[...] = value
            else:
                unapplied.append(key)
        if strict and unapplied:
            raise KeyError(f"state_dict keys could not be loaded: {unapplied}")
        return unapplied

    def _assign_buffer_by_path(self, path: str, value: np.ndarray) -> None:
        parts = path.split(".")
        target: Module = self
        for part in parts[:-1]:
            target = target._modules[part]
        target.update_buffer(parts[-1], value)

    def to_dtype(self, dtype) -> "Module":
        """Cast every float parameter and float buffer of the subtree to ``dtype``.

        The dtype-parametrised substrate (float32/float64) derives each op's
        output dtype from its inputs, so casting the leaves here is all it
        takes to run a model in float32 end to end.  Non-float buffers (e.g.
        integer step counters) are left untouched; gradients stay float64
        (this is an inference feature — see the tolerance contract in
        ``docs/architecture.md``).
        """
        dtype = np.dtype(dtype)
        if dtype.kind != "f":
            raise ValueError(f"to_dtype expects a float dtype, got {dtype}")
        for _, param in self.named_parameters():
            if param.data.dtype.kind == "f" and param.data.dtype != dtype:
                param.data = param.data.astype(dtype)
        for name, buffer in self.named_buffers():
            array = np.asarray(buffer)
            if array.dtype.kind == "f" and array.dtype != dtype:
                self._assign_buffer_by_path(name, array.astype(dtype))
        return self

    # ------------------------------------------------------------------
    # train / eval, gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set train/eval mode recursively."""
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Switch the subtree to evaluation mode."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Reset gradients of every parameter in the subtree."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def extra_repr(self) -> str:
        """Extra information shown by :meth:`__repr__` (override in layers)."""
        return ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lines = [f"{type(self).__name__}({self.extra_repr()})"]
        for name, module in self._modules.items():
            child = repr(module).splitlines()
            lines.append(f"  ({name}): {child[0]}")
            lines.extend(f"  {line}" for line in child[1:])
        return "\n".join(lines)


class ModuleList(Module):
    """An indexable container of modules, registered under string indices."""

    def __init__(self, modules: Optional[Iterable[Module]] = None) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        """Append ``module`` and register it under its positional index."""
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module
        object.__setattr__(self, str(index), module)
        return self

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def forward(self, *args, **kwargs):  # pragma: no cover - container only
        raise RuntimeError("ModuleList is a container and cannot be called")


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "Sequential":
        """Append a module to the chain."""
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module
        object.__setattr__(self, str(index), module)
        return self

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def forward(self, x):
        for module in self._items:
            x = module(x)
        return x
