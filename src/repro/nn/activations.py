"""Activation modules for the non-spiking (ANN) networks.

When an architecture is converted to its spiking counterpart these modules are
replaced by spiking neurons (:mod:`repro.snn.neurons`); keeping activations as
standalone modules is what makes the conversion a simple tree rewrite.
"""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import Tensor, ops


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.relu(x)


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = float(negative_slope)

    def forward(self, x: Tensor) -> Tensor:
        return ops.maximum(x, x * self.negative_slope)

    def extra_repr(self) -> str:
        return f"negative_slope={self.negative_slope}"


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.sigmoid(x)


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.tanh(x)


class Softmax(Module):
    """Softmax along a configurable axis (default: last)."""

    def __init__(self, axis: int = -1) -> None:
        super().__init__()
        self.axis = int(axis)

    def forward(self, x: Tensor) -> Tensor:
        return ops.softmax(x, axis=self.axis)

    def extra_repr(self) -> str:
        return f"axis={self.axis}"
