"""Synthetic dataset substrate.

The paper evaluates on CIFAR-10, CIFAR-10-DVS and DVS128 Gesture.  Those
datasets cannot be downloaded in this offline environment, so this package
provides deterministic synthetic stand-ins that exercise exactly the same code
paths (see DESIGN.md, Section 2 for the substitution rationale):

* :mod:`repro.data.synthetic_cifar` — 10-class static images with
  class-dependent multi-scale textures and shapes (CIFAR-10 stand-in);
* :mod:`repro.data.synthetic_dvs` — event streams produced by moving the
  static class patterns in front of a simulated DVS sensor and binning the
  resulting ON/OFF polarity events into frames (CIFAR-10-DVS stand-in);
* :mod:`repro.data.synthetic_gesture` — event streams of class-defining motion
  trajectories: swipes, rotations, waves, zooms (DVS128 Gesture stand-in);
* :mod:`repro.data.loaders` — dataset containers, train/val/test splits and a
  mini-batch loader;
* :mod:`repro.data.transforms` — normalisation, augmentation and event-frame
  utilities.
"""

from repro.data.loaders import ArrayDataset, BatchLoader, DatasetSplits, train_val_test_split
from repro.data.synthetic_cifar import SyntheticCIFAR10Config, make_synthetic_cifar10
from repro.data.synthetic_dvs import DVSEventConfig, events_to_frames, make_synthetic_cifar10_dvs
from repro.data.synthetic_gesture import GESTURE_NAMES, GestureConfig, make_synthetic_dvs_gesture
from repro.data.transforms import (
    Compose,
    EventFrameNormalize,
    Normalize,
    RandomHorizontalFlip,
    RandomTranslate,
    TimeSubsample,
)
from repro.data.registry import available_datasets, load_dataset

__all__ = [
    "ArrayDataset",
    "BatchLoader",
    "DatasetSplits",
    "train_val_test_split",
    "SyntheticCIFAR10Config",
    "make_synthetic_cifar10",
    "DVSEventConfig",
    "events_to_frames",
    "make_synthetic_cifar10_dvs",
    "GESTURE_NAMES",
    "GestureConfig",
    "make_synthetic_dvs_gesture",
    "Compose",
    "EventFrameNormalize",
    "Normalize",
    "RandomHorizontalFlip",
    "RandomTranslate",
    "TimeSubsample",
    "available_datasets",
    "load_dataset",
]
