"""Synthetic CIFAR-10 stand-in: 10-class static image classification.

Each class is defined by a *prototype texture* (a mixture of oriented
sinusoidal gratings whose frequencies and orientations depend on the class)
combined with a *class shape mask* (disc, square, cross, stripes, ...).
Individual samples apply random phase shifts, small translations, amplitude
jitter and additive noise, so the task requires learning translation-tolerant
texture/shape features — the kind of features the convolutional architectures
under study are built for — while remaining solvable at small resolution on a
CPU.

The generator is fully deterministic given the seed, and the difficulty can be
tuned through :class:`SyntheticCIFAR10Config` (noise level, jitter, size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.data.loaders import ArrayDataset, DatasetSplits, train_val_test_split
from repro.tensor.random import default_rng

NUM_CLASSES = 10


@dataclass
class SyntheticCIFAR10Config:
    """Generation parameters for the synthetic CIFAR-10 stand-in."""

    num_samples: int = 600
    image_size: int = 16
    channels: int = 3
    noise_level: float = 0.15
    amplitude_jitter: float = 0.2
    max_translation: int = 2
    val_fraction: float = 0.1
    test_fraction: float = 0.1
    seed: int = 0


def _class_shape_mask(class_index: int, size: int) -> np.ndarray:
    """Binary-ish spatial mask characterising the class silhouette."""
    yy, xx = np.meshgrid(np.linspace(-1, 1, size), np.linspace(-1, 1, size), indexing="ij")
    radius = np.sqrt(xx ** 2 + yy ** 2)
    kind = class_index % 5
    if kind == 0:  # disc
        mask = (radius < 0.7).astype(float)
    elif kind == 1:  # square frame
        mask = ((np.abs(xx) < 0.75) & (np.abs(yy) < 0.75)).astype(float)
        mask -= ((np.abs(xx) < 0.35) & (np.abs(yy) < 0.35)).astype(float) * 0.5
    elif kind == 2:  # cross
        mask = ((np.abs(xx) < 0.25) | (np.abs(yy) < 0.25)).astype(float)
    elif kind == 3:  # diagonal stripes
        mask = (np.sin(6.0 * (xx + yy)) > 0).astype(float)
    else:  # ring
        mask = ((radius > 0.35) & (radius < 0.8)).astype(float)
    return 0.3 + 0.7 * mask


def _class_texture(class_index: int, size: int, phase_x: float, phase_y: float) -> np.ndarray:
    """Oriented grating texture whose frequency/orientation encode the class."""
    yy, xx = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
    frequency = 1.0 + (class_index % 4)  # cycles across the image
    orientation = (class_index * np.pi / NUM_CLASSES) % np.pi
    u = np.cos(orientation) * xx + np.sin(orientation) * yy
    v = -np.sin(orientation) * xx + np.cos(orientation) * yy
    grating = 0.5 + 0.25 * np.sin(2 * np.pi * frequency * u / size + phase_x)
    grating += 0.25 * np.sin(2 * np.pi * (frequency + 1) * v / size + phase_y)
    return grating


def _channel_palette(class_index: int, channels: int) -> np.ndarray:
    """Per-channel gains giving each class a characteristic colour balance."""
    angles = 2 * np.pi * (class_index / NUM_CLASSES + np.arange(channels) / max(channels, 1))
    return 0.6 + 0.4 * np.sin(angles)


def generate_sample(
    class_index: int,
    config: SyntheticCIFAR10Config,
    rng: np.random.Generator,
) -> np.ndarray:
    """Generate one ``(C, H, W)`` image of the requested class in [0, 1]."""
    size = config.image_size
    phase_x = rng.uniform(0, 2 * np.pi)
    phase_y = rng.uniform(0, 2 * np.pi)
    texture = _class_texture(class_index, size, phase_x, phase_y)
    mask = _class_shape_mask(class_index, size)
    base = texture * mask

    # small random translation (class-preserving nuisance factor)
    if config.max_translation > 0:
        shift_y = int(rng.integers(-config.max_translation, config.max_translation + 1))
        shift_x = int(rng.integers(-config.max_translation, config.max_translation + 1))
        base = np.roll(np.roll(base, shift_y, axis=0), shift_x, axis=1)

    palette = _channel_palette(class_index, config.channels)
    amplitude = 1.0 + config.amplitude_jitter * rng.standard_normal(config.channels)
    image = base[None, :, :] * (palette * amplitude)[:, None, None]
    image = image + config.noise_level * rng.standard_normal((config.channels, size, size))
    return np.clip(image, 0.0, 1.0)


def make_synthetic_cifar10(config: SyntheticCIFAR10Config | None = None, **overrides) -> DatasetSplits:
    """Build the synthetic CIFAR-10 stand-in and return train/val/test splits.

    Keyword overrides are applied on top of the (default) config, e.g.
    ``make_synthetic_cifar10(num_samples=200, image_size=12, seed=3)``.
    """
    if config is None:
        config = SyntheticCIFAR10Config()
    if overrides:
        config = SyntheticCIFAR10Config(**{**config.__dict__, **overrides})
    rng = default_rng(config.seed)

    labels = np.arange(config.num_samples) % NUM_CLASSES
    rng.shuffle(labels)
    images = np.empty((config.num_samples, config.channels, config.image_size, config.image_size))
    for i, cls in enumerate(labels):
        images[i] = generate_sample(int(cls), config, rng)

    dataset = ArrayDataset(images, labels, num_classes=NUM_CLASSES)
    return train_val_test_split(
        dataset,
        val_fraction=config.val_fraction,
        test_fraction=config.test_fraction,
        rng=default_rng(config.seed + 1),
        name="synthetic-cifar10",
    )
