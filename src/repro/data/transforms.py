"""Input transforms: normalisation, augmentation and event-frame utilities.

Transforms operate on whole batches (``(N, C, H, W)`` or ``(N, T, C, H, W)``)
and take an explicit :class:`numpy.random.Generator` so augmentation is
reproducible.  They are designed to be passed as the ``transform`` argument of
:class:`repro.data.loaders.BatchLoader`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np


class Transform:
    """Base transform: callable ``(batch, rng) -> batch``."""

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError


class Compose(Transform):
    """Apply a list of transforms in order."""

    def __init__(self, transforms: Sequence[Callable[[np.ndarray, np.random.Generator], np.ndarray]]) -> None:
        self.transforms = list(transforms)

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for transform in self.transforms:
            batch = transform(batch, rng)
        return batch


class Normalize(Transform):
    """Shift/scale static image batches channel-wise: ``(x - mean) / std``."""

    def __init__(self, mean: Sequence[float] | float = 0.5, std: Sequence[float] | float = 0.5) -> None:
        self.mean = np.asarray(mean, dtype=np.float64)
        self.std = np.asarray(std, dtype=np.float64)
        if np.any(self.std == 0):
            raise ValueError("std must be non-zero")

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        mean = self.mean.reshape((1, -1, 1, 1)) if self.mean.ndim else self.mean
        std = self.std.reshape((1, -1, 1, 1)) if self.std.ndim else self.std
        return (batch - mean) / std


class EventFrameNormalize(Transform):
    """Clip event-count frames to [0, clip_max] and rescale to [0, 1]."""

    def __init__(self, clip_max: float = 1.0) -> None:
        if clip_max <= 0:
            raise ValueError("clip_max must be positive")
        self.clip_max = float(clip_max)

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return np.clip(batch, 0.0, self.clip_max) / self.clip_max


class RandomHorizontalFlip(Transform):
    """Flip each sample left-right with probability ``p`` (per-sample decision)."""

    def __init__(self, p: float = 0.5) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        self.p = float(p)

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        batch = np.array(batch, copy=True)
        flip = rng.random(batch.shape[0]) < self.p
        # works for both (N, C, H, W) and (N, T, C, H, W): the width axis is last
        batch[flip] = batch[flip][..., ::-1]
        return batch


class RandomTranslate(Transform):
    """Randomly roll each sample by up to ``max_shift`` pixels in H and W."""

    def __init__(self, max_shift: int = 2) -> None:
        if max_shift < 0:
            raise ValueError("max_shift must be non-negative")
        self.max_shift = int(max_shift)

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.max_shift == 0:
            return batch
        batch = np.array(batch, copy=True)
        for i in range(batch.shape[0]):
            dy = int(rng.integers(-self.max_shift, self.max_shift + 1))
            dx = int(rng.integers(-self.max_shift, self.max_shift + 1))
            batch[i] = np.roll(np.roll(batch[i], dy, axis=-2), dx, axis=-1)
        return batch


class TimeSubsample(Transform):
    """Keep every ``stride``-th time step of temporal batches ``(N, T, C, H, W)``."""

    def __init__(self, stride: int = 2) -> None:
        if stride <= 0:
            raise ValueError("stride must be positive")
        self.stride = int(stride)

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if batch.ndim < 5:
            return batch
        return batch[:, :: self.stride]
