"""Dataset containers, splits and mini-batch iteration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple

import numpy as np

from repro.tensor.random import default_rng


class ArrayDataset:
    """A dataset held fully in memory as a pair of arrays.

    ``inputs`` is either ``(N, C, H, W)`` for static images or
    ``(N, T, C, H, W)`` for event-frame sequences; ``labels`` is ``(N,)``
    integer class indices.
    """

    def __init__(self, inputs: np.ndarray, labels: np.ndarray, num_classes: Optional[int] = None) -> None:
        inputs = np.asarray(inputs, dtype=np.float64)
        labels = np.asarray(labels).astype(np.int64).reshape(-1)
        if inputs.shape[0] != labels.shape[0]:
            raise ValueError(
                f"inputs and labels disagree on sample count: {inputs.shape[0]} vs {labels.shape[0]}"
            )
        self.inputs = inputs
        self.labels = labels
        self.num_classes = int(num_classes) if num_classes is not None else int(labels.max(initial=0)) + 1

    def __len__(self) -> int:
        return int(self.inputs.shape[0])

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.inputs[index], self.labels[index]

    @property
    def is_temporal(self) -> bool:
        """True when samples carry a leading time axis (event-frame data)."""
        return self.inputs.ndim >= 5

    @property
    def sample_shape(self) -> Tuple[int, ...]:
        """Shape of one sample (without the batch axis)."""
        return tuple(self.inputs.shape[1:])

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        """Return a new dataset containing only ``indices``."""
        indices = np.asarray(indices)
        return ArrayDataset(self.inputs[indices], self.labels[indices], num_classes=self.num_classes)

    def class_counts(self) -> np.ndarray:
        """Number of samples per class."""
        return np.bincount(self.labels, minlength=self.num_classes)


@dataclass
class DatasetSplits:
    """Train / validation / test splits of one dataset, plus metadata."""

    train: ArrayDataset
    val: ArrayDataset
    test: ArrayDataset
    name: str = "dataset"

    @property
    def num_classes(self) -> int:
        """Number of classes (shared across splits)."""
        return self.train.num_classes

    @property
    def sample_shape(self) -> Tuple[int, ...]:
        """Shape of a single sample."""
        return self.train.sample_shape

    @property
    def is_temporal(self) -> bool:
        """Whether samples have a time axis."""
        return self.train.is_temporal

    def summary(self) -> str:
        """One-line description of the splits."""
        return (
            f"{self.name}: train={len(self.train)}, val={len(self.val)}, test={len(self.test)}, "
            f"classes={self.num_classes}, sample_shape={self.sample_shape}"
        )


def train_val_test_split(
    dataset: ArrayDataset,
    val_fraction: float = 0.1,
    test_fraction: float = 0.1,
    rng=None,
    stratified: bool = True,
    name: str = "dataset",
) -> DatasetSplits:
    """Split one dataset into train/val/test, optionally stratified per class."""
    if val_fraction < 0 or test_fraction < 0 or val_fraction + test_fraction >= 1.0:
        raise ValueError("val_fraction and test_fraction must be non-negative and sum to < 1")
    rng = default_rng(rng)
    n = len(dataset)
    if stratified:
        train_idx, val_idx, test_idx = [], [], []
        for cls in range(dataset.num_classes):
            cls_indices = np.where(dataset.labels == cls)[0]
            rng.shuffle(cls_indices)
            n_cls = len(cls_indices)
            n_val = int(round(n_cls * val_fraction))
            n_test = int(round(n_cls * test_fraction))
            val_idx.extend(cls_indices[:n_val])
            test_idx.extend(cls_indices[n_val : n_val + n_test])
            train_idx.extend(cls_indices[n_val + n_test :])
        train_idx = np.asarray(train_idx, dtype=np.int64)
        val_idx = np.asarray(val_idx, dtype=np.int64)
        test_idx = np.asarray(test_idx, dtype=np.int64)
    else:
        order = rng.permutation(n)
        n_val = int(round(n * val_fraction))
        n_test = int(round(n * test_fraction))
        val_idx = order[:n_val]
        test_idx = order[n_val : n_val + n_test]
        train_idx = order[n_val + n_test :]
    return DatasetSplits(
        train=dataset.subset(train_idx),
        val=dataset.subset(val_idx),
        test=dataset.subset(test_idx),
        name=name,
    )


class BatchLoader:
    """Iterate over a dataset in mini-batches.

    Parameters
    ----------
    dataset:
        The dataset to iterate.
    batch_size:
        Mini-batch size; the final batch may be smaller unless ``drop_last``.
    shuffle:
        Reshuffle sample order at the start of every epoch.
    transform:
        Optional callable applied to each input batch (augmentation).
    rng:
        Seed or generator controlling the shuffling (reproducible epochs).
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 16,
        shuffle: bool = True,
        drop_last: bool = False,
        transform: Optional[Callable[[np.ndarray, np.random.Generator], np.ndarray]] = None,
        rng=None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self.transform = transform
        self._rng = default_rng(rng)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            indices = order[start : start + self.batch_size]
            if self.drop_last and len(indices) < self.batch_size:
                break
            inputs, labels = self.dataset[indices]
            if self.transform is not None:
                inputs = self.transform(inputs, self._rng)
            yield inputs, labels
