"""Dataset registry mapping the paper's dataset names to synthetic builders.

Experiments refer to datasets by the names used in the paper ("cifar10",
"cifar10-dvs", "dvs128-gesture"); the registry resolves those names to the
synthetic stand-ins at a requested scale.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.data.loaders import DatasetSplits
from repro.data.synthetic_cifar import make_synthetic_cifar10
from repro.data.synthetic_dvs import make_synthetic_cifar10_dvs
from repro.data.synthetic_gesture import make_synthetic_dvs_gesture

_BUILDERS: Dict[str, Callable[..., DatasetSplits]] = {
    "cifar10": make_synthetic_cifar10,
    "cifar10-dvs": make_synthetic_cifar10_dvs,
    "dvs128-gesture": make_synthetic_dvs_gesture,
}

_ALIASES: Dict[str, str] = {
    "cifar-10": "cifar10",
    "cifar_10": "cifar10",
    "cifar10dvs": "cifar10-dvs",
    "cifar-10-dvs": "cifar10-dvs",
    "cifar_10_dvs": "cifar10-dvs",
    "dvs-gesture": "dvs128-gesture",
    "dvs128gesture": "dvs128-gesture",
    "dvs_gesture": "dvs128-gesture",
}


def available_datasets() -> List[str]:
    """Names of the datasets the registry can build."""
    return sorted(_BUILDERS)


def load_dataset(name: str, **kwargs) -> DatasetSplits:
    """Build the dataset called ``name`` (paper naming) with optional overrides.

    ``kwargs`` are forwarded to the underlying synthetic generator, e.g.
    ``load_dataset("cifar10-dvs", num_samples=120, image_size=12, seed=1)``.
    """
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in _BUILDERS:
        raise KeyError(f"unknown dataset {name!r}; available: {available_datasets()}")
    return _BUILDERS[key](**kwargs)
