"""Synthetic CIFAR-10-DVS stand-in: event streams from moving class patterns.

CIFAR-10-DVS (Li et al., 2017) was recorded by displaying CIFAR-10 images on a
monitor with a repeated closed-loop smooth movement in front of a DVS128
sensor; the sensor emits an event ``(t, x, y, polarity)`` whenever the log
brightness at a pixel changes by more than a contrast threshold.

This module simulates exactly that pipeline on top of the synthetic CIFAR-10
images from :mod:`repro.data.synthetic_cifar`:

1. generate a static class image;
2. move it along a smooth trajectory (circular pan, the classic repeated
   closed-loop movement) over ``num_steps`` "micro-frames";
3. emit ON/OFF events where the inter-frame luminance difference exceeds the
   contrast threshold;
4. bin events into per-step two-channel (ON, OFF) frames of shape
   ``(T, 2, H, W)`` — the representation fed to the SNN, matching the standard
   frame-based preprocessing used by snnTorch/SpikingJelly for this dataset.

Raw event tuples are also available through :func:`generate_event_stream` for
code that wants to exercise event-level transforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.data.loaders import ArrayDataset, DatasetSplits, train_val_test_split
from repro.data.synthetic_cifar import NUM_CLASSES, SyntheticCIFAR10Config, generate_sample
from repro.tensor.random import default_rng


@dataclass
class DVSEventConfig:
    """Generation parameters for the synthetic CIFAR-10-DVS stand-in."""

    num_samples: int = 400
    image_size: int = 16
    num_steps: int = 10
    contrast_threshold: float = 0.08
    movement_radius: float = 2.5
    noise_events_per_step: int = 4
    val_fraction: float = 0.1
    test_fraction: float = 0.1
    seed: int = 0

    def image_config(self) -> SyntheticCIFAR10Config:
        """Static-image generation parameters used as the moving stimulus."""
        return SyntheticCIFAR10Config(
            num_samples=1,
            image_size=self.image_size,
            channels=1,
            noise_level=0.05,
            max_translation=0,
            seed=self.seed,
        )


def _luminance_at_offset(image: np.ndarray, dy: float, dx: float) -> np.ndarray:
    """Shift a (H, W) luminance image by a sub-pixel offset (bilinear, wrap)."""
    height, width = image.shape
    y0 = int(np.floor(dy))
    x0 = int(np.floor(dx))
    fy = dy - y0
    fx = dx - x0
    shifted = (
        (1 - fy) * (1 - fx) * np.roll(np.roll(image, y0, axis=0), x0, axis=1)
        + (1 - fy) * fx * np.roll(np.roll(image, y0, axis=0), x0 + 1, axis=1)
        + fy * (1 - fx) * np.roll(np.roll(image, y0 + 1, axis=0), x0, axis=1)
        + fy * fx * np.roll(np.roll(image, y0 + 1, axis=0), x0 + 1, axis=1)
    )
    return shifted


def generate_event_stream(
    class_index: int,
    config: DVSEventConfig,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate raw events and binned frames for one sample.

    Returns
    -------
    events:
        Structured float array of shape ``(num_events, 4)`` with columns
        ``(t, y, x, polarity)`` where polarity is +1 (ON) or -1 (OFF).
    frames:
        Binned event frames of shape ``(num_steps, 2, H, W)``; channel 0
        holds ON counts, channel 1 OFF counts (clipped to [0, 1]).
    """
    image_config = config.image_config()
    luminance = generate_sample(class_index, image_config, rng)[0]

    size = config.image_size
    frames = np.zeros((config.num_steps, 2, size, size))
    events: List[Tuple[float, int, int, float]] = []

    previous = luminance
    for t in range(config.num_steps):
        angle = 2 * np.pi * (t + 1) / config.num_steps
        dy = config.movement_radius * np.sin(angle)
        dx = config.movement_radius * np.cos(angle)
        current = _luminance_at_offset(luminance, dy, dx)
        diff = current - previous
        on_mask = diff > config.contrast_threshold
        off_mask = diff < -config.contrast_threshold
        frames[t, 0][on_mask] = 1.0
        frames[t, 1][off_mask] = 1.0
        ys, xs = np.where(on_mask)
        events.extend((float(t), int(y), int(x), 1.0) for y, x in zip(ys, xs))
        ys, xs = np.where(off_mask)
        events.extend((float(t), int(y), int(x), -1.0) for y, x in zip(ys, xs))

        # sensor noise: spurious events at random pixels
        for _ in range(config.noise_events_per_step):
            y = int(rng.integers(0, size))
            x = int(rng.integers(0, size))
            polarity = 1.0 if rng.random() < 0.5 else -1.0
            channel = 0 if polarity > 0 else 1
            frames[t, channel, y, x] = 1.0
            events.append((float(t), y, x, polarity))

        previous = current

    events_array = np.asarray(events, dtype=np.float64) if events else np.zeros((0, 4))
    return events_array, frames


def events_to_frames(
    events: np.ndarray, num_steps: int, image_size: int, clip: bool = True
) -> np.ndarray:
    """Bin raw ``(t, y, x, polarity)`` events into ``(T, 2, H, W)`` frames."""
    frames = np.zeros((num_steps, 2, image_size, image_size))
    if events.size == 0:
        return frames
    t = np.clip(events[:, 0].astype(int), 0, num_steps - 1)
    y = np.clip(events[:, 1].astype(int), 0, image_size - 1)
    x = np.clip(events[:, 2].astype(int), 0, image_size - 1)
    channel = (events[:, 3] < 0).astype(int)
    np.add.at(frames, (t, channel, y, x), 1.0)
    if clip:
        frames = np.clip(frames, 0.0, 1.0)
    return frames


def make_synthetic_cifar10_dvs(config: DVSEventConfig | None = None, **overrides) -> DatasetSplits:
    """Build the synthetic CIFAR-10-DVS stand-in and return train/val/test splits.

    The paper uses a 90/10 train/test split with the training part further
    divided 80/20 into train/validation; the default fractions approximate
    that protocol.
    """
    if config is None:
        config = DVSEventConfig()
    if overrides:
        config = DVSEventConfig(**{**config.__dict__, **overrides})
    rng = default_rng(config.seed)

    labels = np.arange(config.num_samples) % NUM_CLASSES
    rng.shuffle(labels)
    frames = np.empty((config.num_samples, config.num_steps, 2, config.image_size, config.image_size))
    for i, cls in enumerate(labels):
        _, sample_frames = generate_event_stream(int(cls), config, rng)
        frames[i] = sample_frames

    dataset = ArrayDataset(frames, labels, num_classes=NUM_CLASSES)
    return train_val_test_split(
        dataset,
        val_fraction=config.val_fraction,
        test_fraction=config.test_fraction,
        rng=default_rng(config.seed + 1),
        name="synthetic-cifar10-dvs",
    )
