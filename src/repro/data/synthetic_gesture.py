"""Synthetic DVS128 Gesture stand-in: event streams of hand-gesture motions.

DVS128 Gesture (Amir et al., 2017) contains 11 hand gestures recorded by an
event camera from 29 subjects: hand waves, arm rotations, air drums/guitar,
etc.  What distinguishes the classes is the *motion trajectory* over time, not
a static appearance — exactly the regime where spiking networks with temporal
dynamics are expected to shine.

The stand-in generates a small bright "hand" blob whose trajectory over the
simulation window encodes the class (left/right swipe, up/down swipe,
clockwise/counter-clockwise rotation, horizontal/vertical wave, push (zoom
in), pull (zoom out), and a rest/jitter class).  Events are emitted where the
frame-to-frame luminance changes, then binned to ON/OFF frames, mirroring the
CIFAR-10-DVS pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.data.loaders import ArrayDataset, DatasetSplits, train_val_test_split
from repro.tensor.random import default_rng

#: the 11 gesture classes of the stand-in (names chosen to echo the original dataset)
GESTURE_NAMES: Tuple[str, ...] = (
    "hand_clap",        # 0: blob oscillating horizontally around the centre, fast
    "right_hand_wave",  # 1: horizontal wave on the right half
    "left_hand_wave",   # 2: horizontal wave on the left half
    "right_arm_cw",     # 3: clockwise rotation, right of centre
    "right_arm_ccw",    # 4: counter-clockwise rotation, right of centre
    "left_arm_cw",      # 5: clockwise rotation, left of centre
    "left_arm_ccw",     # 6: counter-clockwise rotation, left of centre
    "arm_roll",         # 7: small-radius fast rotation at the centre
    "air_drums",        # 8: vertical oscillation, two beats per window
    "air_guitar",       # 9: diagonal oscillation
    "other",            # 10: slow random drift
)

NUM_GESTURE_CLASSES = len(GESTURE_NAMES)


@dataclass
class GestureConfig:
    """Generation parameters for the synthetic DVS128 Gesture stand-in."""

    num_samples: int = 440
    image_size: int = 16
    num_steps: int = 12
    blob_radius: float = 2.0
    contrast_threshold: float = 0.05
    noise_events_per_step: int = 3
    speed_jitter: float = 0.15
    val_fraction: float = 0.1
    test_fraction: float = 0.1
    seed: int = 0


def _blob(size: int, cy: float, cx: float, radius: float, scale: float = 1.0) -> np.ndarray:
    """Gaussian blob luminance image centred at (cy, cx)."""
    yy, xx = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
    d2 = (yy - cy) ** 2 + (xx - cx) ** 2
    return scale * np.exp(-d2 / (2.0 * radius ** 2))


def _trajectory(class_index: int, phase: float, speed: float, size: int) -> Callable[[float], Tuple[float, float, float]]:
    """Return a function mapping normalised time u in [0,1] to (cy, cx, radius_scale)."""
    centre = (size - 1) / 2.0
    span = size * 0.3

    def clap(u):
        return centre, centre + span * np.sin(2 * np.pi * (2.0 * speed * u + phase)), 1.0

    def right_wave(u):
        return centre, centre + size * 0.2 + span * 0.6 * np.sin(2 * np.pi * (speed * u + phase)), 1.0

    def left_wave(u):
        return centre, centre - size * 0.2 + span * 0.6 * np.sin(2 * np.pi * (speed * u + phase)), 1.0

    def rotation(u, direction, offset_x):
        angle = 2 * np.pi * (speed * u * direction + phase)
        return centre + span * 0.7 * np.sin(angle), centre + offset_x + span * 0.7 * np.cos(angle), 1.0

    def arm_roll(u):
        angle = 2 * np.pi * (2.5 * speed * u + phase)
        return centre + span * 0.35 * np.sin(angle), centre + span * 0.35 * np.cos(angle), 1.0

    def air_drums(u):
        return centre + span * np.sin(2 * np.pi * (2.0 * speed * u + phase)), centre, 1.0

    def air_guitar(u):
        offset = span * 0.7 * np.sin(2 * np.pi * (1.5 * speed * u + phase))
        return centre + offset, centre - offset, 1.0

    def other(u):
        return (
            centre + span * 0.25 * np.sin(2 * np.pi * (0.5 * speed * u + phase)),
            centre + span * 0.25 * np.cos(2 * np.pi * (0.35 * speed * u + 2 * phase)),
            1.0,
        )

    table: Dict[int, Callable[[float], Tuple[float, float, float]]] = {
        0: clap,
        1: right_wave,
        2: left_wave,
        3: lambda u: rotation(u, +1.0, size * 0.15),
        4: lambda u: rotation(u, -1.0, size * 0.15),
        5: lambda u: rotation(u, +1.0, -size * 0.15),
        6: lambda u: rotation(u, -1.0, -size * 0.15),
        7: arm_roll,
        8: air_drums,
        9: air_guitar,
        10: other,
    }
    return table[class_index]


def generate_gesture_sample(
    class_index: int,
    config: GestureConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Generate binned ON/OFF event frames ``(T, 2, H, W)`` for one gesture."""
    size = config.image_size
    phase = rng.uniform(0, 1)
    speed = 1.0 + config.speed_jitter * rng.standard_normal()
    trajectory = _trajectory(class_index, phase, speed, size)

    frames = np.zeros((config.num_steps, 2, size, size))
    cy, cx, scale = trajectory(0.0)
    previous = _blob(size, cy, cx, config.blob_radius * scale)
    for t in range(config.num_steps):
        u = (t + 1) / config.num_steps
        cy, cx, scale = trajectory(u)
        current = _blob(size, cy, cx, config.blob_radius * scale)
        diff = current - previous
        frames[t, 0][diff > config.contrast_threshold] = 1.0
        frames[t, 1][diff < -config.contrast_threshold] = 1.0
        for _ in range(config.noise_events_per_step):
            y = int(rng.integers(0, size))
            x = int(rng.integers(0, size))
            channel = 0 if rng.random() < 0.5 else 1
            frames[t, channel, y, x] = 1.0
        previous = current
    return frames


def make_synthetic_dvs_gesture(config: GestureConfig | None = None, **overrides) -> DatasetSplits:
    """Build the synthetic DVS128-Gesture stand-in and return train/val/test splits."""
    if config is None:
        config = GestureConfig()
    if overrides:
        config = GestureConfig(**{**config.__dict__, **overrides})
    rng = default_rng(config.seed)

    labels = np.arange(config.num_samples) % NUM_GESTURE_CLASSES
    rng.shuffle(labels)
    frames = np.empty((config.num_samples, config.num_steps, 2, config.image_size, config.image_size))
    for i, cls in enumerate(labels):
        frames[i] = generate_gesture_sample(int(cls), config, rng)

    dataset = ArrayDataset(frames, labels, num_classes=NUM_GESTURE_CLASSES)
    return train_val_test_split(
        dataset,
        val_fraction=config.val_fraction,
        test_fraction=config.test_fraction,
        rng=default_rng(config.seed + 1),
        name="synthetic-dvs128-gesture",
    )
