"""Figure 3: the proposed Bayesian-optimization HPO versus random search.

Both searches optimise the same skip-connection space of one template on one
dataset.  Following the paper:

* the proposed method (GP + UCB) shares weights across candidates and only
  fine-tunes each one for a few epochs;
* random search samples architectures without replacement and trains every
  candidate **from scratch** (no weight sharing);
* the reported quantity is the test accuracy of the incumbent (best-so-far)
  architecture as a function of the number of evaluated architectures, with
  mean and standard deviation over several independent runs.

Expected qualitative result: the BO curve dominates the random-search curve
and has a smaller run-to-run spread.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.bayes_opt import BayesianOptimizer, OptimizationHistory
from repro.core.cache import (
    CachedObjective,
    dataset_fingerprint_fields,
    evaluation_store_for,
    snapshot_store_for,
)
from repro.core.objectives import AccuracyDropObjective
from repro.core.random_search import RandomSearch
from repro.core.weight_sharing import WeightStore
from repro.data import load_dataset
from repro.data.loaders import DatasetSplits
from repro.experiments.config import ExperimentScale, dataset_kwargs, get_scale, model_kwargs
from repro.models import get_template
from repro.training.snn_trainer import SNNTrainingConfig


@dataclass
class SearchCurve:
    """Incumbent-accuracy curves of one method over several runs."""

    method: str
    #: one incumbent-accuracy list per run (aligned to evaluation count)
    runs: List[List[float]] = field(default_factory=list)

    def max_length(self) -> int:
        """Longest run length (number of evaluations)."""
        return max((len(run) for run in self.runs), default=0)

    def _padded(self) -> np.ndarray:
        length = self.max_length()
        if length == 0:
            return np.zeros((0, 0))
        padded = np.full((len(self.runs), length), np.nan)
        for i, run in enumerate(self.runs):
            padded[i, : len(run)] = run
            if len(run) < length:
                padded[i, len(run):] = run[-1] if run else np.nan
        return padded

    def mean(self) -> np.ndarray:
        """Mean incumbent accuracy per evaluation index."""
        padded = self._padded()
        return np.nanmean(padded, axis=0) if padded.size else np.array([])

    def std(self) -> np.ndarray:
        """Standard deviation of the incumbent accuracy per evaluation index."""
        padded = self._padded()
        return np.nanstd(padded, axis=0) if padded.size else np.array([])

    def final_mean(self) -> float:
        """Mean final incumbent accuracy."""
        mean = self.mean()
        return float(mean[-1]) if mean.size else 0.0

    def final_std(self) -> float:
        """Std of the final incumbent accuracy across runs."""
        std = self.std()
        return float(std[-1]) if std.size else 0.0

    def auc(self) -> float:
        """Area under the mean incumbent curve (higher = faster convergence)."""
        mean = self.mean()
        return float(np.trapezoid(mean)) if mean.size else 0.0


@dataclass
class Figure3Result:
    """Both search curves plus the experiment metadata."""

    dataset_name: str
    model_name: str
    bo_curve: SearchCurve = field(default_factory=lambda: SearchCurve(method="Our HPO"))
    rs_curve: SearchCurve = field(default_factory=lambda: SearchCurve(method="random search"))
    histories: List[OptimizationHistory] = field(default_factory=list)

    def bo_beats_rs(self) -> bool:
        """Whether the BO final mean incumbent accuracy is at least the RS one."""
        return self.bo_curve.final_mean() >= self.rs_curve.final_mean() - 1e-12


def _training_config(scale: ExperimentScale, seed: int) -> SNNTrainingConfig:
    """Candidate fine-tune configuration (also fingerprinted for the cache)."""
    return SNNTrainingConfig(
        epochs=scale.candidate_finetune_epochs,
        batch_size=scale.batch_size,
        learning_rate=scale.learning_rate,
        optimizer="sgd",
        momentum=0.9,
        num_steps=scale.num_steps,
        seed=seed,
    )


def _make_objective(
    template,
    splits: DatasetSplits,
    scale: ExperimentScale,
    seed: int,
    weight_sharing: bool,
) -> AccuracyDropObjective:
    training = _training_config(scale, seed)
    store = WeightStore() if weight_sharing else None
    return AccuracyDropObjective(
        template=template,
        splits=splits,
        training_config=training,
        weight_store=store,
        update_store=weight_sharing,
        measure_firing_rate=False,
        build_seed=seed,
    )


def run_figure3(
    scale: Optional[ExperimentScale] = None,
    dataset: str = "cifar10-dvs",
    model: str = "resnet18",
    num_runs: Optional[int] = None,
    iterations: Optional[int] = None,
    seed: int = 0,
    cache_dir: Optional[str] = None,
    cache_sharded: bool = False,
    async_workers: int = 0,
) -> Figure3Result:
    """Run the BO-vs-random-search comparison.

    ``iterations`` is the total number of architecture evaluations granted to
    each method per run (the paper plots up to 140; the default scale uses a
    CPU-friendly budget).  With ``cache_dir`` set, every candidate evaluation
    is persisted to a per-(method, run seed, config) JSONL store under that
    directory and re-used by later runs (each method writes its own file
    because weight sharing makes their evaluation semantics differ).  For the
    weight-sharing BO method the store also persists each evaluation's weight
    snapshot, and a hit replays it into the run's ``WeightStore`` — so
    extending a cached run with a larger ``iterations`` budget evaluates the
    fresh tail from the same warm weights as an uncached run.
    ``cache_sharded`` selects the per-writer shard layout for those stores
    (safe for many concurrent processes sharing ``cache_dir``), and
    ``async_workers >= 1`` evaluates the BO method's candidates on the
    asynchronous executor instead of the sequential/batch path.
    """
    scale = scale or get_scale()
    num_runs = num_runs if num_runs is not None else scale.figure3_runs
    iterations = iterations if iterations is not None else scale.search_iterations

    splits = load_dataset(dataset, **dataset_kwargs(scale, dataset))
    input_channels = splits.sample_shape[1] if splits.is_temporal else splits.sample_shape[0]
    template = get_template(
        model, **model_kwargs(scale, model, input_channels=input_channels, num_classes=splits.num_classes)
    )
    space = template.search_space()

    result = Figure3Result(dataset_name=splits.name, model_name=template.name)
    for run_index in range(num_runs):
        run_seed = seed + run_index

        bo_store = rs_store = None
        if cache_dir is not None:
            # one store per run seed, method and evaluation config: evaluations
            # from a differently-seeded run are not comparable (different
            # weight init), and reusing them would collapse the run-to-run
            # variance this figure reports
            fingerprint = dict(
                seed=run_seed,
                training=asdict(_training_config(scale, run_seed)),
                **dataset_fingerprint_fields(splits),
            )
            name = ["figure3", splits.name, template.name]
            bo_store = evaluation_store_for(cache_dir, name + ["bo"], sharded=cache_sharded, **fingerprint)
            rs_store = evaluation_store_for(cache_dir, name + ["rs"], sharded=cache_sharded, **fingerprint)

        bo_objective = _make_objective(template, splits, scale, run_seed, weight_sharing=True)
        if bo_store is not None:
            # snapshots only matter for the weight-sharing method; random
            # search trains from scratch so its results carry no weight state.
            # keep_best covers the full evaluation budget so the warm-equality
            # guarantee of a cached re-run holds for every candidate
            bo_objective = CachedObjective(
                bo_objective,
                store=bo_store,
                snapshots=snapshot_store_for(bo_store, keep_best=max(iterations, 1)),
            )
        initial = min(scale.bo_initial_points, max(1, iterations // 3))
        bo = BayesianOptimizer(
            space,
            bo_objective,
            initial_points=initial,
            batch_size=1,
            candidate_pool_size=48,
            async_workers=async_workers,
            rng=run_seed,
        )
        bo_history = bo.optimize(max(iterations - initial, 0))
        result.bo_curve.runs.append(bo_history.incumbent_accuracies())
        result.histories.append(bo_history)

        rs_objective = _make_objective(template, splits, scale, run_seed, weight_sharing=False)
        if rs_store is not None:
            rs_objective = CachedObjective(rs_objective, store=rs_store)
        rs = RandomSearch(space, rs_objective, rng=run_seed + 1000)
        rs_history = rs.optimize(iterations)
        result.rs_curve.runs.append(rs_history.incumbent_accuracies())
        result.histories.append(rs_history)
    return result
