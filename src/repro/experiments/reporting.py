"""Plain-text reporting: tables and series in the shape the paper prints them."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.figure1 import Figure1Result
from repro.experiments.figure3 import Figure3Result
from repro.experiments.table1 import Table1Result


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = "") -> str:
    """Render an ASCII table with aligned columns."""
    headers = [str(h) for h in headers]
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _pct(value: Optional[float]) -> str:
    """Format a fraction as a percentage string (``-`` for missing values)."""
    if value is None:
        return "-"
    return f"{100.0 * value:.2f}"


def format_figure1(result: Figure1Result) -> str:
    """Render one panel of Fig. 1 as a table of accuracy and firing-rate rows."""
    headers = ["n_skip", "ANN acc (%)", "SNN acc (%)", "SNN firing rate (%)", "MACs/step"]
    rows = [
        [
            point.n_skip,
            _pct(point.ann_accuracy),
            _pct(point.snn_accuracy),
            _pct(point.firing_rate),
            f"{point.macs_per_step:,.0f}",
        ]
        for point in result.points
    ]
    title = (
        f"Figure 1 ({'c' if result.connection_type == 'dsc' else 'd'}): "
        f"{result.connection_type.upper()} skip connections on {result.dataset_name}"
    )
    return format_table(headers, rows, title=title)


def format_table1(result: Table1Result) -> str:
    """Render Table I with the paper's columns plus per-dataset averages."""
    headers = [
        "dataset",
        "model",
        "ANN acc (%)",
        "SNN acc (%)",
        "Optimized SNN acc (%)",
        "SNN firing rate (%)",
        "Optimized firing rate (%)",
        "improvement (pp)",
    ]
    rows = []
    for row in result.rows:
        rows.append(
            [
                row.dataset,
                row.model,
                _pct(row.ann_accuracy),
                _pct(row.snn_accuracy),
                _pct(row.optimized_accuracy),
                _pct(row.snn_firing_rate),
                _pct(row.optimized_firing_rate),
                f"{100.0 * row.improvement:+.2f}",
            ]
        )
    lines = [format_table(headers, rows, title="Table I: adaptation results")]
    for dataset in result.datasets():
        lines.append(
            f"average improvement on {dataset}: {100.0 * result.average_improvement(dataset):+.2f} pp"
        )
    lines.append(f"overall average improvement: {100.0 * result.average_improvement():+.2f} pp")
    return "\n".join(lines)


def format_series(name: str, values: Sequence[float], std: Optional[Sequence[float]] = None) -> str:
    """Render one curve as ``name: v1, v2, ...`` with optional ``±std`` suffixes."""
    if std is not None:
        formatted = ", ".join(f"{v:.3f}±{s:.3f}" for v, s in zip(values, std))
    else:
        formatted = ", ".join(f"{v:.3f}" for v in values)
    return f"{name}: {formatted}"


def format_figure3(result: Figure3Result) -> str:
    """Render Fig. 3 as two mean±std incumbent-accuracy series."""
    lines = [
        f"Figure 3: search comparison on {result.dataset_name} / {result.model_name} "
        f"({len(result.bo_curve.runs)} runs)"
    ]
    lines.append(format_series("Our HPO       ", result.bo_curve.mean(), result.bo_curve.std()))
    lines.append(format_series("random search ", result.rs_curve.mean(), result.rs_curve.std()))
    lines.append(
        f"final incumbent accuracy: BO {100 * result.bo_curve.final_mean():.2f}% "
        f"(±{100 * result.bo_curve.final_std():.2f}) vs RS {100 * result.rs_curve.final_mean():.2f}% "
        f"(±{100 * result.rs_curve.final_std():.2f})"
    )
    return "\n".join(lines)
