"""Ablation studies of the design choices called out in DESIGN.md.

These go beyond the paper's own evaluation and probe the components of the
reproduction:

* **acquisition function** — UCB (the paper's choice) vs EI vs PI;
* **GP kernel** — Hamming (categorical) vs Matérn 5/2 vs RBF over the integer
  encoding;
* **weight sharing** — BO with vs without the shared-weight store;
* **DSC vs ASC energy** — firing rate and MAC count of the single-block model
  at matched skip counts, quantifying the trade-off discussed in
  Section III-A of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.bayes_opt import BayesianOptimizer
from repro.core.objectives import AccuracyDropObjective
from repro.core.weight_sharing import WeightStore
from repro.data import load_dataset
from repro.data.loaders import DatasetSplits
from repro.experiments.config import ExperimentScale, dataset_kwargs, get_scale, model_kwargs
from repro.experiments.figure1 import run_figure1
from repro.gp.kernels import HammingKernel, Matern52Kernel, RBFKernel
from repro.models import get_template
from repro.snn.mac import estimate_energy
from repro.training.snn_trainer import SNNTrainingConfig


@dataclass
class AblationResult:
    """Outcome of one ablation: a metric value per configuration."""

    name: str
    metric_name: str
    values: Dict[str, float] = field(default_factory=dict)
    details: Dict[str, object] = field(default_factory=dict)

    def best(self) -> str:
        """Configuration with the highest metric value."""
        if not self.values:
            raise ValueError("no ablation values recorded")
        return max(self.values, key=self.values.__getitem__)


def _search_setup(scale: ExperimentScale, dataset: str, model: str, seed: int):
    splits = load_dataset(dataset, **dataset_kwargs(scale, dataset))
    input_channels = splits.sample_shape[1] if splits.is_temporal else splits.sample_shape[0]
    template = get_template(
        model, **model_kwargs(scale, model, input_channels=input_channels, num_classes=splits.num_classes)
    )
    return splits, template


def _make_objective(template, splits: DatasetSplits, scale: ExperimentScale, seed: int, share: bool = True):
    training = SNNTrainingConfig(
        epochs=scale.candidate_finetune_epochs,
        batch_size=scale.batch_size,
        learning_rate=scale.learning_rate,
        num_steps=scale.num_steps,
        optimizer="sgd",
        momentum=0.9,
        seed=seed,
    )
    return AccuracyDropObjective(
        template=template,
        splits=splits,
        training_config=training,
        weight_store=WeightStore() if share else None,
        update_store=share,
        measure_firing_rate=False,
        build_seed=seed,
    )


def run_acquisition_ablation(
    scale: Optional[ExperimentScale] = None,
    dataset: str = "cifar10-dvs",
    model: str = "resnet18",
    acquisitions: Optional[List[str]] = None,
    seed: int = 0,
) -> AblationResult:
    """Compare acquisition functions by final incumbent validation accuracy."""
    scale = scale or get_scale()
    acquisitions = acquisitions or ["ucb", "ei", "pi"]
    splits, template = _search_setup(scale, dataset, model, seed)
    result = AblationResult(name="acquisition", metric_name="incumbent_accuracy")
    for acquisition in acquisitions:
        objective = _make_objective(template, splits, scale, seed)
        optimizer = BayesianOptimizer(
            template.search_space(),
            objective,
            acquisition=acquisition,
            initial_points=scale.bo_initial_points,
            rng=seed,
        )
        history = optimizer.optimize(scale.bo_iterations)
        result.values[acquisition] = history.incumbent_accuracies()[-1]
        result.details[acquisition] = history
    return result


def run_kernel_ablation(
    scale: Optional[ExperimentScale] = None,
    dataset: str = "cifar10-dvs",
    model: str = "resnet18",
    seed: int = 0,
) -> AblationResult:
    """Compare GP kernels by final incumbent validation accuracy."""
    scale = scale or get_scale()
    splits, template = _search_setup(scale, dataset, model, seed)
    kernels = {
        "hamming": HammingKernel(),
        "matern52": Matern52Kernel(length_scale=1.5),
        "rbf": RBFKernel(length_scale=1.5),
    }
    result = AblationResult(name="kernel", metric_name="incumbent_accuracy")
    for name, kernel in kernels.items():
        objective = _make_objective(template, splits, scale, seed)
        optimizer = BayesianOptimizer(
            template.search_space(),
            objective,
            kernel=kernel,
            initial_points=scale.bo_initial_points,
            rng=seed,
        )
        history = optimizer.optimize(scale.bo_iterations)
        result.values[name] = history.incumbent_accuracies()[-1]
        result.details[name] = history
    return result


def run_weight_sharing_ablation(
    scale: Optional[ExperimentScale] = None,
    dataset: str = "cifar10-dvs",
    model: str = "resnet18",
    seed: int = 0,
) -> AblationResult:
    """BO with shared weights vs BO training every candidate from scratch."""
    scale = scale or get_scale()
    splits, template = _search_setup(scale, dataset, model, seed)
    result = AblationResult(name="weight_sharing", metric_name="incumbent_accuracy")
    for name, share in (("shared", True), ("from_scratch", False)):
        objective = _make_objective(template, splits, scale, seed, share=share)
        optimizer = BayesianOptimizer(
            template.search_space(),
            objective,
            initial_points=scale.bo_initial_points,
            rng=seed,
        )
        history = optimizer.optimize(scale.bo_iterations)
        result.values[name] = history.incumbent_accuracies()[-1]
        result.details[name] = history
    return result


def run_dsc_vs_asc_energy(
    scale: Optional[ExperimentScale] = None,
    dataset: str = "cifar10-dvs",
    seed: int = 0,
) -> AblationResult:
    """Quantify the DSC/ASC trade-off: firing rate, MACs and estimated energy.

    Reproduces the Section III-A discussion: at matched numbers of skip
    connections, addition-type skips raise the firing rate while DenseNet-like
    skips raise the MAC count; energy is estimated with the standard
    pJ-per-operation model of :mod:`repro.snn.mac`.
    """
    scale = scale or get_scale()
    splits = load_dataset(dataset, **dataset_kwargs(scale, dataset))
    result = AblationResult(name="dsc_vs_asc_energy", metric_name="snn_accuracy")
    for kind in ("dsc", "asc"):
        sweep = run_figure1(kind, scale=scale, splits=splits, seed=seed)
        last = sweep.points[-1]
        energy = estimate_energy(last.macs_per_step, last.firing_rate, scale.num_steps)
        result.values[kind] = last.snn_accuracy
        result.details[kind] = {
            "firing_rate": last.firing_rate,
            "macs_per_step": last.macs_per_step,
            "snn_energy_nj": energy.snn_energy_nj,
            "points": sweep.points,
        }
    return result
