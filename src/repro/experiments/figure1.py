"""Figure 1 (c, d): skip-connection analysis on the single-block architecture.

For each ``n_skip`` in ``0..3`` and each connection type (DSC, ASC) the
experiment

1. builds the 4-convolution single-block architecture with ``n_skip`` skip
   connections of that type feeding the final layer,
2. trains the ANN variant (on the time-collapsed frames, since a conventional
   ANN has no time axis — the paper likewise treats the ANN reference on DVS
   data as the non-spiking counterpart of the same topology),
3. trains the SNN variant with surrogate-gradient BPTT on the event frames,
4. records the ANN test accuracy, the SNN test accuracy and the SNN's average
   firing rate.

The expected qualitative result (paper Section III-A): accuracy rises and the
ANN–SNN gap shrinks as skips are added, for both connection types, while ASC
raises the firing rate more than DSC and DSC raises the MAC count instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.adjacency import ASC, DSC
from repro.data import load_dataset
from repro.data.loaders import ArrayDataset, DatasetSplits
from repro.experiments.config import ExperimentScale, dataset_kwargs, get_scale
from repro.models.blocks import NeuronConfig
from repro.models.single_block import build_single_block_template, single_block_sweep_spec
from repro.snn.mac import MACCounter
from repro.training.snn_trainer import SNNTrainer, SNNTrainingConfig
from repro.training.trainer import Trainer, TrainingConfig


@dataclass
class Figure1Point:
    """One point of the sweep: a (connection type, n_skip) configuration."""

    connection_type: str
    n_skip: int
    ann_accuracy: float
    snn_accuracy: float
    firing_rate: float
    macs_per_step: float = 0.0

    @property
    def accuracy_gap(self) -> float:
        """ANN minus SNN accuracy (the drop the paper tracks)."""
        return self.ann_accuracy - self.snn_accuracy


@dataclass
class Figure1Result:
    """Full sweep for one connection type (one panel of Fig. 1)."""

    connection_type: str
    dataset_name: str
    points: List[Figure1Point] = field(default_factory=list)

    def n_skips(self) -> List[int]:
        """Swept skip counts."""
        return [point.n_skip for point in self.points]

    def ann_accuracies(self) -> List[float]:
        """ANN test accuracy per skip count."""
        return [point.ann_accuracy for point in self.points]

    def snn_accuracies(self) -> List[float]:
        """SNN test accuracy per skip count."""
        return [point.snn_accuracy for point in self.points]

    def firing_rates(self) -> List[float]:
        """SNN average firing rate per skip count."""
        return [point.firing_rate for point in self.points]

    def macs(self) -> List[float]:
        """Per-step MAC count per skip count."""
        return [point.macs_per_step for point in self.points]


def temporal_to_static(dataset: ArrayDataset) -> ArrayDataset:
    """Collapse the time axis of event-frame data by averaging (for the ANN)."""
    if not dataset.is_temporal:
        return dataset
    return ArrayDataset(dataset.inputs.mean(axis=1), dataset.labels, num_classes=dataset.num_classes)


def static_splits(splits: DatasetSplits) -> DatasetSplits:
    """Time-collapsed view of temporal splits (identity for static data)."""
    if not splits.is_temporal:
        return splits
    return DatasetSplits(
        train=temporal_to_static(splits.train),
        val=temporal_to_static(splits.val),
        test=temporal_to_static(splits.test),
        name=f"{splits.name}-static",
    )


def run_figure1(
    connection_type: str,
    scale: Optional[ExperimentScale] = None,
    dataset: str = "cifar10-dvs",
    splits: Optional[DatasetSplits] = None,
    n_skip_values: Optional[List[int]] = None,
    seed: int = 0,
) -> Figure1Result:
    """Run the Fig. 1 sweep for one connection type ("dsc" or "asc")."""
    scale = scale or get_scale()
    if splits is None:
        splits = load_dataset(dataset, **dataset_kwargs(scale, dataset))
    ann_splits = static_splits(splits)
    n_skip_values = n_skip_values if n_skip_values is not None else [0, 1, 2, 3]

    input_channels = splits.sample_shape[1] if splits.is_temporal else splits.sample_shape[0]
    template = build_single_block_template(
        input_channels=input_channels,
        num_classes=splits.num_classes,
        channels=scale.single_block_channels,
    )
    neuron = NeuronConfig()
    result = Figure1Result(connection_type=connection_type, dataset_name=splits.name)

    ann_config = TrainingConfig(
        epochs=scale.ann_epochs,
        batch_size=scale.batch_size,
        learning_rate=scale.learning_rate,
        optimizer="sgd",
        momentum=0.9,
        seed=seed,
    )
    snn_config = SNNTrainingConfig(
        epochs=scale.snn_epochs,
        batch_size=scale.batch_size,
        learning_rate=scale.learning_rate,
        optimizer="sgd",
        momentum=0.9,
        num_steps=scale.num_steps,
        seed=seed,
    )

    for n_skip in n_skip_values:
        spec = single_block_sweep_spec(n_skip, connection_type)

        ann_model = template.build(spec, spiking=False, rng=seed)
        ann_trainer = Trainer(ann_config)
        ann_trainer.fit_splits(ann_model, ann_splits)
        ann_accuracy = ann_trainer.evaluate(ann_model, ann_splits.test)

        snn_model = template.build(spec, spiking=True, neuron_config=neuron, rng=seed)
        snn_trainer = SNNTrainer(snn_config)
        snn_trainer.fit_splits(snn_model, splits)
        snn_accuracy, stats = snn_trainer.evaluate_with_firing_rate(snn_model, splits.test)

        reference_split = splits.test if len(splits.test) else splits.train
        sample = reference_split.inputs[:1]
        if splits.is_temporal:
            sample = sample[:, 0]
        macs = MACCounter(snn_model).count(sample).total

        result.points.append(
            Figure1Point(
                connection_type=connection_type,
                n_skip=n_skip,
                ann_accuracy=ann_accuracy,
                snn_accuracy=snn_accuracy,
                firing_rate=stats.average_firing_rate,
                macs_per_step=macs,
            )
        )
    return result


def run_figure1_pair(
    scale: Optional[ExperimentScale] = None,
    dataset: str = "cifar10-dvs",
    seed: int = 0,
) -> Dict[str, Figure1Result]:
    """Run both panels (DSC and ASC) on a shared dataset instance."""
    scale = scale or get_scale()
    splits = load_dataset(dataset, **dataset_kwargs(scale, dataset))
    return {
        "dsc": run_figure1("dsc", scale=scale, splits=splits, seed=seed),
        "asc": run_figure1("asc", scale=scale, splits=splits, seed=seed),
    }
