"""Dependency-free ASCII plotting for experiment results.

The environment has no matplotlib, so the figures of the paper are rendered as
text: line charts for the Fig. 3 search curves and grouped bar charts for the
Fig. 1 accuracy/firing-rate panels.  The output is deliberately simple (fixed
width, one character per cell) but is enough to eyeball the *shape* of the
results — which is what the reproduction is judged on — directly in a
terminal or a CI log.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.figure1 import Figure1Result
from repro.experiments.figure3 import Figure3Result


def ascii_line_chart(
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 14,
    y_label: str = "",
    x_label: str = "iteration",
    markers: str = "*o+x#@",
) -> str:
    """Render one or more numeric series as an ASCII line chart.

    Each series gets its own marker; points are linearly mapped onto a
    ``height`` x ``width`` character grid with a y-axis scale printed on the
    left and a legend underneath.
    """
    if not series:
        raise ValueError("no series to plot")
    all_values = np.concatenate([np.asarray(values, dtype=float) for values in series.values() if len(values)])
    if all_values.size == 0:
        raise ValueError("series are empty")
    lo, hi = float(all_values.min()), float(all_values.max())
    if hi - lo < 1e-12:
        hi = lo + 1.0
    max_len = max(len(values) for values in series.values())
    grid = [[" " for _ in range(width)] for _ in range(height)]

    for series_index, values in enumerate(series.values()):
        marker = markers[series_index % len(markers)]
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            continue
        for point_index, value in enumerate(values):
            x = 0 if max_len == 1 else int(round(point_index / (max_len - 1) * (width - 1)))
            y = int(round((value - lo) / (hi - lo) * (height - 1)))
            row = height - 1 - y
            grid[row][x] = marker

    lines = []
    if y_label:
        lines.append(y_label)
    for row_index, row in enumerate(grid):
        value = hi - (hi - lo) * row_index / (height - 1)
        lines.append(f"{value:8.3f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + x_label)
    for series_index, name in enumerate(series):
        lines.append(f"  {markers[series_index % len(markers)]} = {name}")
    return "\n".join(lines)


def ascii_scatter(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 14,
    x_label: str = "x",
    y_label: str = "y",
    marker: str = "*",
) -> str:
    """Render one point cloud (e.g. a Pareto front) as an ASCII scatter plot.

    Both axes are linearly scaled to the data range, with the y-axis scale on
    the left and the x-axis range printed underneath — enough to eyeball the
    shape of a trade-off curve in a terminal or CI log.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.size == 0 or xs.shape != ys.shape:
        raise ValueError("need matching, non-empty x/y sequences")
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    if x_hi - x_lo < 1e-12:
        x_hi = x_lo + 1.0
    if y_hi - y_lo < 1e-12:
        y_hi = y_lo + 1.0
    grid = [[" " for _ in range(width)] for _ in range(height)]
    for x, y in zip(xs, ys):
        column = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
        row = height - 1 - int(round((y - y_lo) / (y_hi - y_lo) * (height - 1)))
        grid[row][column] = marker
    lines = [y_label]
    for row_index, row in enumerate(grid):
        value = y_hi - (y_hi - y_lo) * row_index / (height - 1)
        lines.append(f"{value:8.3f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + f"{x_label}: {x_lo:.3f} .. {x_hi:.3f}")
    return "\n".join(lines)


def ascii_bar_chart(
    labels: Sequence[str],
    groups: Dict[str, Sequence[float]],
    width: int = 40,
    value_format: str = "{:.2f}",
) -> str:
    """Render grouped horizontal bars (one row per label per group)."""
    if not groups:
        raise ValueError("no groups to plot")
    all_values = np.concatenate([np.asarray(v, dtype=float) for v in groups.values()])
    maximum = float(all_values.max()) if all_values.size else 1.0
    if maximum <= 0:
        maximum = 1.0
    lines = []
    label_width = max(len(str(label)) for label in labels) if labels else 4
    group_width = max(len(name) for name in groups)
    for index, label in enumerate(labels):
        for name, values in groups.items():
            value = float(values[index])
            bar = "#" * int(round(value / maximum * width))
            lines.append(
                f"{str(label):>{label_width}s} {name:>{group_width}s} | {bar} {value_format.format(value)}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def plot_figure1(result: Figure1Result) -> str:
    """Fig. 1 panel as ASCII bars: ANN/SNN accuracy and firing rate per n_skip."""
    labels = [f"n_skip={n}" for n in result.n_skips()]
    accuracy_chart = ascii_bar_chart(
        labels,
        {
            "ANN acc %": [100 * v for v in result.ann_accuracies()],
            "SNN acc %": [100 * v for v in result.snn_accuracies()],
        },
    )
    rate_chart = ascii_bar_chart(
        labels, {"firing rate %": [100 * v for v in result.firing_rates()]}
    )
    panel = "c" if result.connection_type == "dsc" else "d"
    return (
        f"Figure 1 ({panel}) — {result.connection_type.upper()} on {result.dataset_name}\n"
        f"{accuracy_chart}\n\n{rate_chart}"
    )


def plot_figure3(result: Figure3Result, width: int = 60, height: int = 14) -> str:
    """Fig. 3 as an ASCII line chart of the two mean incumbent-accuracy curves."""
    series = {
        "Our HPO": (100 * result.bo_curve.mean()).tolist(),
        "random search": (100 * result.rs_curve.mean()).tolist(),
    }
    chart = ascii_line_chart(series, width=width, height=height, y_label="incumbent test accuracy (%)")
    return f"Figure 3 — {result.dataset_name} / {result.model_name}\n{chart}"
