"""Experiment harness regenerating every table and figure of the paper.

* :mod:`repro.experiments.config` — experiment scales (smoke / default / paper)
  controlling dataset size, model width, simulation steps and search budget;
* :mod:`repro.experiments.figure1` — the skip-connection analysis sweep
  (Fig. 1c: DSC, Fig. 1d: ASC): ANN vs SNN accuracy and SNN firing rate as a
  function of the number of skip connections;
* :mod:`repro.experiments.table1` — the adaptation results (Table I): ANN,
  vanilla SNN and optimized SNN accuracy plus firing rates for every
  (dataset, model) pair;
* :mod:`repro.experiments.figure3` — Bayesian optimization vs random search
  (Fig. 3): incumbent accuracy per iteration, mean ± std over repeated runs;
* :mod:`repro.experiments.pareto_front` — the multi-objective search:
  accuracy–energy–latency Pareto front and hypervolume trace over the same
  search space (the trade-off the paper's scalar objective collapses);
* :mod:`repro.experiments.ablations` — additional studies of the design
  choices (acquisition function, kernel, weight sharing, surrogate slope,
  DSC-vs-ASC energy trade-off);
* :mod:`repro.experiments.reporting` — plain-text table/series formatting used
  by the benchmark harness and the examples.
"""

from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.figure1 import Figure1Point, Figure1Result, run_figure1, run_figure1_pair
from repro.experiments.table1 import Table1Result, Table1Row, run_table1, run_table1_cell
from repro.experiments.figure3 import Figure3Result, SearchCurve, run_figure3
from repro.experiments.pareto_front import (
    ParetoFrontPoint,
    ParetoResult,
    format_pareto,
    plot_pareto,
    run_pareto_front,
)
from repro.experiments.ablations import (
    AblationResult,
    run_acquisition_ablation,
    run_dsc_vs_asc_energy,
    run_kernel_ablation,
    run_weight_sharing_ablation,
)
from repro.experiments.reporting import format_figure1, format_figure3, format_series, format_table, format_table1
from repro.experiments.plots import (
    ascii_bar_chart,
    ascii_line_chart,
    ascii_scatter,
    plot_figure1,
    plot_figure3,
)
from repro.experiments.io import load_result, save_result

__all__ = [
    "ExperimentScale",
    "get_scale",
    "Figure1Point",
    "Figure1Result",
    "run_figure1",
    "run_figure1_pair",
    "Table1Result",
    "Table1Row",
    "run_table1",
    "run_table1_cell",
    "Figure3Result",
    "SearchCurve",
    "run_figure3",
    "ParetoFrontPoint",
    "ParetoResult",
    "format_pareto",
    "plot_pareto",
    "run_pareto_front",
    "AblationResult",
    "run_acquisition_ablation",
    "run_dsc_vs_asc_energy",
    "run_kernel_ablation",
    "run_weight_sharing_ablation",
    "format_figure1",
    "format_figure3",
    "format_series",
    "format_table",
    "format_table1",
    "ascii_bar_chart",
    "ascii_line_chart",
    "ascii_scatter",
    "plot_figure1",
    "plot_figure3",
    "load_result",
    "save_result",
]
