"""Table I: adaptation results on three datasets x three architectures.

For every (dataset, model) cell the experiment runs the full
:class:`~repro.core.adapter.SNNAdapter` pipeline and records the paper's
columns: ANN accuracy (static data only), vanilla SNN accuracy, optimized SNN
accuracy, vanilla firing rate and optimized firing rate.

Expected qualitative result: the optimized SNN beats the vanilla conversion on
every cell (the paper reports an average improvement of roughly +8-11
percentage points per dataset), and the optimized firing rate is moderately
higher than the vanilla one (more skip connections raise activity).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.core.adapter import AdaptationConfig, AdaptationResult, SNNAdapter
from repro.data import load_dataset
from repro.data.loaders import DatasetSplits
from repro.experiments.config import ExperimentScale, dataset_kwargs, get_scale, model_kwargs
from repro.models import get_template
from repro.training.snn_trainer import SNNTrainingConfig
from repro.training.trainer import TrainingConfig

#: dataset -> optimizer choice used in the paper's experimental setup
PAPER_OPTIMIZERS: Dict[str, str] = {
    "cifar10": "sgd",
    "cifar10-dvs": "sgd",
    "dvs128-gesture": "adam",
}

DEFAULT_DATASETS: Sequence[str] = ("cifar10", "cifar10-dvs", "dvs128-gesture")
DEFAULT_MODELS: Sequence[str] = ("resnet18", "densenet121", "mobilenetv2")


@dataclass
class Table1Row:
    """One row of Table I (one dataset/model pair)."""

    dataset: str
    model: str
    ann_accuracy: Optional[float]
    snn_accuracy: float
    optimized_accuracy: float
    snn_firing_rate: float
    optimized_firing_rate: float
    improvement: float

    @classmethod
    def from_result(cls, dataset: str, model: str, result: AdaptationResult) -> "Table1Row":
        """Build a row from an adaptation result."""
        return cls(
            dataset=dataset,
            model=model,
            ann_accuracy=result.ann_accuracy,
            snn_accuracy=result.snn_accuracy,
            optimized_accuracy=result.optimized_accuracy,
            snn_firing_rate=result.snn_firing_rate,
            optimized_firing_rate=result.optimized_firing_rate,
            improvement=result.accuracy_improvement,
        )


@dataclass
class Table1Result:
    """All rows of the table plus per-dataset average improvements."""

    rows: List[Table1Row] = field(default_factory=list)
    results: List[AdaptationResult] = field(default_factory=list)

    def average_improvement(self, dataset: Optional[str] = None) -> float:
        """Mean accuracy improvement, optionally restricted to one dataset."""
        rows = [row for row in self.rows if dataset is None or row.dataset == dataset]
        if not rows:
            return 0.0
        return float(sum(row.improvement for row in rows) / len(rows))

    def datasets(self) -> List[str]:
        """Datasets present in the table, in row order."""
        seen: List[str] = []
        for row in self.rows:
            if row.dataset not in seen:
                seen.append(row.dataset)
        return seen


def _adaptation_config(
    scale: ExperimentScale, dataset: str, seed: int, workers: int, async_workers: int = 0
) -> AdaptationConfig:
    optimizer = PAPER_OPTIMIZERS.get(dataset, "sgd")
    ann_training = TrainingConfig(
        epochs=scale.ann_epochs,
        batch_size=scale.batch_size,
        learning_rate=scale.learning_rate,
        optimizer=optimizer,
        momentum=0.9,
        seed=seed,
    )
    snn_training = SNNTrainingConfig(
        epochs=scale.snn_epochs,
        batch_size=scale.batch_size,
        learning_rate=scale.learning_rate,
        optimizer=optimizer,
        momentum=0.9,
        num_steps=scale.num_steps,
        seed=seed,
    )
    return AdaptationConfig(
        ann_training=ann_training,
        snn_training=snn_training,
        candidate_finetune_epochs=scale.candidate_finetune_epochs,
        final_finetune_epochs=scale.final_finetune_epochs,
        bo_iterations=scale.bo_iterations,
        bo_batch_size=scale.bo_batch_size,
        bo_initial_points=scale.bo_initial_points,
        workers=workers,
        async_workers=async_workers,
        seed=seed,
    )


def run_table1_cell(
    dataset: str,
    model: str,
    scale: Optional[ExperimentScale] = None,
    splits: Optional[DatasetSplits] = None,
    seed: int = 0,
    workers: int = 1,
    async_workers: int = 0,
    cache_dir: Optional[str] = None,
    cache_sharded: bool = False,
) -> AdaptationResult:
    """Run the adaptation pipeline for a single (dataset, model) pair.

    ``cache_dir`` enables the persistent evaluation store: BO candidate
    evaluations are written to disk — each with a content-addressed snapshot
    of the candidate's trained weights — and re-used by any later run sharing
    the directory, which replays the snapshots into its shared weight store
    so the final fine-tune starts warm even on a fully-cached run.
    ``cache_sharded`` switches that store to the per-writer shard layout so
    concurrent processes sharing ``cache_dir`` never contend on one file.
    ``async_workers >= 1`` evaluates BO candidates on the asynchronous
    executor (no batch barrier) instead of the ``workers``-wide batch path.
    """
    scale = scale or get_scale()
    if splits is None:
        splits = load_dataset(dataset, **dataset_kwargs(scale, dataset))
    input_channels = splits.sample_shape[1] if splits.is_temporal else splits.sample_shape[0]
    template = get_template(
        model, **model_kwargs(scale, model, input_channels=input_channels, num_classes=splits.num_classes)
    )
    config = _adaptation_config(scale, dataset, seed, workers, async_workers)
    config.cache_dir = cache_dir
    config.cache_sharded = cache_sharded
    adapter = SNNAdapter(template, splits, config)
    return adapter.run()


def run_table1(
    scale: Optional[ExperimentScale] = None,
    datasets: Sequence[str] = DEFAULT_DATASETS,
    models: Sequence[str] = DEFAULT_MODELS,
    seed: int = 0,
    workers: int = 1,
    async_workers: int = 0,
    cache_dir: Optional[str] = None,
    cache_sharded: bool = False,
) -> Table1Result:
    """Run the full Table-I grid (datasets x models)."""
    scale = scale or get_scale()
    table = Table1Result()
    for dataset in datasets:
        splits = load_dataset(dataset, **dataset_kwargs(scale, dataset))
        for model in models:
            result = run_table1_cell(
                dataset,
                model,
                scale=scale,
                splits=splits,
                seed=seed,
                workers=workers,
                async_workers=async_workers,
                cache_dir=cache_dir,
                cache_sharded=cache_sharded,
            )
            table.results.append(result)
            table.rows.append(Table1Row.from_result(dataset, model, result))
    return table
