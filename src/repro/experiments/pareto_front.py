"""Pareto-front experiment: accuracy–energy–latency trade-offs of the search space.

The paper's figures report the *scalar* outcome of the search; this harness
reports the *trade-off surface* the scalar search collapses.  One run drives
:class:`~repro.core.multi_objective.MultiObjectiveBayesianOptimizer` over the
skip-connection space of one template on one dataset, with candidate
evaluations measuring validation accuracy (trainer path), energy and MACs
(the Horowitz MAC/energy model of :mod:`repro.snn.mac`) and — when the
``latency`` objective is requested — the real inference latency from a
repeated timed forward pass on the graph-free fast path (median of K runs,
warmup excluded) — and emits the non-dominated front plus the hypervolume
trace per evaluation.

Evaluations flow through the same cache/worker plumbing as every other
experiment: with ``cache_dir`` set, rows persist the per-objective metrics
dict, so a fully-cached re-run reproduces the identical front without
re-training a single candidate (at any ``async_workers`` count — the
multi-objective async engine is deterministic by construction).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.cache import (
    CachedObjective,
    dataset_fingerprint_fields,
    evaluation_store_for,
    row_metrics,
    snapshot_store_for,
)
from repro.core.pareto import ParetoFront
from repro.core.multi_objective import (
    MultiObjectiveBayesianOptimizer,
    ObjectiveConstraint,
    resolve_objective_specs,
)
from repro.core.objectives import AccuracyDropObjective
from repro.core.weight_sharing import WeightStore
from repro.data import load_dataset
from repro.experiments.config import ExperimentScale, dataset_kwargs, get_scale, model_kwargs
from repro.models import get_template
from repro.trace import span
from repro.training.snn_trainer import SNNTrainingConfig


class SearchStopped(Exception):
    """Raised from a progress callback to stop a search cooperatively.

    :func:`run_pareto_front` (and the serving layer's job runner) catches it,
    drains any in-flight evaluations and returns the partial result — the
    mechanism behind ``repro serve``'s graceful shutdown.
    """


@dataclass
class ParetoFrontPoint:
    """One non-dominated architecture: encoding plus raw per-objective metrics."""

    encoding: List[int]
    #: raw-scale objective values keyed by objective name (accuracy as
    #: accuracy, not its negation)
    objectives: Dict[str, float]
    num_skips: int = 0


@dataclass
class ParetoResult:
    """The front, the hypervolume trace and the run metadata."""

    dataset_name: str
    model_name: str
    objective_names: List[str]
    front: List[ParetoFrontPoint] = field(default_factory=list)
    #: hypervolume after each evaluation observed once the reference existed
    hypervolume_curve: List[float] = field(default_factory=list)
    #: hypervolume reference point on the minimisation scale
    reference_point: List[float] = field(default_factory=list)
    num_evaluations: int = 0
    #: evaluations that actually ran (cache misses); 0 for a fully-cached run
    fresh_evaluations: int = 0
    energy_budget: Optional[float] = None
    #: whether the run ended early via a ``should_stop`` request (the front
    #: and trace then cover only the evaluations absorbed before the stop)
    stopped: bool = False

    def front_size(self) -> int:
        """Number of non-dominated points found."""
        return len(self.front)

    def final_hypervolume(self) -> float:
        """Hypervolume of the final front (0.0 if never measured)."""
        return self.hypervolume_curve[-1] if self.hypervolume_curve else 0.0

    def feasible_front(self) -> List[ParetoFrontPoint]:
        """Front points satisfying the energy budget (all points without one)."""
        if self.energy_budget is None:
            return list(self.front)
        return [
            point
            for point in self.front
            if point.objectives.get("energy", 0.0) <= self.energy_budget
        ]


def _training_config(scale: ExperimentScale, seed: int) -> SNNTrainingConfig:
    """Candidate fine-tune configuration (also fingerprinted for the cache)."""
    return SNNTrainingConfig(
        epochs=scale.candidate_finetune_epochs,
        batch_size=scale.batch_size,
        learning_rate=scale.learning_rate,
        optimizer="sgd",
        momentum=0.9,
        num_steps=scale.num_steps,
        seed=seed,
    )


def run_pareto_front(
    scale: Optional[ExperimentScale] = None,
    dataset: str = "cifar10-dvs",
    model: str = "resnet18",
    objectives: Sequence[str] = ("accuracy", "energy"),
    energy_budget: Optional[float] = None,
    iterations: Optional[int] = None,
    seed: int = 0,
    cache_dir: Optional[str] = None,
    cache_sharded: bool = False,
    async_workers: int = 0,
    progress: Optional[Callable[[Dict[str, object]], None]] = None,
    should_stop: Optional[Callable[[], bool]] = None,
) -> ParetoResult:
    """Run the multi-objective search and return the Pareto front.

    ``iterations`` is the number of BO evaluations after the warm start
    (default: the scale's ``search_iterations``).  ``energy_budget`` adds the
    hard constraint ``energy_nj <= budget`` (feasibility-weighted
    acquisition); the reported front still contains every non-dominated
    point, with :meth:`ParetoResult.feasible_front` selecting the compliant
    subset.  The cache flags behave exactly as in the other experiments.

    ``progress`` (used by the serving layer's job manager) receives one dict
    per absorbed evaluation — encoding, raw objective values and the current
    hypervolume — as the search runs.  ``should_stop`` is polled at every
    absorption boundary; once it returns True the search raises
    :class:`SearchStopped` internally, drains in-flight evaluations (their
    store rows are kept — they were written by the evaluating process) and
    returns the partial result with ``stopped=True``.
    """
    scale = scale or get_scale()
    iterations = iterations if iterations is not None else scale.search_iterations
    specs = resolve_objective_specs(objectives)

    splits = load_dataset(dataset, **dataset_kwargs(scale, dataset))
    input_channels = splits.sample_shape[1] if splits.is_temporal else splits.sample_shape[0]
    template = get_template(
        model, **model_kwargs(scale, model, input_channels=input_channels, num_classes=splits.num_classes)
    )
    space = template.search_space()

    training = _training_config(scale, seed)
    # the real timed-latency measurement only runs when an objective will read
    # it — every timed pass costs latency_runs + warmup forward passes
    needs_latency = any(spec.metric == "latency_ms" for spec in specs)
    objective = AccuracyDropObjective(
        template=template,
        splits=splits,
        training_config=training,
        weight_store=WeightStore(),
        measure_energy=True,
        measure_latency=needs_latency,
        build_seed=seed,
    )
    search_objective = objective
    store = None
    known_keys: set = set()
    if cache_dir is not None:
        # latency-enabled runs measure strictly more than plain runs, so they
        # get their own fingerprint: a store written before timed latency
        # existed (rows without latency_ms) is never replayed into a latency
        # search — those candidates are simply re-evaluated — while plain
        # accuracy/energy runs keep hitting their pre-existing stores
        latency_fields = {"latency_runs": objective.latency_runs} if needs_latency else {}
        store = evaluation_store_for(
            cache_dir,
            ["pareto", splits.name, template.name],
            sharded=cache_sharded,
            seed=seed,
            training=asdict(training),
            **latency_fields,
            **dataset_fingerprint_fields(splits),
        )
        known_keys = set(store.keys())
        search_objective = CachedObjective(
            objective,
            store=store,
            snapshots=snapshot_store_for(store, keep_best=max(iterations + scale.bo_initial_points, 1)),
        )

    constraints = []
    if energy_budget is not None:
        constraints.append(ObjectiveConstraint("energy", upper=float(energy_budget)))

    initial = min(scale.bo_initial_points, max(1, iterations // 3))
    optimizer = MultiObjectiveBayesianOptimizer(
        space,
        search_objective,
        objectives=specs,
        constraints=constraints,
        initial_points=initial,
        batch_size=1,
        candidate_pool_size=48,
        async_workers=async_workers,
        rng=seed,
    )
    absorbed = 0

    def _callback(iteration: int, history) -> None:
        nonlocal absorbed
        for record in history.records[absorbed:]:
            absorbed += 1
            if progress is not None:
                try:
                    raw = {spec.name: spec.raw(record.metrics) for spec in specs}
                except KeyError:  # pragma: no cover - metrics-less record
                    raw = {}
                progress(
                    {
                        "type": "evaluation",
                        "iteration": int(iteration),
                        "completed": absorbed,
                        "encoding": [int(v) for v in record.spec.encode()],
                        "objectives": raw,
                        "hypervolume": optimizer.hypervolume(),
                    }
                )
        if should_stop is not None and should_stop():
            raise SearchStopped

    stopped = False
    try:
        with span(
            "pareto_front",
            dataset=splits.name,
            model=template.name,
            objectives=",".join(spec.name for spec in specs),
            async_workers=async_workers,
        ):
            history = optimizer.optimize(max(iterations - initial, 0), callback=_callback)
    except SearchStopped:
        stopped = True
        history = optimizer.history

    if store is not None:
        # fresh evaluations are counted as store growth rather than by the
        # parent-side miss counter: with worker processes, misses (and their
        # row appends) happen in the children, which the reload merges back
        store.reload()
        fresh = len(set(store.keys()) - known_keys)
    else:
        fresh = len(history)

    result = ParetoResult(
        dataset_name=splits.name,
        model_name=template.name,
        objective_names=[spec.name for spec in specs],
        hypervolume_curve=list(optimizer.hypervolume_history),
        reference_point=(
            [float(v) for v in optimizer.reference_point]
            if optimizer.reference_point is not None
            else []
        ),
        num_evaluations=len(history),
        fresh_evaluations=fresh,
        energy_budget=energy_budget,
        stopped=stopped,
    )
    for record in optimizer.front_records():
        result.front.append(
            ParetoFrontPoint(
                encoding=[int(v) for v in record.spec.encode()],
                objectives={spec.name: spec.raw(record.metrics) for spec in specs},
                num_skips=record.spec.total_skips(),
            )
        )
    return result


def pareto_front_from_rows(
    rows: Sequence[Dict[str, object]],
    objectives: Sequence[str] = ("accuracy", "energy"),
    energy_budget: Optional[float] = None,
    source: str = "store",
) -> ParetoResult:
    """Extract the non-dominated front from stored evaluation rows.

    The serving layer's ``GET /pareto`` endpoint (and any offline analysis of
    an accumulated cache directory) answers from rows the searches already
    paid for, without running a fresh evaluation: every row whose metrics
    cover the requested objectives contributes one point, the non-dominated
    subset is kept, and the hypervolume is reported against a reference
    derived exactly like the live optimizer's (nadir plus a 10% margin of the
    observed range per objective).

    Rows lacking a required metric (e.g. pre-latency rows queried for the
    ``latency`` objective) are skipped, not errors — the front covers what
    the store can answer.  ``num_evaluations`` counts the contributing rows;
    ``fresh_evaluations`` is 0 by construction.
    """
    specs = resolve_objective_specs(objectives)
    contributing: List[Dict[str, object]] = []
    vectors: List[np.ndarray] = []
    raws: List[Dict[str, float]] = []
    for row in rows:
        metrics = row_metrics(row)
        if any(spec.metric not in metrics for spec in specs):
            continue
        contributing.append(row)
        vectors.append(np.array([spec.value(metrics) for spec in specs]))
        raws.append({spec.name: spec.raw(metrics) for spec in specs})
    result = ParetoResult(
        dataset_name=source,
        model_name=source,
        objective_names=[spec.name for spec in specs],
        num_evaluations=len(contributing),
        fresh_evaluations=0,
        energy_budget=energy_budget,
    )
    if not contributing:
        return result
    observed = np.stack(vectors)
    nadir = observed.max(axis=0)
    spread = observed.max(axis=0) - observed.min(axis=0)
    margin = 0.1 * np.where(spread > 0, spread, np.maximum(np.abs(nadir), 1.0))
    reference = nadir + margin
    front = ParetoFront()
    for index, values in enumerate(vectors):
        front.insert(values, payload={"index": index})
    result.reference_point = [float(v) for v in reference]
    result.hypervolume_curve = [float(front.hypervolume(reference))]
    points = sorted(front, key=lambda point: float(point.values[0]))
    for point in points:
        index = point.payload["index"]
        row = contributing[index]
        encoding = [int(v) for v in row.get("encoding", [])]
        result.front.append(
            ParetoFrontPoint(
                encoding=encoding,
                objectives=raws[index],
                num_skips=int(row.get("extra", {}).get("num_skips", 0)),
            )
        )
    return result


def format_pareto(result: ParetoResult) -> str:
    """Plain-text report: the front table plus the hypervolume summary."""
    names = result.objective_names
    header = ["#"] + names + ["skips"]
    widths = [max(len(column), 12) for column in header]
    lines = [
        f"Pareto front — {result.dataset_name} / {result.model_name} "
        f"({result.num_evaluations} evaluations, {result.front_size()} non-dominated)"
    ]
    if result.energy_budget is not None:
        feasible = len(result.feasible_front())
        lines.append(f"energy budget: {result.energy_budget:g} nJ ({feasible}/{result.front_size()} points within)")
    lines.append("  ".join(f"{h:>{w}}" for h, w in zip(header, widths)))
    for index, point in enumerate(result.front):
        cells = [str(index)] + [f"{point.objectives[name]:.4f}" for name in names] + [str(point.num_skips)]
        lines.append("  ".join(f"{c:>{w}}" for c, w in zip(cells, widths)))
    reference = ", ".join(f"{v:.3f}" for v in result.reference_point)
    lines.append(f"hypervolume: {result.final_hypervolume():.4f} (reference {reference})")
    return "\n".join(lines)


def plot_pareto(result: ParetoResult) -> str:
    """ASCII view: the front scatter (first two objectives) + hypervolume trace."""
    from repro.experiments.plots import ascii_line_chart, ascii_scatter

    if len(result.objective_names) < 2 or not result.front:
        return "(front is empty — nothing to plot)"
    x_name, y_name = result.objective_names[:2]
    xs = [point.objectives[x_name] for point in result.front]
    ys = [point.objectives[y_name] for point in result.front]
    scatter = ascii_scatter(xs, ys, x_label=x_name, y_label=y_name)
    chart = scatter
    if result.hypervolume_curve:
        chart += "\n\n" + ascii_line_chart(
            {"hypervolume": result.hypervolume_curve},
            y_label="hypervolume",
            x_label="evaluation",
        )
    return chart
