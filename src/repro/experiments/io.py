"""Serialisation of experiment results to and from JSON.

The benchmark harness prints paper-style tables to stdout; for programmatic
post-processing (and for EXPERIMENTS.md regeneration) every result container
can also be written to a JSON file and read back.  Only plain numbers, lists
and strings are stored — architecture specs are stored via their integer
encoding plus block depths so they can be reconstructed without pickling.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.core.adjacency import BlockAdjacency
from repro.core.search_space import ArchitectureSpec
from repro.experiments.figure1 import Figure1Point, Figure1Result
from repro.experiments.figure3 import Figure3Result, SearchCurve
from repro.experiments.pareto_front import ParetoFrontPoint, ParetoResult
from repro.experiments.table1 import Table1Result, Table1Row

PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# architecture specs
# ---------------------------------------------------------------------------

def spec_to_dict(spec: ArchitectureSpec) -> Dict:
    """JSON-serialisable description of an architecture spec."""
    return {
        "name": spec.name,
        "block_depths": [block.depth for block in spec.blocks],
        "encodings": [[int(v) for v in block.encode()] for block in spec.blocks],
    }


def spec_from_dict(payload: Dict) -> ArchitectureSpec:
    """Inverse of :func:`spec_to_dict`."""
    blocks = [
        BlockAdjacency.from_encoding(depth, encoding)
        for depth, encoding in zip(payload["block_depths"], payload["encodings"])
    ]
    return ArchitectureSpec(blocks, name=payload.get("name", ""))


# ---------------------------------------------------------------------------
# figure 1
# ---------------------------------------------------------------------------

def figure1_to_dict(result: Figure1Result) -> Dict:
    """JSON-serialisable view of a Fig. 1 panel."""
    return {
        "connection_type": result.connection_type,
        "dataset_name": result.dataset_name,
        "points": [
            {
                "n_skip": point.n_skip,
                "ann_accuracy": point.ann_accuracy,
                "snn_accuracy": point.snn_accuracy,
                "firing_rate": point.firing_rate,
                "macs_per_step": point.macs_per_step,
            }
            for point in result.points
        ],
    }


def figure1_from_dict(payload: Dict) -> Figure1Result:
    """Inverse of :func:`figure1_to_dict`."""
    result = Figure1Result(
        connection_type=payload["connection_type"], dataset_name=payload["dataset_name"]
    )
    for point in payload["points"]:
        result.points.append(
            Figure1Point(
                connection_type=payload["connection_type"],
                n_skip=int(point["n_skip"]),
                ann_accuracy=float(point["ann_accuracy"]),
                snn_accuracy=float(point["snn_accuracy"]),
                firing_rate=float(point["firing_rate"]),
                macs_per_step=float(point.get("macs_per_step", 0.0)),
            )
        )
    return result


# ---------------------------------------------------------------------------
# table 1
# ---------------------------------------------------------------------------

def table1_to_dict(result: Table1Result) -> Dict:
    """JSON-serialisable view of Table I (rows only, not the raw histories)."""
    return {
        "rows": [
            {
                "dataset": row.dataset,
                "model": row.model,
                "ann_accuracy": row.ann_accuracy,
                "snn_accuracy": row.snn_accuracy,
                "optimized_accuracy": row.optimized_accuracy,
                "snn_firing_rate": row.snn_firing_rate,
                "optimized_firing_rate": row.optimized_firing_rate,
                "improvement": row.improvement,
            }
            for row in result.rows
        ]
    }


def table1_from_dict(payload: Dict) -> Table1Result:
    """Inverse of :func:`table1_to_dict`."""
    result = Table1Result()
    for row in payload["rows"]:
        result.rows.append(
            Table1Row(
                dataset=row["dataset"],
                model=row["model"],
                ann_accuracy=row.get("ann_accuracy"),
                snn_accuracy=float(row["snn_accuracy"]),
                optimized_accuracy=float(row["optimized_accuracy"]),
                snn_firing_rate=float(row["snn_firing_rate"]),
                optimized_firing_rate=float(row["optimized_firing_rate"]),
                improvement=float(row["improvement"]),
            )
        )
    return result


# ---------------------------------------------------------------------------
# figure 3
# ---------------------------------------------------------------------------

def figure3_to_dict(result: Figure3Result) -> Dict:
    """JSON-serialisable view of the Fig. 3 search curves."""
    return {
        "dataset_name": result.dataset_name,
        "model_name": result.model_name,
        "bo_runs": [list(map(float, run)) for run in result.bo_curve.runs],
        "rs_runs": [list(map(float, run)) for run in result.rs_curve.runs],
    }


def figure3_from_dict(payload: Dict) -> Figure3Result:
    """Inverse of :func:`figure3_to_dict`."""
    result = Figure3Result(dataset_name=payload["dataset_name"], model_name=payload["model_name"])
    result.bo_curve = SearchCurve(method="Our HPO", runs=[list(run) for run in payload["bo_runs"]])
    result.rs_curve = SearchCurve(method="random search", runs=[list(run) for run in payload["rs_runs"]])
    return result


# ---------------------------------------------------------------------------
# pareto front
# ---------------------------------------------------------------------------

def pareto_to_dict(result: ParetoResult) -> Dict:
    """JSON-serialisable view of a Pareto-front experiment."""
    return {
        "dataset_name": result.dataset_name,
        "model_name": result.model_name,
        "objective_names": list(result.objective_names),
        "front": [
            {
                "encoding": list(point.encoding),
                "objectives": {str(k): float(v) for k, v in point.objectives.items()},
                "num_skips": int(point.num_skips),
            }
            for point in result.front
        ],
        "hypervolume_curve": [float(v) for v in result.hypervolume_curve],
        "reference_point": [float(v) for v in result.reference_point],
        "num_evaluations": int(result.num_evaluations),
        "fresh_evaluations": int(result.fresh_evaluations),
        "energy_budget": result.energy_budget,
        "stopped": bool(result.stopped),
    }


def pareto_from_dict(payload: Dict) -> ParetoResult:
    """Inverse of :func:`pareto_to_dict`."""
    result = ParetoResult(
        dataset_name=payload["dataset_name"],
        model_name=payload["model_name"],
        objective_names=list(payload["objective_names"]),
        hypervolume_curve=[float(v) for v in payload.get("hypervolume_curve", [])],
        reference_point=[float(v) for v in payload.get("reference_point", [])],
        num_evaluations=int(payload.get("num_evaluations", 0)),
        fresh_evaluations=int(payload.get("fresh_evaluations", 0)),
        energy_budget=payload.get("energy_budget"),
        stopped=bool(payload.get("stopped", False)),
    )
    for point in payload.get("front", []):
        result.front.append(
            ParetoFrontPoint(
                encoding=[int(v) for v in point["encoding"]],
                objectives={str(k): float(v) for k, v in point["objectives"].items()},
                num_skips=int(point.get("num_skips", 0)),
            )
        )
    return result


# ---------------------------------------------------------------------------
# file helpers
# ---------------------------------------------------------------------------

_SERIALIZERS = {
    Figure1Result: figure1_to_dict,
    Table1Result: table1_to_dict,
    Figure3Result: figure3_to_dict,
    ParetoResult: pareto_to_dict,
}


def save_result(result, path: PathLike) -> Path:
    """Write any supported result container to ``path`` as JSON."""
    for cls, serializer in _SERIALIZERS.items():
        if isinstance(result, cls):
            payload = {"kind": cls.__name__, "data": serializer(result)}
            path = Path(path)
            path.write_text(json.dumps(payload, indent=2))
            return path
    raise TypeError(f"cannot serialise result of type {type(result).__name__}")


def load_result(path: PathLike):
    """Read a result container previously written by :func:`save_result`."""
    payload = json.loads(Path(path).read_text())
    kind = payload.get("kind")
    data = payload.get("data", {})
    if kind == "Figure1Result":
        return figure1_from_dict(data)
    if kind == "Table1Result":
        return table1_from_dict(data)
    if kind == "Figure3Result":
        return figure3_from_dict(data)
    if kind == "ParetoResult":
        return pareto_from_dict(data)
    raise ValueError(f"unknown result kind {kind!r} in {path}")
