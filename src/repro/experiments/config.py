"""Experiment scales.

The paper's experiments run for hundreds of epochs on GPU; the reproduction
exposes the same experiment *structure* at three scales so that it can be
exercised anywhere:

* ``smoke``   — seconds per experiment; used by the unit/integration tests.
* ``default`` — a few minutes per experiment on a laptop CPU; used by the
  benchmark harness (``pytest benchmarks/``) and the examples.
* ``paper``   — the closest CPU-feasible approximation of the paper's setup
  (larger synthetic datasets, wider models, more steps/epochs/iterations).

The scale can also be selected globally through the ``REPRO_SCALE``
environment variable, which the benchmarks honour.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence


@dataclass(frozen=True)
class ExperimentScale:
    """All knobs that trade fidelity for wall-clock time."""

    name: str
    #: synthetic dataset sizes
    num_samples_static: int
    num_samples_dvs: int
    num_samples_gesture: int
    image_size: int
    num_steps: int
    #: model widths
    stage_channels: Sequence[int]
    single_block_channels: int
    #: training budget
    ann_epochs: int
    snn_epochs: int
    candidate_finetune_epochs: int
    final_finetune_epochs: int
    batch_size: int
    learning_rate: float
    #: search budget
    bo_iterations: int
    bo_initial_points: int
    bo_batch_size: int
    search_iterations: int
    figure3_runs: int
    #: misc
    seed: int = 0

    def with_overrides(self, **kwargs) -> "ExperimentScale":
        """Copy with selected fields replaced."""
        return replace(self, **kwargs)


SMOKE = ExperimentScale(
    name="smoke",
    num_samples_static=80,
    num_samples_dvs=60,
    num_samples_gesture=66,
    image_size=10,
    num_steps=4,
    stage_channels=(4, 6),
    single_block_channels=4,
    ann_epochs=1,
    snn_epochs=1,
    candidate_finetune_epochs=1,
    final_finetune_epochs=1,
    batch_size=16,
    learning_rate=0.05,
    bo_iterations=2,
    bo_initial_points=2,
    bo_batch_size=1,
    search_iterations=4,
    figure3_runs=2,
)

DEFAULT = ExperimentScale(
    name="default",
    num_samples_static=300,
    num_samples_dvs=200,
    num_samples_gesture=220,
    image_size=12,
    num_steps=6,
    stage_channels=(6, 10),
    single_block_channels=6,
    ann_epochs=6,
    snn_epochs=6,
    candidate_finetune_epochs=2,
    final_finetune_epochs=3,
    batch_size=16,
    learning_rate=0.05,
    bo_iterations=5,
    bo_initial_points=3,
    bo_batch_size=1,
    search_iterations=10,
    figure3_runs=3,
)

PAPER = ExperimentScale(
    name="paper",
    num_samples_static=1200,
    num_samples_dvs=800,
    num_samples_gesture=880,
    image_size=16,
    num_steps=10,
    stage_channels=(8, 16),
    single_block_channels=8,
    ann_epochs=20,
    snn_epochs=20,
    candidate_finetune_epochs=4,
    final_finetune_epochs=8,
    batch_size=32,
    learning_rate=0.03,
    bo_iterations=20,
    bo_initial_points=5,
    bo_batch_size=2,
    search_iterations=40,
    figure3_runs=5,
)

_SCALES: Dict[str, ExperimentScale] = {"smoke": SMOKE, "default": DEFAULT, "paper": PAPER}


def get_scale(name: Optional[str] = None) -> ExperimentScale:
    """Resolve a scale by name; ``None`` reads ``REPRO_SCALE`` (default ``"default"``)."""
    if name is None:
        name = os.environ.get("REPRO_SCALE", "default")
    key = name.strip().lower()
    if key not in _SCALES:
        raise KeyError(f"unknown experiment scale {name!r}; available: {sorted(_SCALES)}")
    return _SCALES[key]


def dataset_kwargs(scale: ExperimentScale, dataset: str) -> Dict:
    """Synthetic-generator overrides implementing ``scale`` for ``dataset``."""
    dataset = dataset.lower()
    if dataset in ("cifar10", "cifar-10"):
        return {
            "num_samples": scale.num_samples_static,
            "image_size": scale.image_size,
            "seed": scale.seed,
        }
    if "gesture" in dataset:
        return {
            "num_samples": scale.num_samples_gesture,
            "image_size": scale.image_size,
            "num_steps": scale.num_steps,
            "seed": scale.seed,
        }
    return {
        "num_samples": scale.num_samples_dvs,
        "image_size": scale.image_size,
        "num_steps": scale.num_steps,
        "seed": scale.seed,
    }


def model_kwargs(scale: ExperimentScale, model: str, input_channels: int, num_classes: int) -> Dict:
    """Template-builder overrides implementing ``scale`` for ``model``."""
    model = model.lower()
    kwargs: Dict = {"input_channels": input_channels, "num_classes": num_classes}
    if model in ("single_block", "singleblock", "single-block"):
        kwargs["channels"] = scale.single_block_channels
    else:
        kwargs["stage_channels"] = tuple(scale.stage_channels)
    return kwargs
