"""Random-search baseline (paper Section IV-B, Fig. 3).

The baseline samples adjacency assignments uniformly at random *without
replacement* and evaluates each one; in the paper every random-search
candidate is trained from scratch (no weight sharing), "which requires a
massive computing budget".  The class accepts any objective, so the
experiments can reproduce both the paper's setting (a from-scratch objective)
and an ablation where random search also benefits from weight sharing.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.bayes_opt import OptimizationHistory, OptimizationRecord
from repro.core.objectives import EvaluationResult, Objective
from repro.core.search_space import ArchitectureSpec, SearchSpace
from repro.tensor.random import default_rng


class RandomSearch:
    """Uniform random search over a :class:`SearchSpace` without replacement."""

    def __init__(
        self,
        search_space: SearchSpace,
        objective: Objective | Callable[[ArchitectureSpec], EvaluationResult],
        include_default: bool = False,
        rng=None,
    ) -> None:
        self.search_space = search_space
        self.objective = objective
        self.include_default = bool(include_default)
        self._rng = default_rng(rng)
        self.history = OptimizationHistory()

    def optimize(self, num_iterations: int, callback: Optional[Callable[[int, OptimizationHistory], None]] = None) -> OptimizationHistory:
        """Evaluate ``num_iterations`` distinct random architectures."""
        if num_iterations < 0:
            raise ValueError("num_iterations must be non-negative")
        evaluated = self.history.evaluated_keys()
        iteration = len(self.history)
        if self.include_default and not len(self.history):
            default = self.search_space.default_spec()
            result = self.objective(default)
            self.history.append(OptimizationRecord.from_result(0, result, source="rs"))
            evaluated.add(default.encode().tobytes())
            iteration += 1
            if callback is not None:
                callback(iteration, self.history)
        while iteration < num_iterations:
            batch = self.search_space.sample_batch(1, rng=self._rng, exclude=evaluated)
            if not batch:
                break  # the whole space has been evaluated
            spec = batch[0]
            evaluated.add(spec.encode().tobytes())
            result = self.objective(spec)
            self.history.append(OptimizationRecord.from_result(iteration, result, source="rs"))
            iteration += 1
            if callback is not None:
                callback(iteration, self.history)
        return self.history

    def best_spec(self) -> ArchitectureSpec:
        """Architecture with the smallest observed objective value."""
        return self.history.best().spec
