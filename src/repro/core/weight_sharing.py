"""Shared-weight store used by the Bayesian-optimization candidates.

Training every candidate from scratch would make the search as expensive as
random search; the paper instead shares previously trained weights among all
topologies and only fine-tunes each candidate for a few epochs ("Because we
optimize the skip connections, we can use previously trained weights and share
them among all possible topologies").

Weight transfer works because architectures in the search space differ only in
their skip wiring: most layers keep identical shapes across candidates and can
inherit trained weights verbatim; layers whose input grew or shrank because of
an added/removed concatenation are re-initialised (shape-mismatched keys are
simply skipped).  The store can optionally be refreshed from the best
candidate seen so far, so knowledge accumulates over the search.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.nn.module import Module


class WeightStore:
    """Container of shared weights keyed by dotted parameter path."""

    def __init__(self, state: Optional[Dict[str, np.ndarray]] = None) -> None:
        self._state: Dict[str, np.ndarray] = dict(state or {})
        self._best_score: Optional[float] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_model(cls, model: Module) -> "WeightStore":
        """Snapshot ``model``'s parameters and buffers into a new store."""
        return cls(model.state_dict())

    def __len__(self) -> int:
        return len(self._state)

    @property
    def is_empty(self) -> bool:
        """Whether the store holds any weights."""
        return not self._state

    def keys(self) -> List[str]:
        """Stored parameter/buffer paths."""
        return list(self._state)

    # ------------------------------------------------------------------
    def apply_to(self, model: Module) -> Dict[str, int]:
        """Load compatible weights into ``model``.

        Returns a small report: how many tensors were transferred and how many
        were skipped because the target model has no parameter of that name or
        the shapes differ (e.g. a convolution whose input grew through a new
        DSC connection).
        """
        if self.is_empty:
            return {"loaded": 0, "skipped": 0}
        unapplied = model.load_state_dict(self._state, strict=False)
        return {"loaded": len(self._state) - len(unapplied), "skipped": len(unapplied)}

    def update_from(self, model: Module, score: Optional[float] = None, only_if_better: bool = False) -> bool:
        """Refresh the store from ``model``.

        With ``only_if_better=True`` the update only happens when ``score``
        (higher is better, e.g. validation accuracy) beats the best score seen
        so far; returns whether the store was updated.
        """
        if only_if_better and score is not None and self._best_score is not None and score <= self._best_score:
            return False
        self._state = model.state_dict()
        if score is not None:
            self._best_score = score if self._best_score is None else max(self._best_score, score)
        return True

    def merge_from(self, model: Module) -> int:
        """Add any tensors from ``model`` whose path is not yet in the store.

        Existing entries are kept (they may come from a better candidate);
        returns the number of newly added tensors.  This lets the store
        accumulate weights for layer shapes that only exist in some candidates
        (e.g. the enlarged convolutions of heavily concatenated blocks).
        """
        added = 0
        for key, value in model.state_dict().items():
            if key not in self._state:
                self._state[key] = value
                added += 1
        return added

    def get(self, key: str) -> Optional[np.ndarray]:
        """Return the stored tensor at ``key`` (or ``None``)."""
        return self._state.get(key)
