"""Shared-weight store used by the Bayesian-optimization candidates.

Training every candidate from scratch would make the search as expensive as
random search; the paper instead shares previously trained weights among all
topologies and only fine-tunes each candidate for a few epochs ("Because we
optimize the skip connections, we can use previously trained weights and share
them among all possible topologies").

Weight transfer works because architectures in the search space differ only in
their skip wiring: most layers keep identical shapes across candidates and can
inherit trained weights verbatim; layers whose input grew or shrank because of
an added/removed concatenation are re-initialised (shape-mismatched keys are
simply skipped).  The store can optionally be refreshed from the best
candidate seen so far, so knowledge accumulates over the search.

Updates can travel as data instead of side effects: a :class:`WeightUpdate`
packages one candidate's trained state so that whoever orchestrates the
evaluation (e.g. :class:`~repro.core.bayes_opt.BayesianOptimizer` merging a
parallel batch in the parent process, or a cache replaying a persisted
snapshot) can apply it to the shared store explicitly.  ``apply`` is
idempotent, so re-applying the same update — a cache hit repeated within one
run, or a sequential evaluation whose update was already applied locally —
never corrupts the store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.nn.module import Module


def _copy_state(state: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Deep-copy a state dict so the store never aliases live model arrays."""
    return {key: np.array(value, copy=True) for key, value in state.items()}


class WeightStore:
    """Container of shared weights keyed by dotted parameter path.

    Every capture path (constructor, :meth:`update_from_state`,
    :meth:`merge_from_state`) copies the incoming arrays: a store entry must
    be a frozen snapshot, not a view that subsequent in-place training of the
    source model silently mutates.
    """

    def __init__(self, state: Optional[Dict[str, np.ndarray]] = None) -> None:
        self._state: Dict[str, np.ndarray] = _copy_state(state or {})
        self._best_score: Optional[float] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_model(cls, model: Module) -> "WeightStore":
        """Snapshot ``model``'s parameters and buffers into a new store."""
        return cls(model.state_dict())

    def __len__(self) -> int:
        return len(self._state)

    @property
    def is_empty(self) -> bool:
        """Whether the store holds any weights."""
        return not self._state

    def keys(self) -> List[str]:
        """Stored parameter/buffer paths."""
        return list(self._state)

    def state_dict(self) -> Dict[str, np.ndarray]:
        """A deep copy of the stored weights (safe to mutate or persist)."""
        return _copy_state(self._state)

    # ------------------------------------------------------------------
    def apply_to(self, model: Module) -> Dict[str, int]:
        """Load compatible weights into ``model``.

        Returns a small report: how many tensors were transferred and how many
        were skipped because the target model has no parameter of that name or
        the shapes differ (e.g. a convolution whose input grew through a new
        DSC connection).
        """
        if self.is_empty:
            return {"loaded": 0, "skipped": 0}
        unapplied = model.load_state_dict(self._state, strict=False)
        return {"loaded": len(self._state) - len(unapplied), "skipped": len(unapplied)}

    def update_from_state(
        self, state: Dict[str, np.ndarray], score: Optional[float] = None, only_if_better: bool = False
    ) -> bool:
        """Refresh the store from a raw state dict (arrays are copied).

        With ``only_if_better=True`` the update only happens when ``score``
        (higher is better, e.g. validation accuracy) beats the best score seen
        so far; returns whether the store was updated.
        """
        if only_if_better and score is not None and self._best_score is not None and score <= self._best_score:
            return False
        self._state = _copy_state(state)
        if score is not None:
            self._best_score = score if self._best_score is None else max(self._best_score, score)
        return True

    def update_from(self, model: Module, score: Optional[float] = None, only_if_better: bool = False) -> bool:
        """Refresh the store from ``model`` (see :meth:`update_from_state`)."""
        return self.update_from_state(model.state_dict(), score=score, only_if_better=only_if_better)

    def merge_from_state(self, state: Dict[str, np.ndarray]) -> int:
        """Add any tensors from ``state`` whose path is not yet in the store.

        Existing entries are kept (they may come from a better candidate);
        returns the number of newly added tensors.  This lets the store
        accumulate weights for layer shapes that only exist in some candidates
        (e.g. the enlarged convolutions of heavily concatenated blocks).
        """
        added = 0
        for key, value in state.items():
            if key not in self._state:
                self._state[key] = np.array(value, copy=True)
                added += 1
        return added

    def merge_from(self, model: Module) -> int:
        """Add ``model``'s tensors missing from the store (see :meth:`merge_from_state`)."""
        return self.merge_from_state(model.state_dict())

    def get(self, key: str) -> Optional[np.ndarray]:
        """Return the stored tensor at ``key`` (or ``None``)."""
        return self._state.get(key)


@dataclass
class WeightUpdate:
    """One candidate's trained state, carried by its evaluation result.

    Instead of mutating a :class:`WeightStore` from inside the objective —
    which is lost when the objective runs in a ``multiprocessing`` child, and
    never happens at all when a cache answers from disk — the trained state
    travels back to the orchestrator as data.  ``apply`` reproduces the
    classic side effect: refresh the store when the score beats the best seen
    (``only_if_better``) and merge any missing tensors.

    ``snapshot`` is filled in once the update has been persisted to a
    :class:`~repro.core.snapshots.WeightSnapshotStore`, so cached evaluation
    rows can reference it.
    """

    state: Dict[str, np.ndarray]
    score: Optional[float] = None
    snapshot: Optional[str] = None

    def apply(self, store: WeightStore) -> bool:
        """Merge this update into ``store``; idempotent. Returns whether the
        store's primary state was refreshed (vs. only merged)."""
        updated = store.update_from_state(self.state, score=self.score, only_if_better=True)
        store.merge_from_state(self.state)
        return updated
