"""Search-space construction over per-block adjacency matrices (Fig. 2, step 1).

Given an ANN topology, each block contributes a :class:`BlockSearchInfo`
describing how many layers it has and which connection types are allowed at
each skip position (for example, positions feeding a depthwise convolution in
a MobileNetV2 block cannot accept concatenation because a depthwise layer's
channel count is fixed).  The :class:`SearchSpace` is the Cartesian product of
the per-block choices; an :class:`ArchitectureSpec` is one point of that
product — a full assignment of adjacency matrices, one per block.

The space also provides the integer encoding consumed by the Gaussian-process
surrogate, uniform random sampling (with or without replacement), exhaustive
enumeration for small spaces, and single-entry neighbourhood moves.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.adjacency import ASC, DSC, NO_CONNECTION, SKIP_TYPES, BlockAdjacency
from repro.tensor.random import default_rng


@dataclass(frozen=True)
class BlockSearchInfo:
    """Searchable structure of one block.

    Attributes
    ----------
    depth:
        Number of layers in the block.
    allowed_types:
        Mapping from skip position ``(source_node, destination_node)`` to the
        tuple of allowed codes at that position.  Positions not listed default
        to all of ``(0, 1, 2)``.
    name:
        Optional label (e.g. ``"stage2.block0"``) used in reports.
    """

    depth: int
    allowed_types: Dict[Tuple[int, int], Tuple[int, ...]] = field(default_factory=dict)
    name: str = "block"

    def positions(self) -> List[Tuple[int, int]]:
        """Skip positions of the block, in canonical order."""
        return BlockAdjacency(self.depth).skip_positions()

    def allowed_at(self, position: Tuple[int, int]) -> Tuple[int, ...]:
        """Allowed codes at ``position`` (defaults to every code)."""
        return tuple(self.allowed_types.get(position, SKIP_TYPES))

    def num_choices(self) -> int:
        """Number of distinct adjacency matrices for this block."""
        total = 1
        for position in self.positions():
            total *= len(self.allowed_at(position))
        return total


class ArchitectureSpec:
    """One candidate architecture: one adjacency matrix per block.

    Specs are treated as immutable once constructed (the constructor copies
    its blocks), which lets :meth:`encode` cache its result — the encoding is
    the single hottest object in the search loop (GP inputs, dedup keys,
    cache keys).  The cached array is marked read-only; ``.copy()`` it if a
    mutable view is needed.
    """

    def __init__(self, blocks: Sequence[BlockAdjacency], name: str = "") -> None:
        if not blocks:
            raise ValueError("an architecture needs at least one block")
        self.blocks: Tuple[BlockAdjacency, ...] = tuple(block.copy() for block in blocks)
        self.name = name
        self._encoding: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def encode(self) -> np.ndarray:
        """Concatenated integer encoding of all blocks (GP input); cached."""
        if self._encoding is None:
            encoding = np.concatenate([block.encode() for block in self.blocks])
            encoding.flags.writeable = False
            self._encoding = encoding
        return self._encoding

    def total_skips(self) -> int:
        """Total number of skip connections across all blocks."""
        return sum(block.total_skips() for block in self.blocks)

    def count_by_type(self) -> Dict[int, int]:
        """Total number of DSC and ASC connections across all blocks."""
        totals = {DSC: 0, ASC: 0}
        for block in self.blocks:
            for code, count in block.count_by_type().items():
                totals[code] += count
        return totals

    def num_blocks(self) -> int:
        """Number of blocks in the architecture."""
        return len(self.blocks)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ArchitectureSpec)
            and len(other.blocks) == len(self.blocks)
            and all(a == b for a, b in zip(self.blocks, other.blocks))
        )

    def __hash__(self) -> int:
        return hash(tuple(hash(block) for block in self.blocks))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f"{self.name}: " if self.name else ""
        return f"ArchitectureSpec({label}blocks={len(self.blocks)}, skips={self.total_skips()})"


class SearchSpace:
    """The set Lambda of all admissible per-block adjacency assignments."""

    def __init__(self, block_infos: Sequence[BlockSearchInfo], name: str = "search-space") -> None:
        if not block_infos:
            raise ValueError("search space needs at least one block")
        self.block_infos: Tuple[BlockSearchInfo, ...] = tuple(block_infos)
        self.name = name

    # ------------------------------------------------------------------
    # size / dimensionality
    # ------------------------------------------------------------------
    def size(self) -> int:
        """Number of distinct architectures in the space."""
        total = 1
        for info in self.block_infos:
            total *= info.num_choices()
        return total

    def encoding_length(self) -> int:
        """Dimensionality of the flat integer encoding."""
        return sum(len(info.positions()) for info in self.block_infos)

    # ------------------------------------------------------------------
    # encode / decode
    # ------------------------------------------------------------------
    def encode(self, spec: ArchitectureSpec) -> np.ndarray:
        """Encode an architecture into the flat integer vector used by the GP."""
        self._check_spec(spec)
        return spec.encode()

    def decode(self, encoding: Sequence[int]) -> ArchitectureSpec:
        """Inverse of :meth:`encode`."""
        encoding = np.asarray(encoding, dtype=np.int64).reshape(-1)
        if encoding.shape[0] != self.encoding_length():
            raise ValueError(
                f"encoding has length {encoding.shape[0]}, expected {self.encoding_length()}"
            )
        blocks = []
        offset = 0
        for info in self.block_infos:
            length = len(info.positions())
            block_encoding = encoding[offset : offset + length]
            offset += length
            blocks.append(BlockAdjacency.from_encoding(info.depth, block_encoding))
        spec = ArchitectureSpec(blocks, name=self.name)
        self._check_spec(spec)
        return spec

    def _check_spec(self, spec: ArchitectureSpec) -> None:
        if len(spec.blocks) != len(self.block_infos):
            raise ValueError(
                f"architecture has {len(spec.blocks)} blocks, search space expects {len(self.block_infos)}"
            )
        for block, info in zip(spec.blocks, self.block_infos):
            if block.depth != info.depth:
                raise ValueError(
                    f"block depth mismatch: architecture {block.depth} vs search space {info.depth}"
                )
            for position in info.positions():
                code = int(block.matrix[position])
                if code not in info.allowed_at(position):
                    raise ValueError(
                        f"connection code {code} not allowed at position {position} of block {info.name!r}"
                    )

    def contains(self, spec: ArchitectureSpec) -> bool:
        """Whether ``spec`` is an admissible point of this space."""
        try:
            self._check_spec(spec)
            return True
        except ValueError:
            return False

    # ------------------------------------------------------------------
    # sampling / enumeration
    # ------------------------------------------------------------------
    def sample(self, rng=None) -> ArchitectureSpec:
        """Draw one architecture uniformly at random."""
        rng = default_rng(rng)
        blocks = []
        for info in self.block_infos:
            block = BlockAdjacency(info.depth)
            for position in info.positions():
                allowed = info.allowed_at(position)
                block.matrix[position] = int(rng.choice(allowed))
            blocks.append(block)
        return ArchitectureSpec(blocks, name=self.name)

    def _position_choices(self) -> List[np.ndarray]:
        """Allowed codes per flat encoding position, cached (sampling hot path)."""
        cached = getattr(self, "_choices_cache", None)
        if cached is None:
            cached = []
            for info in self.block_infos:
                for position in info.positions():
                    cached.append(np.asarray(info.allowed_at(position), dtype=np.int64))
            self._choices_cache = cached
        return cached

    def _spec_from_encoding(self, encoding: np.ndarray) -> ArchitectureSpec:
        """Build a spec from an encoding known to be admissible (no validation)."""
        blocks = []
        offset = 0
        for info in self.block_infos:
            length = len(info.positions())
            blocks.append(BlockAdjacency.from_encoding(info.depth, encoding[offset : offset + length]))
            offset += length
        spec = ArchitectureSpec(blocks, name=self.name)
        cached = np.asarray(encoding, dtype=np.int64).copy()
        cached.flags.writeable = False
        spec._encoding = cached
        return spec

    def sample_batch(self, count: int, rng=None, unique: bool = True, exclude: Optional[set] = None) -> List[ArchitectureSpec]:
        """Draw ``count`` architectures, optionally distinct and excluding a set.

        Encodings are drawn in vectorised batches (one ``rng.integers`` call
        per encoding position per round, rather than one ``rng.choice`` per
        position per candidate), which keeps the per-iteration candidate-pool
        refill off the optimizer's critical path.  When the space is too small
        to honour the uniqueness constraints the returned list is simply
        shorter than requested.
        """
        if count < 1:
            return []
        rng = default_rng(rng)
        choices = self._position_choices()
        results: List[ArchitectureSpec] = []
        seen = set(exclude or ())
        attempts = 0
        max_attempts = max(100, 50 * count)
        while len(results) < count and attempts < max_attempts:
            draw = min(count - len(results), max_attempts - attempts)
            attempts += draw
            columns = [allowed[rng.integers(0, len(allowed), size=draw)] for allowed in choices]
            encodings = np.stack(columns, axis=1)  # (draw, num_positions)
            for row in encodings:
                key = row.tobytes()
                if unique and key in seen:
                    continue
                seen.add(key)
                results.append(self._spec_from_encoding(row))
                if len(results) >= count:
                    break
        return results

    def enumerate(self, limit: Optional[int] = None) -> Iterator[ArchitectureSpec]:
        """Yield every architecture of the space (optionally capped at ``limit``)."""
        per_position_choices: List[Tuple[int, ...]] = []
        for info in self.block_infos:
            for position in info.positions():
                per_position_choices.append(info.allowed_at(position))
        count = 0
        for assignment in itertools.product(*per_position_choices):
            yield self.decode(np.asarray(assignment))
            count += 1
            if limit is not None and count >= limit:
                return

    def default_spec(self) -> ArchitectureSpec:
        """The all-zero (no extra skip connections) architecture."""
        return ArchitectureSpec([BlockAdjacency(info.depth) for info in self.block_infos], name=self.name)

    def neighbors(self, spec: ArchitectureSpec) -> Iterator[ArchitectureSpec]:
        """Yield admissible architectures differing from ``spec`` in one entry."""
        self._check_spec(spec)
        for block_index, (block, info) in enumerate(zip(spec.blocks, self.block_infos)):
            for position in info.positions():
                current = int(block.matrix[position])
                for code in info.allowed_at(position):
                    if code == current:
                        continue
                    new_blocks = list(spec.blocks)
                    new_blocks[block_index] = block.with_connection(position[0], position[1], code)
                    yield ArchitectureSpec(new_blocks, name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SearchSpace(name={self.name!r}, blocks={len(self.block_infos)}, "
            f"dim={self.encoding_length()}, size={self.size()})"
        )
