"""Bayesian optimization of skip-connection adjacency matrices (Fig. 2, step 2).

The optimizer follows Section III-B of the paper:

* the objective ``f(A)`` — the ANN→SNN accuracy drop — is modelled by a
  Gaussian-process prior over the flat integer encoding of the adjacency
  matrices;
* candidates are chosen by maximising an acquisition function over a pool of
  unevaluated architectures sampled from the search space; the paper uses the
  Upper Confidence Bound, which trades exploration for exploitation as the
  search progresses;
* the search proposes ``batch_size`` (``k``) architectures per iteration so
  that their (independent) evaluations can run in parallel; a constant-liar
  strategy keeps the proposals diverse within one batch;
* evaluated weights are shared across candidates through the objective's
  :class:`~repro.core.weight_sharing.WeightStore`, so each evaluation is only
  a short fine-tune.

The search engine is **incremental** by default: the GP surrogate is fitted
once and every subsequent observation extends its cached Cholesky factor in
O(n^2) (:meth:`~repro.gp.gp.GaussianProcessRegressor.update`), and the
constant-liar inner loop conditions a
:class:`~repro.gp.gp.FantasizedPosterior` instead of refitting per lie — the
train-pool cross-kernel block is computed once per iteration and grown by one
row per fantasy.  ``incremental=False`` restores the legacy
refit-from-scratch engine (kept for A/B benchmarking in
``benchmarks/bench_search.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.objectives import EvaluationResult, Objective, resolve_weight_context
from repro.core.search_space import ArchitectureSpec, SearchSpace
from repro.core.weight_sharing import WeightStore
from repro.gp.acquisition import AcquisitionFunction, get_acquisition
from repro.gp.gp import GaussianProcessRegressor
from repro.gp.kernels import HammingKernel, Kernel
from repro.tensor.random import default_rng
from repro.trace import span
from repro.training.parallel import parallel_map


@dataclass
class OptimizationRecord:
    """One evaluated candidate."""

    iteration: int
    spec: ArchitectureSpec
    objective_value: float
    accuracy: float
    firing_rate: float = 0.0
    #: per-objective measurement dict copied from the evaluation result
    #: (empty for purely scalar objectives) — the multi-objective engine
    #: reads its per-objective training targets from here
    metrics: Dict[str, float] = field(default_factory=dict)
    source: str = "bo"
    #: submission-order index assigned by the asynchronous engine (``None``
    #: for the batch path, whose history order *is* the submission order).
    #: The async history is appended in completion order; sorting records by
    #: ticket recovers the sequence whose sequential replay reproduces the
    #: shared-store state.
    ticket: Optional[int] = None

    @classmethod
    def from_result(
        cls,
        iteration: int,
        result: EvaluationResult,
        source: str = "bo",
        ticket: Optional[int] = None,
    ) -> "OptimizationRecord":
        """Build a record from an :class:`EvaluationResult`."""
        return cls(
            iteration=iteration,
            spec=result.spec,
            objective_value=result.objective_value,
            accuracy=result.accuracy,
            firing_rate=result.firing_rate,
            metrics=dict(result.metrics),
            source=source,
            ticket=ticket,
        )


@dataclass
class OptimizationHistory:
    """Full log of a search run."""

    records: List[OptimizationRecord] = field(default_factory=list)

    def append(self, record: OptimizationRecord) -> None:
        """Add one record."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def num_evaluations(self) -> int:
        """Total number of objective evaluations."""
        return len(self.records)

    def best(self) -> OptimizationRecord:
        """Record with the smallest objective value."""
        if not self.records:
            raise ValueError("history is empty")
        return min(self.records, key=lambda record: record.objective_value)

    def incumbent_values(self) -> List[float]:
        """Best-so-far objective value after each evaluation."""
        values: List[float] = []
        best = float("inf")
        for record in self.records:
            best = min(best, record.objective_value)
            values.append(best)
        return values

    def incumbent_accuracies(self) -> List[float]:
        """Accuracy of the best-so-far candidate after each evaluation.

        This is the quantity plotted in Fig. 3 (test accuracy of the incumbent
        as a function of search iterations).
        """
        accuracies: List[float] = []
        best_value = float("inf")
        best_accuracy = 0.0
        for record in self.records:
            if record.objective_value < best_value:
                best_value = record.objective_value
                best_accuracy = record.accuracy
            accuracies.append(best_accuracy)
        return accuracies

    def evaluated_keys(self) -> set:
        """Hashable encodings of every evaluated architecture."""
        return {record.spec.encode().tobytes() for record in self.records}


class BayesianOptimizer:
    """GP + UCB Bayesian optimization over a :class:`SearchSpace`.

    Parameters
    ----------
    search_space:
        The space of adjacency assignments (Fig. 2, step 1).
    objective:
        Callable evaluating one architecture (smaller is better).
    kernel:
        GP covariance over architecture encodings; defaults to the Hamming
        kernel, which treats the encoding as categorical.
    acquisition:
        Acquisition function or name (``"ucb"`` — the paper's choice — ``"ei"``
        or ``"pi"``).
    initial_points:
        Number of random architectures evaluated before the GP is first fitted.
        The default architecture (the original topology's wiring) is always
        included as one of them, mirroring the paper's warm start.
    batch_size:
        Number of architectures proposed per iteration (the paper's ``k``
        parallel candidates).
    candidate_pool_size:
        Number of random unevaluated candidates scored by the acquisition at
        every iteration.
    workers:
        Worker processes used to evaluate a proposal batch (1 = sequential).
        Weight-sharing updates are **result-carried**: each evaluation returns
        its trained state on the result and the optimizer merges the payloads
        into the shared :class:`~repro.core.weight_sharing.WeightStore` in the
        parent after the batch returns, so no update is lost to a worker
        process (and a batch accumulates identical store contents whatever
        the worker count).
    async_workers:
        When ``>= 1``, :meth:`optimize` runs the **asynchronous** engine
        instead of the batch path: a persistent
        :class:`~repro.core.async_eval.AsyncEvaluationExecutor` keeps
        ``async_workers`` evaluations in flight, and the moment one completes
        its result is observed into the GP posterior and a fresh candidate —
        proposed by constant-liar fantasies conditioned on the still-running
        set — is submitted, so no worker ever idles behind a straggler's
        batch barrier.  The total evaluation budget is unchanged
        (``initial_points + num_iterations * batch_size``), and weight
        updates are applied in submission order
        (:class:`~repro.core.async_eval.WeightUpdateSequencer`), so the
        shared store accumulates exactly the state a sequential run over the
        same proposal sequence would.  ``0`` (default) keeps the batch path;
        ``workers`` is ignored while the async engine is active.
    weight_store:
        The shared store those payloads merge into.  Defaults to the store
        discovered on the objective itself (walking wrapper chains such as
        ``CachedObjective(EnergyAwareObjective(AccuracyDropObjective))``);
        pass it explicitly when the objective is an opaque callable.
    incremental:
        When ``True`` (default) the surrogate persists across iterations and
        new observations extend its Cholesky factor in O(n^2); the
        constant-liar loop uses rank-1 fantasy updates.  ``False`` refits from
        scratch every iteration and once per lie (the legacy engine).
    hyperopt_every:
        Re-tune the kernel hyperparameters (length scale / gamma and signal
        variance, via :func:`~repro.gp.gp.tune_kernel` marginal-likelihood
        coordinate descent) every ``hyperopt_every`` observations, rebuilding
        the incremental Cholesky factor **once** per refit and then resuming
        O(n^2) updates — so the adaptation cost is amortised over the
        incremental engine instead of paid per iteration.  ``None`` (the
        default, i.e. K=∞) never adapts: the proposal sequence is exactly
        that of an optimizer without the parameter (pinned by a seeded test).
    """

    def __init__(
        self,
        search_space: SearchSpace,
        objective: Objective | Callable[[ArchitectureSpec], EvaluationResult],
        kernel: Optional[Kernel] = None,
        acquisition: AcquisitionFunction | str = "ucb",
        initial_points: int = 3,
        batch_size: int = 1,
        candidate_pool_size: int = 64,
        noise: float = 1e-3,
        include_default: bool = True,
        workers: int = 1,
        async_workers: int = 0,
        incremental: bool = True,
        hyperopt_every: Optional[int] = None,
        weight_store: Optional[WeightStore] = None,
        rng=None,
    ) -> None:
        if initial_points < 1:
            raise ValueError("initial_points must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if candidate_pool_size < 1:
            raise ValueError("candidate_pool_size must be >= 1")
        self.search_space = search_space
        self.objective = objective
        self.kernel = kernel or HammingKernel()
        self.acquisition = get_acquisition(acquisition)
        self.initial_points = int(initial_points)
        self.batch_size = int(batch_size)
        self.candidate_pool_size = int(candidate_pool_size)
        self.noise = float(noise)
        self.include_default = bool(include_default)
        if async_workers < 0:
            raise ValueError("async_workers must be >= 0")
        self.workers = int(workers)
        self.async_workers = int(async_workers)
        self.incremental = bool(incremental)
        if hyperopt_every is not None and hyperopt_every < 1:
            raise ValueError("hyperopt_every must be >= 1 (or None to disable)")
        self.hyperopt_every = int(hyperopt_every) if hyperopt_every is not None else None
        #: history length at the last hyperparameter refit
        self._last_hyperopt = 0
        #: number of hyperparameter refits performed (tests / profiling)
        self.hyperopt_refits = 0
        self._weight_base, resolved_store = resolve_weight_context(objective)
        self.weight_store = weight_store if weight_store is not None else resolved_store
        self._rng = default_rng(rng)
        self.history = OptimizationHistory()
        # incremental engine state: the persistent surrogate, how many history
        # records it has absorbed, and the dedup key set grown per evaluation
        # (rebuilding it from the full history every iteration is O(n) encodes)
        self._surrogate: Optional[GaussianProcessRegressor] = None
        self._num_modelled = 0
        self._modelled_tail: Optional[OptimizationRecord] = None
        self._evaluated_keys: set = set()
        self._keys_watermark = 0
        self._keys_tail: Optional[OptimizationRecord] = None
        self._history_ref = self.history
        # persistent candidate pool (incremental engine only): unevaluated
        # candidates survive across iterations, and the encoded matrix handed
        # to the GP is grown by the fresh draws instead of being rebuilt — so
        # the per-iteration encoding cost is O(top-up), not O(pool).
        self._pool_specs: List[ArchitectureSpec] = []
        self._pool_keys: List[bytes] = []
        self._pool_matrix: Optional[np.ndarray] = None
        #: testing switch: when False the matrix is re-encoded from the whole
        #: pool every refresh — proposals must be identical either way
        self._pool_matrix_cache_enabled = True

    # ------------------------------------------------------------------
    def _evaluate_batch(self, specs: Sequence[ArchitectureSpec], iteration: int, source: str) -> List[OptimizationRecord]:
        """Evaluate one proposal batch and merge its weight updates.

        Local store mutation inside the objective is deferred for the
        duration of the batch: every candidate then trains from the
        batch-start shared weights (workers become stateless, and worker
        count cannot change any result), and the trained states returned on
        the results are merged into :attr:`weight_store` here, in the parent
        — which is also the only place updates can survive a
        ``multiprocessing`` child or a persistent-store replay.
        """
        defer = self._weight_base is not None and self.weight_store is not None
        if defer:
            previous_defer = self._weight_base.defer_updates
            self._weight_base.defer_updates = True
        try:
            results = parallel_map(self.objective, list(specs), workers=self.workers)
        finally:
            if defer:
                self._weight_base.defer_updates = previous_defer
        records = []
        for result in results:
            if self.weight_store is not None and result.weight_update is not None:
                result.weight_update.apply(self.weight_store)
            record = OptimizationRecord.from_result(iteration, result, source=source)
            self.history.append(record)
            self._on_record(record)
            records.append(record)
        return records

    def _on_record(self, record: OptimizationRecord) -> None:
        """Observation hook: called once per record appended to the history.

        The base engine needs nothing here (the surrogate absorbs history
        lazily in :meth:`_fit_surrogate`); subclasses maintaining additional
        per-observation state — e.g. the multi-objective engine's Pareto
        front and hypervolume trace — override it.
        """

    def _reset_incremental_state(self) -> None:
        """Forget everything absorbed from a history that was swapped out."""
        self._surrogate = None
        self._num_modelled = 0
        self._modelled_tail = None
        self._evaluated_keys = set()
        self._keys_watermark = 0
        self._keys_tail = None
        self._history_ref = self.history
        self._pool_specs = []
        self._pool_keys = []
        self._pool_matrix = None

    def _guard_incremental_state(self) -> None:
        """Detect external history replacement (not just truncation).

        ``optimize`` supports a pre-populated history, so swapping in a
        different one between calls is an in-API pattern; the absorbed prefix
        is validated by identity of its tail record, which catches
        replacement by an equal-or-longer history as well as truncation.
        """
        records = self.history.records
        stale = (
            self._history_ref is not self.history
            or self._num_modelled > len(records)
            or (self._num_modelled > 0 and records[self._num_modelled - 1] is not self._modelled_tail)
            or self._keys_watermark > len(records)
            or (self._keys_watermark > 0 and records[self._keys_watermark - 1] is not self._keys_tail)
        )
        if stale:
            self._reset_incremental_state()

    def _dedup_keys(self) -> set:
        """Keys of every evaluated architecture, grown incrementally.

        Only records appended since the last call are encoded, so the
        per-iteration cost is O(batch) instead of O(history).
        """
        self._guard_incremental_state()
        for record in self.history.records[self._keys_watermark :]:
            self._evaluated_keys.add(record.spec.encode().tobytes())
        self._keys_watermark = len(self.history)
        self._keys_tail = self.history.records[-1] if self.history.records else None
        return self._evaluated_keys

    def _initial_specs(self) -> List[ArchitectureSpec]:
        specs: List[ArchitectureSpec] = []
        if self.include_default:
            specs.append(self.search_space.default_spec())
        needed = self.initial_points - len(specs)
        if needed > 0:
            exclude = {spec.encode().tobytes() for spec in specs}
            specs.extend(self.search_space.sample_batch(needed, rng=self._rng, exclude=exclude))
        return specs[: self.initial_points]

    def _maybe_adapt_hyperparameters(self) -> bool:
        """Re-tune the kernel when ``hyperopt_every`` observations accumulated.

        Returns ``True`` when the kernel changed — the caller must then drop
        its cached surrogate(s) so the next fit rebuilds the Cholesky factor
        (once) under the new hyperparameters.
        """
        if self.hyperopt_every is None or not len(self.history):
            return False
        if not self.kernel.TUNABLE:
            # nothing to retune — skip the O(n^3) likelihood evaluation a
            # tune_kernel call would spend just to return the kernel unchanged
            return False
        if len(self.history) - self._last_hyperopt < self.hyperopt_every:
            return False
        from repro.gp.gp import tune_kernel

        with span("hyperopt", observations=len(self.history)) as tune_span:
            x = np.array([record.spec.encode() for record in self.history], dtype=np.float64)
            y = np.array([record.objective_value for record in self.history], dtype=np.float64)
            tuned, _ = tune_kernel(self.kernel, x, y, self.noise)
            self._last_hyperopt = len(self.history)
            if tuned is self.kernel:
                if tune_span:
                    tune_span.set(changed=False)
                return False
            self.kernel = tuned
            self.hyperopt_refits += 1
            if tune_span:
                tune_span.set(changed=True)
        return True

    def _fit_surrogate(self) -> GaussianProcessRegressor:
        self._guard_incremental_state()
        if self._maybe_adapt_hyperparameters():
            # the factored matrix depends on the kernel: rebuild once, then
            # resume incremental rank-k updates on the new factor
            self._surrogate = None
        if not self.incremental or self._surrogate is None:
            # full (re)fit: first iteration, legacy engine, or a history swap
            encodings = np.array([record.spec.encode() for record in self.history], dtype=np.float64)
            values = np.array([record.objective_value for record in self.history], dtype=np.float64)
            model = GaussianProcessRegressor(kernel=self.kernel, noise=self.noise)
            model.fit(encodings, values)
            self._surrogate = model
        else:
            new_records = self.history.records[self._num_modelled :]
            if new_records:
                # O(n^2 k) rank-k extension of the cached Cholesky factor
                encodings = np.array([record.spec.encode() for record in new_records], dtype=np.float64)
                values = np.array([record.objective_value for record in new_records], dtype=np.float64)
                self._surrogate.update(encodings, values)
        self._num_modelled = len(self.history)
        self._modelled_tail = self.history.records[-1] if self.history.records else None
        return self._surrogate

    # ------------------------------------------------------------------
    # persistent candidate pool
    # ------------------------------------------------------------------
    def _refresh_pool(self, exclude_extra: Optional[set] = None) -> None:
        """Drop evaluated pool entries and top the pool back up with fresh draws.

        The pool — candidates plus their encoded matrix — persists across
        iterations: already-scored candidates whose acquisition never won
        stay available (the GP re-scores them against the updated posterior
        for free), and only the top-up draws are encoded.  ``exclude_extra``
        adds keys (e.g. the async engine's in-flight set) that must neither
        survive in nor be drawn into the pool.
        """
        excluded = set(self._dedup_keys())
        if exclude_extra:
            excluded |= exclude_extra
        if self._pool_specs:
            keep = [i for i, key in enumerate(self._pool_keys) if key not in excluded]
            if len(keep) != len(self._pool_specs):
                self._pool_specs = [self._pool_specs[i] for i in keep]
                self._pool_keys = [self._pool_keys[i] for i in keep]
                if self._pool_matrix is not None:
                    self._pool_matrix = self._pool_matrix[keep]
        needed = self.candidate_pool_size - len(self._pool_specs)
        if needed > 0:
            fresh = self.search_space.sample_batch(
                needed, rng=self._rng, exclude=excluded | set(self._pool_keys)
            )
            for spec in fresh:
                self._pool_specs.append(spec)
                self._pool_keys.append(spec.encode().tobytes())
            if fresh and self._pool_matrix_cache_enabled and self._pool_matrix is not None:
                rows = np.array([spec.encode() for spec in fresh], dtype=np.float64)
                self._pool_matrix = np.concatenate([self._pool_matrix, rows], axis=0)
            else:
                self._pool_matrix = None
        if self._pool_matrix is None and self._pool_specs:
            self._pool_matrix = np.array(
                [spec.encode() for spec in self._pool_specs], dtype=np.float64
            )

    def _pool_pop(self, index: int) -> ArchitectureSpec:
        """Remove pool candidate ``index`` (it is about to be evaluated)."""
        self._pool_keys.pop(index)
        if self._pool_matrix is not None:
            self._pool_matrix = np.delete(self._pool_matrix, index, axis=0)
        return self._pool_specs.pop(index)

    def _propose_batch(self, surrogate: GaussianProcessRegressor, iteration: int) -> List[ArchitectureSpec]:
        with span("propose", iteration=iteration) as propose_span:
            if self.incremental:
                self._refresh_pool()
                if not self._pool_specs:
                    return []
                proposals = self._propose_batch_incremental(surrogate, iteration)
            else:
                evaluated = self._dedup_keys()
                pool = self.search_space.sample_batch(
                    self.candidate_pool_size, rng=self._rng, exclude=evaluated
                )
                if not pool:
                    return []
                proposals = self._propose_batch_legacy(surrogate, pool, iteration)
            if propose_span:
                propose_span.set(proposals=len(proposals))
            return proposals

    def _propose_batch_incremental(
        self, surrogate: GaussianProcessRegressor, iteration: int
    ) -> List[ArchitectureSpec]:
        """Constant-liar proposal via rank-1 fantasy updates over the pool.

        The train-pool cross-kernel block is computed once when the fantasy
        posterior is built; each lie appends one row to it and extends the
        Cholesky factor by one rank, so the whole batch costs
        O(k (n^2 + n m)) instead of k full O(n^3) refits.
        """
        best_value = self.history.best().objective_value
        fantasy = surrogate.fantasize(self._pool_matrix)
        proposals: List[ArchitectureSpec] = []
        for _ in range(self.batch_size):
            if not self._pool_specs:
                break
            mean, std = fantasy.predict()
            scores = self.acquisition(mean, std, best_observed=best_value, iteration=iteration)
            chosen_index = int(np.argmax(scores))
            proposals.append(self._pool_pop(chosen_index))
            if self._pool_specs and len(proposals) < self.batch_size:
                encoding = fantasy.remove(chosen_index)
                # constant liar: pretend the pick returned the current best
                fantasy.condition(encoding, best_value)
        return proposals

    def _propose_batch_legacy(
        self, surrogate: GaussianProcessRegressor, pool: List[ArchitectureSpec], iteration: int
    ) -> List[ArchitectureSpec]:
        """Seed engine: rebuild encoding arrays and refit the GP once per lie."""
        best_value = self.history.best().objective_value
        proposals: List[ArchitectureSpec] = []
        # constant-liar batch proposal: after choosing a candidate, pretend it
        # returned the current best value so the next pick explores elsewhere.
        lie_x: List[np.ndarray] = []
        lie_y: List[float] = []
        for _ in range(self.batch_size):
            if not pool:
                break
            encodings = np.array([spec.encode() for spec in pool], dtype=np.float64)
            mean, std = surrogate.predict(encodings)
            if lie_x:
                # refit a temporary surrogate including the lies
                all_x = np.concatenate(
                    [np.array([r.spec.encode() for r in self.history], dtype=np.float64), np.array(lie_x)], axis=0
                )
                all_y = np.concatenate(
                    [np.array([r.objective_value for r in self.history], dtype=np.float64), np.array(lie_y)]
                )
                temp = GaussianProcessRegressor(kernel=self.kernel, noise=self.noise)
                temp.fit(all_x, all_y)
                mean, std = temp.predict(encodings)
            scores = self.acquisition(mean, std, best_observed=best_value, iteration=iteration)
            chosen_index = int(np.argmax(scores))
            chosen = pool.pop(chosen_index)
            proposals.append(chosen)
            lie_x.append(chosen.encode().astype(np.float64))
            lie_y.append(best_value)
        return proposals

    # ------------------------------------------------------------------
    # asynchronous engine
    # ------------------------------------------------------------------
    def _propose_async(self, in_flight_specs, iteration: int) -> Optional[ArchitectureSpec]:
        """Propose one candidate conditioned on the in-flight set.

        The surrogate absorbs every completed observation first
        (:meth:`_fit_surrogate`, incremental), then a constant-liar
        :class:`~repro.gp.gp.FantasizedPosterior` over a fresh pool is
        conditioned on each still-running candidate — pretending, as in the
        batch path, that it will return the incumbent value — so concurrent
        proposals stay diverse even though none of them has reported back.
        """
        with span("propose", iteration=iteration) as propose_span:
            surrogate = self._fit_surrogate()
            # exclusion keys must share the dedup set's dtype (raw int64 encoding
            # bytes); the float64 view is only for conditioning the posterior
            pending = [spec.encode() for spec in in_flight_specs]
            self._refresh_pool(exclude_extra={encoding.tobytes() for encoding in pending})
            if not self._pool_specs:
                return None
            best_value = self.history.best().objective_value
            fantasy = surrogate.fantasize(self._pool_matrix)
            for encoding in pending:
                fantasy.condition(encoding.astype(np.float64), best_value)
            mean, std = fantasy.predict()
            scores = self.acquisition(mean, std, best_observed=best_value, iteration=iteration)
            if propose_span:
                propose_span.set(in_flight=len(pending), pool=len(self._pool_specs))
            return self._pool_pop(int(np.argmax(scores)))

    def _absorb_async(self, done, sequencer, iteration: int, source: str) -> OptimizationRecord:
        """Record one completed evaluation and sequence its weight update."""
        with span("absorb", ticket=done.ticket, iteration=iteration):
            sequencer.add(done.ticket, done.result.weight_update)
            record = OptimizationRecord.from_result(iteration, done.result, source=source, ticket=done.ticket)
            self.history.append(record)
            self._on_record(record)
        return record

    def _optimize_async(self, num_iterations: int, callback) -> OptimizationHistory:
        """Asynchronous engine behind :meth:`optimize` (``async_workers >= 1``).

        Keeps up to ``async_workers`` evaluations in flight on a persistent
        worker pool; each completion is observed into the posterior and
        immediately replaced by a fresh constant-liar proposal, so there is
        no batch barrier and no idle worker behind a straggler.  The
        evaluation budget, the history/record shape and the shared-store
        accumulation semantics all match the batch path.
        """
        from repro.core.async_eval import AsyncEvaluationExecutor, WeightUpdateSequencer

        budget = num_iterations * self.batch_size
        sequencer = WeightUpdateSequencer(self.weight_store)
        defer = self._weight_base is not None and self.weight_store is not None
        if defer:
            previous_defer = self._weight_base.defer_updates
            self._weight_base.defer_updates = True
        try:
            with AsyncEvaluationExecutor(self.objective, workers=self.async_workers) as executor:
                in_flight: Dict[int, ArchitectureSpec] = {}
                if not len(self.history):
                    for spec in self._initial_specs():
                        in_flight[executor.submit(spec)] = spec
                    while in_flight:
                        done = executor.next_completed()
                        del in_flight[done.ticket]
                        self._absorb_async(done, sequencer, iteration=0, source="init")
                    if callback is not None:
                        callback(0, self.history)
                proposed = completed = 0
                while proposed < budget and len(in_flight) < self.async_workers:
                    spec = self._propose_async(in_flight.values(), iteration=1 + proposed // self.batch_size)
                    if spec is None:
                        break
                    in_flight[executor.submit(spec)] = spec
                    proposed += 1
                while in_flight:
                    done = executor.next_completed()
                    del in_flight[done.ticket]
                    completed += 1
                    iteration = 1 + (completed - 1) // self.batch_size
                    self._absorb_async(done, sequencer, iteration=iteration, source="bo")
                    if proposed < budget:
                        spec = self._propose_async(in_flight.values(), iteration=1 + proposed // self.batch_size)
                        if spec is not None:
                            in_flight[executor.submit(spec)] = spec
                            proposed += 1
                    boundary = completed % self.batch_size == 0 or (not in_flight and proposed >= budget)
                    if callback is not None and completed and boundary:
                        callback(iteration, self.history)
        finally:
            if defer:
                self._weight_base.defer_updates = previous_defer
        return self.history

    # ------------------------------------------------------------------
    def optimize(self, num_iterations: int, callback: Optional[Callable[[int, OptimizationHistory], None]] = None) -> OptimizationHistory:
        """Run the search for ``num_iterations`` BO iterations.

        The total number of objective evaluations is
        ``initial_points + num_iterations * batch_size`` (capped by the size
        of the search space).  ``callback`` is invoked after every iteration
        with ``(iteration, history)`` — used by the experiment harness for
        progress reporting.  With ``async_workers >= 1`` the asynchronous
        engine runs instead of the batch path (same budget, same history
        shape; see the class docstring).
        """
        if num_iterations < 0:
            raise ValueError("num_iterations must be non-negative")
        with span(
            "search",
            iterations=num_iterations,
            batch_size=self.batch_size,
            engine="async" if self.async_workers >= 1 else "batch",
        ):
            if self.async_workers >= 1:
                return self._optimize_async(num_iterations, callback)
            if not len(self.history):
                self._evaluate_batch(self._initial_specs(), iteration=0, source="init")
                if callback is not None:
                    callback(0, self.history)
            for iteration in range(1, num_iterations + 1):
                surrogate = self._fit_surrogate()
                proposals = self._propose_batch(surrogate, iteration)
                if not proposals:
                    break
                self._evaluate_batch(proposals, iteration=iteration, source="bo")
                if callback is not None:
                    callback(iteration, self.history)
            return self.history

    def best_spec(self) -> ArchitectureSpec:
        """Architecture with the smallest observed objective value."""
        return self.history.best().spec
