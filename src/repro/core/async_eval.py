"""Asynchronous sharded evaluation executor: no straggler barriers.

The batch evaluation path (:meth:`~repro.core.bayes_opt.BayesianOptimizer._evaluate_batch`)
ships one proposal batch to a worker pool and blocks until *every* candidate
returns — so a single slow candidate (a straggler: larger model, more skip
connections, a cold cache) idles every other worker until the barrier clears.
This module removes the barrier:

* :class:`AsyncEvaluationExecutor` keeps a **persistent** pool of worker
  processes alive across the whole search and exposes a submit/next-completed
  interface: evaluations are handed out one at a time and results are
  collected in *completion* order, so a free worker can start the next
  candidate while a straggler is still running;
* :class:`WeightUpdateSequencer` re-imposes determinism where it matters —
  result-carried :class:`~repro.core.weight_sharing.WeightUpdate` payloads are
  applied to the shared :class:`~repro.core.weight_sharing.WeightStore` in
  **submission** order regardless of completion order, so the store
  accumulates exactly the state a sequential run would produce whatever the
  worker count or scheduling jitter.

The executor degrades gracefully exactly like
:func:`~repro.training.parallel.parallel_map`: with ``workers <= 1``, an
unpicklable workload, or a sandbox that cannot create processes, submissions
are queued and evaluated lazily in the parent process — identical results,
identical ordering guarantees, no subprocess machinery.  The worker start
method honours ``REPRO_MP_START_METHOD`` (see :mod:`repro.training.parallel`).

Evaluation workers were made stateless in the result-carried-update refactor
(objectives defer local store mutation, trained state rides back on the
result), which is precisely what lets one long-lived pool serve the whole
search: a worker needs nothing from the parent but the pickled objective and
a spec, and leaks nothing back but the result.

The executor is not tied to one-shot batch runs: the HTTP serving layer
(:mod:`repro.server`) runs searches under it as background jobs, and its
graceful shutdown relies on :meth:`AsyncEvaluationExecutor.cancel_pending`
plus the waiting :meth:`AsyncEvaluationExecutor.close` to drain in-flight
evaluations without losing any completed result.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.core.cache import merge_store_counters, store_counters
from repro.core.objectives import EvaluationResult
from repro.core.search_space import ArchitectureSpec
from repro.core.weight_sharing import WeightStore, WeightUpdate
from repro.tensor.sparse import aggregate_sparse_counters, merge_sparse_counters
from repro.trace import absorb, capture_context, remote_activation
from repro.training.parallel import func_is_picklable, get_mp_context


@dataclass
class CompletedEvaluation:
    """One finished evaluation, tagged with its submission ticket."""

    #: submission-order index (0-based, monotonic per executor)
    ticket: int
    spec: ArchitectureSpec
    result: EvaluationResult


class _TelemetryCall:
    """Picklable task wrapper carrying trace context to a worker process.

    Every pool submission is wrapped (the context is ``None`` while tracing is
    disabled): the worker runs the objective under
    :func:`~repro.trace.remote_activation` so its spans stitch under the
    parent's open span, and ships back the spans plus its sparse-routing,
    fused-training and store-lookup counter deltas on ``result.telemetry`` —
    worker processes
    bump their *own* process-wide tallies, which would otherwise be invisible
    to the parent's ``/metrics`` view.
    """

    __slots__ = ("objective", "context")

    def __init__(self, objective, context) -> None:
        self.objective = objective
        self.context = context

    def __getstate__(self):
        return (self.objective, self.context)

    def __setstate__(self, state) -> None:
        self.objective, self.context = state

    def __call__(self, spec: ArchitectureSpec) -> EvaluationResult:
        # local import: the fused kernel module reaches the model zoo, which
        # this core module must not pull in at import time
        from repro.snn.fused_step import aggregate_fused_counters

        sparse_before = aggregate_sparse_counters()
        fused_before = aggregate_fused_counters()
        store_before = store_counters()
        with remote_activation(self.context) as spans:
            result = self.objective(spec)
        sparse_after = aggregate_sparse_counters()
        fused_after = aggregate_fused_counters()
        store_after = store_counters()
        result.telemetry = {
            "spans": spans,
            "counters": {
                "sparse": {
                    key: sparse_after[key] - sparse_before.get(key, 0) for key in sparse_after
                },
                "fused": {
                    key: fused_after[key] - fused_before.get(key, 0) for key in fused_after
                },
                "store": {
                    key: store_after[key] - store_before.get(key, 0) for key in store_after
                },
            },
        }
        return result


def _absorb_telemetry(result: EvaluationResult) -> None:
    """Fold a worker result's transport-only telemetry into this process.

    Spans go to the thread's active recorder, counter deltas into the
    process-wide tallies; the payload is cleared afterwards so it can never
    leak into persisted rows or be re-absorbed.
    """
    from repro.snn.fused_step import merge_fused_counters

    telemetry = result.telemetry
    if not telemetry:
        return
    absorb(telemetry.get("spans") or [])
    counters = telemetry.get("counters") or {}
    merge_sparse_counters(counters.get("sparse") or {})
    merge_fused_counters(counters.get("fused") or {})
    merge_store_counters(counters.get("store") or {})
    result.telemetry = None


class WeightUpdateSequencer:
    """Apply result-carried weight updates in submission order.

    ``WeightUpdate.apply`` is order-sensitive: the store's primary state is
    replaced by the best-scoring update *seen so far*, and later updates only
    merge their missing tensors — so applying updates in completion order
    would make the shared store depend on scheduling.  The sequencer buffers
    out-of-order completions and releases each update only once every earlier
    ticket has been applied, making the store's final state a pure function of
    the submission sequence (and therefore identical to a sequential run over
    the same specs).
    """

    def __init__(self, store: Optional[WeightStore]) -> None:
        self.store = store
        self.applied = 0
        self._next = 0
        self._pending: Dict[int, Optional[WeightUpdate]] = {}

    def add(self, ticket: int, update: Optional[WeightUpdate]) -> None:
        """Record ``ticket``'s update; apply every update that is now in order."""
        if ticket < self._next or ticket in self._pending:
            raise ValueError(f"ticket {ticket} already sequenced")
        self._pending[ticket] = update
        while self._next in self._pending:
            ready = self._pending.pop(self._next)
            if ready is not None and self.store is not None:
                ready.apply(self.store)
                self.applied += 1
            self._next += 1

    @property
    def pending(self) -> int:
        """Completed updates still waiting on an earlier ticket."""
        return len(self._pending)


class AsyncEvaluationExecutor:
    """Persistent worker pool with submit / next-completed semantics.

    Parameters
    ----------
    objective:
        Callable evaluating one :class:`ArchitectureSpec`.  It is pickled per
        task (exactly like the batch path's ``pool.map``), so workers always
        see the objective state as of the submission.
    workers:
        Worker processes.  ``<= 1`` selects the serial mode: submissions are
        queued and evaluated on demand in the parent process, preserving the
        submit/next-completed interface with zero subprocess overhead.

    Use as a context manager (or call :meth:`close`) so the pool is shut down
    deterministically::

        with AsyncEvaluationExecutor(objective, workers=4) as executor:
            tickets = [executor.submit(spec) for spec in specs]
            while executor.in_flight:
                done = executor.next_completed()

    Exceptions raised by the objective propagate from :meth:`next_completed`
    — mirroring :func:`~repro.training.parallel.parallel_map`, a failing
    evaluation must not be silently retried or dropped.
    """

    def __init__(
        self,
        objective: Callable[[ArchitectureSpec], EvaluationResult],
        workers: int = 1,
    ) -> None:
        self.objective = objective
        self.workers = int(workers)
        self._tickets = 0
        self._pending_serial: List[tuple] = []
        self._futures: Dict[int, concurrent.futures.Future] = {}
        self._specs: Dict[int, ArchitectureSpec] = {}
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        if self.workers > 1 and func_is_picklable(objective):
            try:
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=get_mp_context()
                )
            except (OSError, PermissionError):  # pragma: no cover - sandbox fallback
                self._pool = None

    # ------------------------------------------------------------------
    @property
    def is_parallel(self) -> bool:
        """Whether evaluations actually run in worker processes."""
        return self._pool is not None

    @property
    def in_flight(self) -> int:
        """Submitted evaluations whose results have not been collected yet."""
        return len(self._futures) + len(self._pending_serial)

    def submit(self, spec: ArchitectureSpec) -> int:
        """Queue one evaluation; returns its submission ticket."""
        ticket = self._tickets
        self._tickets += 1
        if self._pool is not None:
            task = _TelemetryCall(self.objective, capture_context())
            self._futures[ticket] = self._pool.submit(task, spec)
            self._specs[ticket] = spec
        else:
            self._pending_serial.append((ticket, spec))
        return ticket

    def next_completed(self) -> CompletedEvaluation:
        """Block until any submitted evaluation finishes and return it.

        In parallel mode, results surface in completion order (ties broken by
        ticket so the choice is deterministic when several are already done);
        in serial mode, the oldest queued submission is evaluated now, so
        completion order equals submission order.
        """
        if self._pool is None:
            if not self._pending_serial:
                raise RuntimeError("no evaluations in flight")
            ticket, spec = self._pending_serial.pop(0)
            return CompletedEvaluation(ticket=ticket, spec=spec, result=self.objective(spec))
        if not self._futures:
            raise RuntimeError("no evaluations in flight")
        done, _ = concurrent.futures.wait(
            self._futures.values(), return_when=concurrent.futures.FIRST_COMPLETED
        )
        done_ids = {id(future) for future in done}
        ticket = min(t for t, future in self._futures.items() if id(future) in done_ids)
        future = self._futures.pop(ticket)
        spec = self._specs.pop(ticket)
        result = future.result()
        _absorb_telemetry(result)
        return CompletedEvaluation(ticket=ticket, spec=spec, result=result)

    def drain(self) -> Iterator[CompletedEvaluation]:
        """Yield every in-flight evaluation as it completes."""
        while self.in_flight:
            yield self.next_completed()

    def cancel_pending(self) -> int:
        """Cancel every submission that has not started running yet.

        The graceful-shutdown hook for long-running hosts (``repro serve``):
        queued work is dropped, but evaluations already executing are left to
        finish — their results (and the store rows the cached objective wrote
        for them) are never lost, so after a subsequent :meth:`close` the
        persistent store holds exactly the set of completed evaluations.
        Returns the number of submissions cancelled; their tickets will never
        surface from :meth:`next_completed`.
        """
        cancelled = len(self._pending_serial)
        self._pending_serial.clear()
        for ticket, future in list(self._futures.items()):
            if future.cancel():
                del self._futures[ticket]
                self._specs.pop(ticket, None)
                cancelled += 1
        return cancelled

    def close(self, cancel_pending: bool = False) -> None:
        """Shut the worker pool down, waiting for running tasks to finish.

        With ``cancel_pending`` set, queued-but-not-started submissions are
        dropped first (see :meth:`cancel_pending`), so the shutdown drains
        only the evaluations actually in progress.
        """
        if cancel_pending:
            self.cancel_pending()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "AsyncEvaluationExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def evaluate_ordered(
    objective: Callable[[ArchitectureSpec], EvaluationResult],
    specs: Sequence[ArchitectureSpec],
    workers: int = 1,
    weight_store: Optional[WeightStore] = None,
) -> List[EvaluationResult]:
    """Evaluate ``specs`` concurrently; return results in submission order.

    A convenience wrapper for barrier-shaped callers (e.g. one rung of a
    successive-halving ladder) that still want the persistent pool and the
    sequenced weight merging: results come back as a list aligned with
    ``specs``, and any result-carried weight updates are applied to
    ``weight_store`` in submission order as they become releasable.
    """
    sequencer = WeightUpdateSequencer(weight_store)
    ordered: List[Optional[EvaluationResult]] = [None] * len(specs)
    with AsyncEvaluationExecutor(objective, workers=workers) as executor:
        for spec in specs:
            executor.submit(spec)
        for done in executor.drain():
            sequencer.add(done.ticket, done.result.weight_update)
            ordered[done.ticket] = done.result
    return list(ordered)  # type: ignore[arg-type]
