"""End-to-end ANN→SNN adaptation pipeline (paper Fig. 2, Table I).

:class:`SNNAdapter` stitches the whole reproduction together for one
(model, dataset) pair:

1. **ANN reference** — train the ANN variant of the template (only for static
   image data; the paper omits the ANN on the event-based datasets).
2. **Vanilla SNN** — build the spiking variant with the architecture's
   *default* skip wiring, initialise it from the ANN weights when available,
   train it with surrogate-gradient BPTT, and measure its accuracy and average
   firing rate (the "SNN accuracy" / "SNN avg firing rate" columns).
3. **Search-space construction + Bayesian optimization** — derive the space of
   adjacency matrices from the topology and run GP+UCB BO with weight sharing
   and short fine-tuning to minimise the accuracy drop (the "Our Optimized SNN"
   columns).
4. **Final fine-tune** — rebuild the best architecture, load the shared
   weights, fine-tune and report test accuracy and firing rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.core.bayes_opt import BayesianOptimizer, OptimizationHistory
from repro.core.objectives import AccuracyDropObjective, EnergyAwareObjective
from repro.core.search_space import ArchitectureSpec
from repro.core.weight_sharing import WeightStore
from repro.data.loaders import DatasetSplits
from repro.models.blocks import NeuronConfig
from repro.models.template import NetworkTemplate
from repro.training.snn_trainer import SNNTrainer, SNNTrainingConfig
from repro.training.trainer import Trainer, TrainingConfig


@dataclass
class AdaptationConfig:
    """Hyperparameters of one adaptation run."""

    #: full training of the ANN reference (static datasets only)
    ann_training: TrainingConfig = field(default_factory=lambda: TrainingConfig(epochs=6, optimizer="sgd"))
    #: full training of the vanilla SNN conversion
    snn_training: SNNTrainingConfig = field(default_factory=lambda: SNNTrainingConfig(epochs=6, optimizer="sgd"))
    #: short fine-tune applied to every BO candidate (the paper's n epochs)
    candidate_finetune_epochs: int = 2
    #: extra fine-tuning of the final best architecture
    final_finetune_epochs: int = 3
    #: number of BO iterations and candidates proposed per iteration (k)
    bo_iterations: int = 6
    bo_batch_size: int = 1
    bo_initial_points: int = 3
    bo_candidate_pool: int = 48
    acquisition: str = "ucb"
    #: weight of the firing-rate penalty (0 disables the energy-aware term)
    firing_rate_weight: float = 0.0
    #: worker processes for the batch evaluation path (1 = sequential)
    workers: int = 1
    #: when >= 1, run the asynchronous evaluation engine instead: a persistent
    #: pool keeps this many candidate evaluations in flight and proposes a
    #: replacement the moment one finishes (no batch barrier); ``workers`` is
    #: then ignored for the BO phase
    async_workers: int = 0
    seed: int = 0
    neuron: NeuronConfig = field(default_factory=NeuronConfig)
    #: directory of the persistent evaluation store (None = in-memory only);
    #: candidate evaluations are re-used across runs sharing the directory and
    #: the same evaluation configuration.  Each evaluation row also references
    #: a content-addressed weight snapshot (``<store>.weights/<digest>.npz``),
    #: and a store hit replays that snapshot into the shared WeightStore — so
    #: a fully- or partially-cached run accumulates the same shared weights
    #: as the run that originally trained the candidates, and the final
    #: fine-tune starts warm instead of from the vanilla-SNN weights
    cache_dir: Optional[str] = None
    #: snapshots kept per evaluation store (best-scoring first); bounds the
    #: ``.weights`` directory, evicted rows simply replay nothing.  None (the
    #: default) sizes the budget to the search itself, so every candidate of
    #: a cached re-run replays warm
    snapshot_keep: Optional[int] = None
    #: use the sharded store layout (per-writer JSONL shards under
    #: ``<store>.shards/`` with a merged read view) so several concurrent
    #: search processes can share ``cache_dir`` without write contention
    cache_sharded: bool = False

    def snapshot_budget(self) -> int:
        """Snapshots to keep: explicit cap, or the full evaluation budget."""
        if self.snapshot_keep is not None:
            return self.snapshot_keep
        return max(1, self.bo_initial_points + self.bo_iterations * self.bo_batch_size)

    def candidate_training(self) -> SNNTrainingConfig:
        """Training configuration used for BO candidate fine-tuning."""
        return replace(self.snn_training, epochs=self.candidate_finetune_epochs)

    def final_training(self) -> SNNTrainingConfig:
        """Training configuration used for the final fine-tune."""
        return replace(self.snn_training, epochs=self.final_finetune_epochs)


@dataclass
class AdaptationResult:
    """All quantities of one Table-I row."""

    model_name: str
    dataset_name: str
    ann_accuracy: Optional[float]
    snn_accuracy: float
    optimized_accuracy: float
    snn_firing_rate: float
    optimized_firing_rate: float
    best_spec: ArchitectureSpec
    default_spec: ArchitectureSpec
    history: OptimizationHistory
    snn_val_accuracy: float = 0.0
    optimized_val_accuracy: float = 0.0

    @property
    def accuracy_improvement(self) -> float:
        """Optimized SNN accuracy minus vanilla SNN accuracy (the paper's headline gain)."""
        return self.optimized_accuracy - self.snn_accuracy

    @property
    def accuracy_drop_before(self) -> Optional[float]:
        """ANN→SNN drop before optimization (None without an ANN reference)."""
        if self.ann_accuracy is None:
            return None
        return self.ann_accuracy - self.snn_accuracy

    @property
    def accuracy_drop_after(self) -> Optional[float]:
        """ANN→SNN drop after optimization (None without an ANN reference)."""
        if self.ann_accuracy is None:
            return None
        return self.ann_accuracy - self.optimized_accuracy

    def summary(self) -> str:
        """Human-readable summary mirroring one row of Table I."""
        ann = f"{100 * self.ann_accuracy:.2f}%" if self.ann_accuracy is not None else "-"
        return (
            f"{self.dataset_name} / {self.model_name}: ANN {ann}, "
            f"SNN {100 * self.snn_accuracy:.2f}%, optimized SNN {100 * self.optimized_accuracy:.2f}% "
            f"(+{100 * self.accuracy_improvement:.2f}pp), firing rate "
            f"{100 * self.snn_firing_rate:.2f}% -> {100 * self.optimized_firing_rate:.2f}%"
        )


class SNNAdapter:
    """Adaptation hyperparameter-tuning pipeline for one template + dataset."""

    def __init__(
        self,
        template: NetworkTemplate,
        splits: DatasetSplits,
        config: Optional[AdaptationConfig] = None,
    ) -> None:
        self.template = template
        self.splits = splits
        self.config = config or AdaptationConfig()

    # ------------------------------------------------------------------
    def train_ann_reference(self) -> Optional[float]:
        """Train the ANN variant and return its test accuracy (static data only)."""
        if self.splits.is_temporal:
            return None
        model = self.template.build(spiking=False, rng=self.config.seed)
        trainer = Trainer(self.config.ann_training)
        trainer.fit_splits(model, self.splits)
        self._ann_model = model
        return trainer.evaluate(model, self.splits.test)

    def train_vanilla_snn(self):
        """Train the default-wiring SNN conversion; returns (model, test_acc, val_acc, firing_rate)."""
        model = self.template.build(
            self.template.default_architecture(),
            spiking=True,
            neuron_config=self.config.neuron,
            rng=self.config.seed,
        )
        ann_model = getattr(self, "_ann_model", None)
        if ann_model is not None:
            # start from the trained ANN weights (the conversion step)
            model.load_state_dict(ann_model.state_dict(), strict=False)
        trainer = SNNTrainer(self.config.snn_training)
        trainer.fit_splits(model, self.splits)
        test_accuracy, stats = trainer.evaluate_with_firing_rate(model, self.splits.test)
        val_accuracy = trainer.evaluate(model, self.splits.val)
        return model, test_accuracy, val_accuracy, stats.average_firing_rate

    def run(self) -> AdaptationResult:
        """Execute the full adaptation pipeline and return the Table-I quantities."""
        config = self.config
        ann_accuracy = self.train_ann_reference()
        vanilla_model, snn_test_acc, snn_val_acc, snn_rate = self.train_vanilla_snn()

        # shared weights start from the trained vanilla SNN
        store = WeightStore.from_model(vanilla_model)
        objective = AccuracyDropObjective(
            template=self.template,
            splits=self.splits,
            training_config=config.candidate_training(),
            neuron_config=config.neuron,
            reference_accuracy=ann_accuracy,
            weight_store=store,
            build_seed=config.seed,
        )
        search_objective = objective
        if config.firing_rate_weight > 0:
            search_objective = EnergyAwareObjective(objective, firing_rate_weight=config.firing_rate_weight)
        if config.cache_dir is not None:
            from dataclasses import asdict

            from repro.core.cache import (
                CachedObjective,
                dataset_fingerprint_fields,
                evaluation_store_for,
                snapshot_store_for,
            )

            # the store is scoped to the evaluation configuration: objective
            # values depend not only on the candidate fine-tune settings but
            # also on the ANN reference (reference_accuracy) and the vanilla
            # SNN training that seeds the WeightStore, so all three configs
            # are fingerprinted wholesale — new fields can never silently
            # fall outside the fingerprint
            evaluation_store = evaluation_store_for(
                config.cache_dir,
                ["adapt", self.splits.name, self.template.name],
                sharded=config.cache_sharded,
                seed=config.seed,
                candidate_epochs=config.candidate_finetune_epochs,
                firing_rate_weight=config.firing_rate_weight,
                ann_training=asdict(config.ann_training),
                snn_training=asdict(config.snn_training),
                candidate_training=asdict(config.candidate_training()),
                neuron=asdict(config.neuron),
                **dataset_fingerprint_fields(self.splits),
            )
            search_objective = CachedObjective(
                search_objective,
                store=evaluation_store,
                snapshots=snapshot_store_for(evaluation_store, keep_best=config.snapshot_budget()),
            )

        optimizer = BayesianOptimizer(
            self.template.search_space(),
            search_objective,
            acquisition=config.acquisition,
            initial_points=config.bo_initial_points,
            batch_size=config.bo_batch_size,
            candidate_pool_size=config.bo_candidate_pool,
            workers=config.workers,
            async_workers=config.async_workers,
            weight_store=store,
            rng=config.seed,
        )
        history = optimizer.optimize(config.bo_iterations)
        best_spec = optimizer.best_spec()

        # final fine-tune of the winning architecture, then report on the test split
        final_model = self.template.build(
            best_spec, spiking=True, neuron_config=config.neuron, rng=config.seed
        )
        store.apply_to(final_model)
        final_trainer = SNNTrainer(config.final_training())
        final_trainer.fit_splits(final_model, self.splits)
        optimized_test_acc, final_stats = final_trainer.evaluate_with_firing_rate(
            final_model, self.splits.test
        )
        optimized_val_acc = final_trainer.evaluate(final_model, self.splits.val)

        # never report worse than the vanilla conversion: the default wiring is
        # itself a member of the search space, so the adapter falls back to it
        # (every reported column then describes the vanilla model, including
        # its validation accuracy — not a mix of the two models)
        if optimized_test_acc < snn_test_acc:
            optimized_test_acc = snn_test_acc
            final_stats_rate = snn_rate
            best_spec = self.template.default_architecture()
            optimized_val_acc = snn_val_acc
        else:
            final_stats_rate = final_stats.average_firing_rate

        return AdaptationResult(
            model_name=self.template.name,
            dataset_name=self.splits.name,
            ann_accuracy=ann_accuracy,
            snn_accuracy=snn_test_acc,
            optimized_accuracy=optimized_test_acc,
            snn_firing_rate=snn_rate,
            optimized_firing_rate=final_stats_rate,
            best_spec=best_spec,
            default_spec=self.template.default_architecture(),
            history=history,
            snn_val_accuracy=snn_val_acc,
            optimized_val_accuracy=optimized_val_acc,
        )
