"""The paper's primary contribution: skip-connection analysis and optimization.

This package implements Section III of the paper:

* :mod:`repro.core.adjacency` — per-block adjacency matrices encoding the
  position and type of skip connections (0 = none, 1 = DenseNet-like
  concatenation, 2 = addition-type), exactly as in Eq. (1);
* :mod:`repro.core.search_space` — construction of the space of all adjacency
  matrices for a given ANN topology (step 1 of Fig. 2);
* :mod:`repro.core.objectives` — the accuracy-drop objective ``f(A)`` with
  weight sharing and short fine-tuning, plus energy-aware variants;
* :mod:`repro.core.bayes_opt` — Gaussian-process Bayesian optimization with
  UCB acquisition and parallel candidate proposal (step 2 of Fig. 2);
* :mod:`repro.core.random_search` — the random-search baseline of Fig. 3;
* :mod:`repro.core.weight_sharing` — the shared-weight store that lets BO
  candidates inherit previously trained weights;
* :mod:`repro.core.cache` / :mod:`repro.core.snapshots` — the persistent
  evaluation store (JSONL, optionally sharded per writer) and the
  content-addressed weight-snapshot tier it references;
* :mod:`repro.core.async_eval` — the asynchronous evaluation executor
  (persistent worker pool, no batch barrier) and the submission-order
  weight-update sequencer;
* :mod:`repro.core.adapter` — the end-to-end ANN→SNN adaptation pipeline
  (:class:`SNNAdapter`) producing the Table-I quantities;
* :mod:`repro.core.pareto` / :mod:`repro.core.multi_objective` — the
  multi-objective subsystem: Pareto-front bookkeeping (non-dominated
  insertion, hypervolume, crowding) and the random-scalarization
  multi-objective Bayesian optimizer over pluggable accuracy / energy /
  latency objectives (``docs/multi_objective.md``).

``docs/architecture.md`` has the full module map and the data flow of one
search iteration.

The optimization-pipeline classes (objectives, optimizers, adapter) are
re-exported lazily to avoid import cycles with :mod:`repro.models`, which
itself depends on the adjacency representation defined here.
"""

from repro.core.adjacency import (
    ASC,
    DSC,
    NO_CONNECTION,
    SKIP_TYPES,
    BlockAdjacency,
    connection_name,
)
from repro.core.pareto import ParetoFront, ParetoPoint, dominates
from repro.core.search_space import ArchitectureSpec, BlockSearchInfo, SearchSpace
from repro.core.snapshots import WeightSnapshotStore
from repro.core.weight_sharing import WeightStore, WeightUpdate

__all__ = [
    "ASC",
    "DSC",
    "NO_CONNECTION",
    "SKIP_TYPES",
    "BlockAdjacency",
    "connection_name",
    "ArchitectureSpec",
    "BlockSearchInfo",
    "SearchSpace",
    "WeightStore",
    "WeightUpdate",
    "WeightSnapshotStore",
    "AccuracyDropObjective",
    "EnergyAwareObjective",
    "EvaluationResult",
    "Objective",
    "BayesianOptimizer",
    "OptimizationHistory",
    "OptimizationRecord",
    "RandomSearch",
    "AdaptationConfig",
    "AdaptationResult",
    "SNNAdapter",
    "CachedObjective",
    "PersistentEvaluationStore",
    "ShardedEvaluationStore",
    "snapshot_store_for",
    "AsyncEvaluationExecutor",
    "WeightUpdateSequencer",
    "evaluate_ordered",
    "FidelitySchedule",
    "MultiFidelityObjective",
    "SuccessiveHalvingSearch",
    "LocalSearch",
    "EvolutionarySearch",
    "ParetoFront",
    "ParetoPoint",
    "dominates",
    "ObjectiveSpec",
    "ObjectiveConstraint",
    "MultiObjectiveBayesianOptimizer",
    "get_objective_spec",
    "resolve_objective_specs",
]

# Lazily-resolved exports (PEP 562): these modules import repro.models /
# repro.training, which in turn import repro.core.adjacency — resolving them
# at attribute-access time breaks the cycle without hiding the public API.
_LAZY_EXPORTS = {
    "AccuracyDropObjective": "repro.core.objectives",
    "EnergyAwareObjective": "repro.core.objectives",
    "EvaluationResult": "repro.core.objectives",
    "Objective": "repro.core.objectives",
    "BayesianOptimizer": "repro.core.bayes_opt",
    "OptimizationHistory": "repro.core.bayes_opt",
    "OptimizationRecord": "repro.core.bayes_opt",
    "RandomSearch": "repro.core.random_search",
    "AdaptationConfig": "repro.core.adapter",
    "AdaptationResult": "repro.core.adapter",
    "SNNAdapter": "repro.core.adapter",
    "CachedObjective": "repro.core.cache",
    "PersistentEvaluationStore": "repro.core.cache",
    "ShardedEvaluationStore": "repro.core.cache",
    "snapshot_store_for": "repro.core.cache",
    "AsyncEvaluationExecutor": "repro.core.async_eval",
    "WeightUpdateSequencer": "repro.core.async_eval",
    "evaluate_ordered": "repro.core.async_eval",
    "FidelitySchedule": "repro.core.multi_fidelity",
    "MultiFidelityObjective": "repro.core.multi_fidelity",
    "SuccessiveHalvingSearch": "repro.core.multi_fidelity",
    "LocalSearch": "repro.core.local_search",
    "EvolutionarySearch": "repro.core.local_search",
    "ObjectiveSpec": "repro.core.multi_objective",
    "ObjectiveConstraint": "repro.core.multi_objective",
    "MultiObjectiveBayesianOptimizer": "repro.core.multi_objective",
    "get_objective_spec": "repro.core.multi_objective",
    "resolve_objective_specs": "repro.core.multi_objective",
}


def __getattr__(name: str):
    if name in _LAZY_EXPORTS:
        import importlib

        module = importlib.import_module(_LAZY_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
