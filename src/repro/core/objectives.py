"""Search objectives: the accuracy-drop function ``f(A)`` and energy-aware variants.

The Bayesian optimizer minimises ``f(A)`` — the accuracy drop between the
reference ANN and the SNN built with adjacency assignment ``A`` (Section
III-B).  Evaluating ``f`` means building the candidate SNN, loading the shared
weights, fine-tuning for a small number of epochs and measuring validation
accuracy; this module packages that procedure as a callable object so the
optimizers (BO, random search) stay agnostic of models and data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.search_space import ArchitectureSpec
from repro.core.weight_sharing import WeightStore
from repro.data.loaders import DatasetSplits
from repro.models.blocks import NeuronConfig
from repro.models.template import NetworkTemplate
from repro.snn.mac import MACCounter
from repro.training.callbacks import TrainingHistory
from repro.training.snn_trainer import SNNTrainer, SNNTrainingConfig
from repro.tensor.random import default_rng


@dataclass
class EvaluationResult:
    """Outcome of evaluating one candidate architecture."""

    spec: ArchitectureSpec
    objective_value: float
    accuracy: float
    firing_rate: float = 0.0
    macs: float = 0.0
    history: Optional[TrainingHistory] = None
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.objective_value = float(self.objective_value)
        self.accuracy = float(self.accuracy)
        self.firing_rate = float(self.firing_rate)
        self.macs = float(self.macs)


class Objective:
    """Base objective: maps an :class:`ArchitectureSpec` to an :class:`EvaluationResult`.

    Smaller ``objective_value`` is better (the optimizers minimise).
    """

    def __call__(self, spec: ArchitectureSpec) -> EvaluationResult:
        raise NotImplementedError

    def evaluate_value(self, spec: ArchitectureSpec) -> float:
        """Convenience returning only the scalar objective value."""
        return self(spec).objective_value


class AccuracyDropObjective(Objective):
    """The paper's objective: ANN→SNN accuracy drop after a short fine-tune.

    Parameters
    ----------
    template:
        Network template defining the topology being adapted.
    splits:
        Dataset splits; candidates are fine-tuned on ``train`` and scored on
        ``val``.
    training_config:
        SNN fine-tuning configuration (the number of epochs here is the
        ``n``-epoch fine-tune of Section III-B, *not* a full training run).
    reference_accuracy:
        The ANN accuracy.  When available the objective value is
        ``reference_accuracy - snn_val_accuracy`` (the drop); for event-based
        datasets without an ANN reference it is ``1 - snn_val_accuracy``,
        which has the same minimiser.
    weight_store:
        Optional shared-weight store.  When provided each candidate starts
        from the shared weights and, if ``update_store`` is enabled, the store
        is refreshed from the best candidate so far.
    measure_firing_rate / measure_macs:
        Record spiking statistics / MAC counts for every candidate (needed by
        the energy-aware objective and by the Table-I report).
    """

    def __init__(
        self,
        template: NetworkTemplate,
        splits: DatasetSplits,
        training_config: Optional[SNNTrainingConfig] = None,
        neuron_config: Optional[NeuronConfig] = None,
        reference_accuracy: Optional[float] = None,
        weight_store: Optional[WeightStore] = None,
        update_store: bool = True,
        measure_firing_rate: bool = True,
        measure_macs: bool = False,
        build_seed: int = 0,
    ) -> None:
        self.template = template
        self.splits = splits
        self.training_config = training_config or SNNTrainingConfig(epochs=2, batch_size=16)
        self.neuron_config = neuron_config or NeuronConfig()
        self.reference_accuracy = reference_accuracy
        self.weight_store = weight_store
        self.update_store = bool(update_store)
        self.measure_firing_rate = bool(measure_firing_rate)
        self.measure_macs = bool(measure_macs)
        self.build_seed = int(build_seed)
        self.num_evaluations = 0

    # ------------------------------------------------------------------
    def build_model(self, spec: ArchitectureSpec):
        """Build the candidate SNN and load shared weights when available."""
        model = self.template.build(
            spec,
            spiking=True,
            neuron_config=self.neuron_config,
            rng=default_rng(self.build_seed),
        )
        if self.weight_store is not None and not self.weight_store.is_empty:
            self.weight_store.apply_to(model)
        return model

    def _objective_from_accuracy(self, accuracy: float) -> float:
        if self.reference_accuracy is not None:
            return float(self.reference_accuracy - accuracy)
        return float(1.0 - accuracy)

    def __call__(self, spec: ArchitectureSpec) -> EvaluationResult:
        self.num_evaluations += 1
        model = self.build_model(spec)
        trainer = SNNTrainer(self.training_config)
        history = trainer.fit(model, self.splits.train, self.splits.val)

        firing_rate = 0.0
        if self.measure_firing_rate:
            accuracy, stats = trainer.evaluate_with_firing_rate(model, self.splits.val)
            firing_rate = stats.average_firing_rate
        else:
            accuracy = trainer.evaluate(model, self.splits.val)

        macs = 0.0
        if self.measure_macs and len(self.splits.val):
            sample = self.splits.val.inputs[:1]
            if self.splits.is_temporal:
                sample = sample[:, 0]
            macs = MACCounter(model).count(sample).total

        if self.weight_store is not None and self.update_store:
            self.weight_store.update_from(model, score=accuracy, only_if_better=True)
            self.weight_store.merge_from(model)

        return EvaluationResult(
            spec=spec,
            objective_value=self._objective_from_accuracy(accuracy),
            accuracy=accuracy,
            firing_rate=firing_rate,
            macs=macs,
            history=history,
            extra={"num_skips": float(spec.total_skips())},
        )


class EnergyAwareObjective(Objective):
    """Accuracy drop regularised by spiking activity.

    The paper motivates the optimization as a *trade-off* between accuracy
    drop and energy efficiency; this wrapper adds a penalty proportional to
    the measured firing rate (and optionally the MAC count relative to the
    skip-free baseline), so the search prefers architectures that close the
    accuracy gap without saturating spike traffic.
    """

    def __init__(
        self,
        base: AccuracyDropObjective,
        firing_rate_weight: float = 0.1,
        mac_weight: float = 0.0,
        mac_reference: Optional[float] = None,
    ) -> None:
        if firing_rate_weight < 0 or mac_weight < 0:
            raise ValueError("penalty weights must be non-negative")
        self.base = base
        self.firing_rate_weight = float(firing_rate_weight)
        self.mac_weight = float(mac_weight)
        self.mac_reference = mac_reference
        if mac_weight > 0:
            self.base.measure_macs = True
        self.base.measure_firing_rate = True

    def __call__(self, spec: ArchitectureSpec) -> EvaluationResult:
        result = self.base(spec)
        penalty = self.firing_rate_weight * result.firing_rate
        if self.mac_weight > 0 and result.macs > 0:
            reference = self.mac_reference or result.macs
            penalty += self.mac_weight * (result.macs / max(reference, 1.0) - 1.0)
        value = result.objective_value + penalty
        return EvaluationResult(
            spec=result.spec,
            objective_value=value,
            accuracy=result.accuracy,
            firing_rate=result.firing_rate,
            macs=result.macs,
            history=result.history,
            extra={**result.extra, "penalty": penalty, "raw_objective": result.objective_value},
        )
