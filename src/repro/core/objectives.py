"""Search objectives: the accuracy-drop function ``f(A)`` and energy-aware variants.

The Bayesian optimizer minimises ``f(A)`` — the accuracy drop between the
reference ANN and the SNN built with adjacency assignment ``A`` (Section
III-B).  Evaluating ``f`` means building the candidate SNN, loading the shared
weights, fine-tuning for a small number of epochs and measuring validation
accuracy; this module packages that procedure as a callable object so the
optimizers (BO, random search) stay agnostic of models and data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.search_space import ArchitectureSpec
from repro.core.weight_sharing import WeightStore, WeightUpdate
from repro.data.loaders import DatasetSplits
from repro.models.blocks import NeuronConfig
from repro.models.template import NetworkTemplate
from repro.snn.mac import MACCounter
from repro.trace import span
from repro.training.callbacks import TrainingHistory
from repro.training.snn_trainer import SNNTrainer, SNNTrainingConfig
from repro.tensor.random import default_rng
from repro.tensor.sparse import sparse_counters


@dataclass
class EvaluationResult:
    """Outcome of evaluating one candidate architecture.

    ``weight_update`` optionally carries the candidate's trained state (a
    :class:`~repro.core.weight_sharing.WeightUpdate`): evaluation is then free
    of hidden side effects, and whoever orchestrates it — the Bayesian
    optimizer after a parallel batch, a cache replaying a snapshot — applies
    the update to the shared :class:`~repro.core.weight_sharing.WeightStore`
    in the parent process.

    ``metrics`` is the per-objective measurement dict consumed by the
    multi-objective search layer (:mod:`repro.core.multi_objective`):
    every quantity an :class:`~repro.core.multi_objective.ObjectiveSpec` may
    select (``val_accuracy``, ``firing_rate``, ``macs``, ``energy_nj``,
    ``latency_steps``, ...) keyed by name.  It is persisted on evaluation
    rows and restored on cache hits, so a cached run replays *all*
    objectives, not just the scalar ``objective_value``.

    ``telemetry`` carries observability payloads produced in a worker process
    back to the submitter: ``{"spans": [...], "counters": {...}}`` — the
    trace spans collected under a propagated trace context
    (:mod:`repro.trace`) and the substrate routing / store-hit counter deltas.
    It is transport-only: excluded from equality, never persisted into
    evaluation rows, and cleared once the parent absorbs it.
    """

    spec: ArchitectureSpec
    objective_value: float
    accuracy: float
    firing_rate: float = 0.0
    macs: float = 0.0
    history: Optional[TrainingHistory] = None
    extra: Dict[str, float] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    weight_update: Optional[WeightUpdate] = None
    telemetry: Optional[Dict[str, Any]] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        self.objective_value = float(self.objective_value)
        self.accuracy = float(self.accuracy)
        self.firing_rate = float(self.firing_rate)
        self.macs = float(self.macs)


class Objective:
    """Base objective: maps an :class:`ArchitectureSpec` to an :class:`EvaluationResult`.

    Smaller ``objective_value`` is better (the optimizers minimise).
    """

    def __call__(self, spec: ArchitectureSpec) -> EvaluationResult:
        raise NotImplementedError

    def evaluate_value(self, spec: ArchitectureSpec) -> float:
        """Convenience returning only the scalar objective value."""
        return self(spec).objective_value


class AccuracyDropObjective(Objective):
    """The paper's objective: ANN→SNN accuracy drop after a short fine-tune.

    Parameters
    ----------
    template:
        Network template defining the topology being adapted.
    splits:
        Dataset splits; candidates are fine-tuned on ``train`` and scored on
        ``val``.
    training_config:
        SNN fine-tuning configuration (the number of epochs here is the
        ``n``-epoch fine-tune of Section III-B, *not* a full training run).
    reference_accuracy:
        The ANN accuracy.  When available the objective value is
        ``reference_accuracy - snn_val_accuracy`` (the drop); for event-based
        datasets without an ANN reference it is ``1 - snn_val_accuracy``,
        which has the same minimiser.
    weight_store:
        Optional shared-weight store.  When provided each candidate starts
        from the shared weights and, if ``update_store`` is enabled, the store
        is refreshed from the best candidate so far.  The trained state also
        rides back on the result as ``weight_update``, so orchestrators that
        evaluate in worker processes (where a local store mutation would be
        lost) can merge it in the parent; setting :attr:`defer_updates`
        disables the local mutation entirely, making evaluation side-effect
        free (the orchestrator then owns every store update, and evaluation
        order within a batch cannot influence results).
    measure_firing_rate / measure_macs:
        Record spiking statistics / MAC counts for every candidate (needed by
        the energy-aware objective and by the Table-I report).  MAC counting
        traces a real forward pass, but the count depends only on the
        architecture — never on the trained weights — so traces are memoised
        by architecture fingerprint (:attr:`mac_traces` counts the actual
        forward traces performed, for tests and profiling).
    measure_energy:
        Additionally derive the energy/latency metric fields
        (:func:`repro.snn.mac.energy_metrics`) from the MAC count, the
        measured firing rate and the simulation window; implies both
        ``measure_macs`` and ``measure_firing_rate``.  The fields land in
        ``EvaluationResult.metrics`` for the multi-objective search layer.
    measure_latency:
        Measure the candidate's **real inference latency**: a repeated timed
        forward pass over one validation batch on the graph-free fast path
        (:func:`repro.training.evaluation.measure_latency_ms` — median of
        ``latency_runs`` timed runs, warmup excluded) recorded as the
        ``latency_ms`` metric.  Unlike the step-count proxy
        (``latency_steps``) this reflects what the architecture actually
        costs to run — DSC concatenations widen convolutions and slow the
        pass even at a fixed simulation window.  Wall-clock numbers are
        hardware-dependent; cached rows replay the value measured when the
        candidate was first evaluated, which is what keeps fully-cached
        multi-objective re-runs deterministic.
    """

    def __init__(
        self,
        template: NetworkTemplate,
        splits: DatasetSplits,
        training_config: Optional[SNNTrainingConfig] = None,
        neuron_config: Optional[NeuronConfig] = None,
        reference_accuracy: Optional[float] = None,
        weight_store: Optional[WeightStore] = None,
        update_store: bool = True,
        measure_firing_rate: bool = True,
        measure_macs: bool = False,
        measure_energy: bool = False,
        measure_latency: bool = False,
        latency_runs: int = 5,
        build_seed: int = 0,
    ) -> None:
        self.template = template
        self.splits = splits
        self.training_config = training_config or SNNTrainingConfig(epochs=2, batch_size=16)
        self.neuron_config = neuron_config or NeuronConfig()
        self.reference_accuracy = reference_accuracy
        self.weight_store = weight_store
        self.update_store = bool(update_store)
        self.measure_energy = bool(measure_energy)
        self.measure_firing_rate = bool(measure_firing_rate) or self.measure_energy
        self.measure_macs = bool(measure_macs) or self.measure_energy
        self.measure_latency = bool(measure_latency)
        if latency_runs < 1:
            raise ValueError(f"latency_runs must be >= 1, got {latency_runs}")
        self.latency_runs = int(latency_runs)
        self.build_seed = int(build_seed)
        self.num_evaluations = 0
        #: MAC counts are a pure function of the architecture (weights never
        #: change layer geometry), so the forward trace is memoised per
        #: architecture fingerprint; re-evaluating a candidate — or replaying
        #: it at another fidelity — reuses the count instead of re-tracing
        self._mac_cache: Dict[bytes, float] = {}
        #: number of actual MACCounter forward traces performed (cache misses)
        self.mac_traces = 0
        #: when True the objective never mutates ``weight_store`` itself; the
        #: trained state only travels back via ``EvaluationResult.weight_update``
        self.defer_updates = False

    # ------------------------------------------------------------------
    def build_model(self, spec: ArchitectureSpec):
        """Build the candidate SNN and load shared weights when available."""
        model = self.template.build(
            spec,
            spiking=True,
            neuron_config=self.neuron_config,
            rng=default_rng(self.build_seed),
        )
        if self.weight_store is not None and not self.weight_store.is_empty:
            self.weight_store.apply_to(model)
        return model

    def _objective_from_accuracy(self, accuracy: float) -> float:
        if self.reference_accuracy is not None:
            return float(self.reference_accuracy - accuracy)
        return float(1.0 - accuracy)

    def __call__(self, spec: ArchitectureSpec) -> EvaluationResult:
        self.num_evaluations += 1
        with span("evaluate") as eval_span:
            if eval_span:
                eval_span.set(arch=spec_fingerprint(spec))
                routing_before = sparse_counters()
            with span("evaluate.build"):
                model = self.build_model(spec)
            trainer = SNNTrainer(self.training_config)
            with span("evaluate.train", epochs=self.training_config.epochs):
                history = trainer.fit(model, self.splits.train, self.splits.val)

            firing_rate = 0.0
            with span("evaluate.accuracy"):
                if self.measure_firing_rate:
                    accuracy, stats = trainer.evaluate_with_firing_rate(model, self.splits.val)
                    firing_rate = stats.average_firing_rate
                else:
                    accuracy = trainer.evaluate(model, self.splits.val)

            macs = 0.0
            if self.measure_macs and len(self.splits.val):
                with span("evaluate.macs"):
                    macs = self._count_macs(spec, model)

            latency_ms = None
            if self.measure_latency and len(self.splits.val):
                with span("evaluate.latency"):
                    latency_ms = self._measure_latency(model)
            if eval_span:
                routing_after = sparse_counters()
                eval_span.set(
                    val_accuracy=float(accuracy),
                    **{
                        key: routing_after[key] - routing_before.get(key, 0)
                        for key in routing_after
                    },
                )

        # only measured quantities enter the metrics dict: a constant 0.0 for
        # an unmeasured firing rate would silently satisfy ObjectiveSpec's
        # missing-metric guard and train a GP on a fabricated objective
        metrics: Dict[str, float] = {"val_accuracy": float(accuracy)}
        if self.measure_firing_rate:
            metrics["firing_rate"] = float(firing_rate)
        if self.measure_energy and macs > 0:
            from repro.snn.mac import energy_metrics

            metrics.update(
                energy_metrics(macs, firing_rate, int(self.training_config.num_steps))
            )
        elif macs > 0:
            metrics["macs"] = float(macs)
        if latency_ms is not None:
            metrics["latency_ms"] = float(latency_ms)

        weight_update = None
        if self.weight_store is not None and self.update_store:
            # state_dict() copies, so the payload is a frozen snapshot of the
            # fine-tuned weights, not a view into the live model
            weight_update = WeightUpdate(state=model.state_dict(), score=float(accuracy))
            if not self.defer_updates:
                weight_update.apply(self.weight_store)

        return EvaluationResult(
            spec=spec,
            objective_value=self._objective_from_accuracy(accuracy),
            accuracy=accuracy,
            firing_rate=firing_rate,
            macs=macs,
            history=history,
            extra={"num_skips": float(spec.total_skips())},
            metrics=metrics,
            weight_update=weight_update,
        )

    def _measure_latency(self, model) -> float:
        """Median timed inference latency of one validation batch (ms).

        The model is wrapped in the same :class:`~repro.snn.temporal.TemporalRunner`
        the trainer evaluates with, so the measurement covers the full
        simulation window on the graph-free fast path.
        """
        from repro.training.evaluation import measure_latency_ms

        batch_size = min(int(self.training_config.batch_size), len(self.splits.val))
        sample = self.splits.val.inputs[:batch_size]
        runner = SNNTrainer(self.training_config).make_runner(model)
        return measure_latency_ms(runner, sample, runs=self.latency_runs)

    def _count_macs(self, spec: ArchitectureSpec, model) -> float:
        """Per-step MAC count of ``spec``, memoised by architecture fingerprint."""
        key = spec.encode().tobytes()
        macs = self._mac_cache.get(key)
        if macs is None:
            sample = self.splits.val.inputs[:1]
            if self.splits.is_temporal:
                sample = sample[:, 0]
            macs = float(MACCounter(model).count(sample).total)
            self._mac_cache[key] = macs
            self.mac_traces += 1
        return macs


class EnergyAwareObjective(Objective):
    """Accuracy drop regularised by spiking activity.

    The paper motivates the optimization as a *trade-off* between accuracy
    drop and energy efficiency; this wrapper adds a penalty proportional to
    the measured firing rate (and optionally the MAC count relative to the
    skip-free baseline), so the search prefers architectures that close the
    accuracy gap without saturating spike traffic.
    """

    def __init__(
        self,
        base: AccuracyDropObjective,
        firing_rate_weight: float = 0.1,
        mac_weight: float = 0.0,
        mac_reference: Optional[float] = None,
    ) -> None:
        if firing_rate_weight < 0 or mac_weight < 0:
            raise ValueError("penalty weights must be non-negative")
        self.base = base
        self.firing_rate_weight = float(firing_rate_weight)
        self.mac_weight = float(mac_weight)
        self.mac_reference = mac_reference
        if mac_weight > 0:
            self.base.measure_macs = True
        self.base.measure_firing_rate = True

    def __call__(self, spec: ArchitectureSpec) -> EvaluationResult:
        result = self.base(spec)
        penalty = self.firing_rate_weight * result.firing_rate
        if self.mac_weight > 0 and result.macs > 0:
            reference = self.mac_reference or result.macs
            penalty += self.mac_weight * (result.macs / max(reference, 1.0) - 1.0)
        value = result.objective_value + penalty
        return EvaluationResult(
            spec=result.spec,
            objective_value=value,
            accuracy=result.accuracy,
            firing_rate=result.firing_rate,
            macs=result.macs,
            history=result.history,
            extra={**result.extra, "penalty": penalty, "raw_objective": result.objective_value},
            metrics=result.metrics,
            weight_update=result.weight_update,
            telemetry=result.telemetry,
        )


def resolve_weight_context(objective) -> Tuple[Optional[AccuracyDropObjective], Optional[WeightStore]]:
    """Find the weight-sharing base objective behind a chain of wrappers.

    Orchestrators need two things the objective may hide behind wrappers
    (:class:`EnergyAwareObjective`, :class:`~repro.core.cache.CachedObjective`,
    :class:`~repro.core.multi_fidelity.MultiFidelityObjective`): the base
    objective whose ``defer_updates`` flag controls local store mutation, and
    the shared :class:`WeightStore` that result-carried updates merge into.
    Wrappers are followed through their ``objective``/``base`` attributes;
    returns ``(None, None)`` for opaque callables or store-less objectives.
    """
    seen = set()
    node = objective
    while node is not None and id(node) not in seen:
        seen.add(id(node))
        store = getattr(node, "weight_store", None)
        if store is not None and hasattr(node, "defer_updates"):
            return node, store
        node = getattr(node, "objective", None) or getattr(node, "base", None)
    return None, None


class SyntheticWeightObjective(Objective):
    """Instant, deterministic objective that still produces weight updates.

    Used by the multiprocessing smoke tests and benchmarks: it is defined at
    module level (so it pickles under the ``spawn`` start method), costs
    nothing to evaluate, and derives both its objective value and a synthetic
    "trained state" purely from the architecture encoding — the result is
    therefore independent of evaluation order, which is exactly the property
    the result-carried update path must preserve across worker counts.
    """

    def __init__(self, weight_store: Optional[WeightStore] = None, state_size: int = 8) -> None:
        self.weight_store = weight_store
        self.update_store = True
        self.defer_updates = False
        self.state_size = int(state_size)
        self.num_evaluations = 0

    def __call__(self, spec: ArchitectureSpec) -> EvaluationResult:
        self.num_evaluations += 1
        encoding = spec.encode().astype(np.float64)
        value = float(np.cos(encoding).sum() / max(len(encoding), 1)) + 0.01 * spec.total_skips()
        accuracy = 1.0 - value
        state = {
            "shared.weight": np.outer(np.arange(1, self.state_size + 1, dtype=np.float64), encoding + 1.0),
            f"cand.{spec_fingerprint(spec)}.bias": encoding * 0.5,
        }
        weight_update = None
        if self.weight_store is not None and self.update_store:
            weight_update = WeightUpdate(state=state, score=accuracy)
            if not self.defer_updates:
                weight_update.apply(self.weight_store)
        # a synthetic "energy": anti-correlated with accuracy through the skip
        # count, so multi-objective smoke tests see a genuine trade-off; the
        # synthetic "latency" is deterministic (encoding-derived, not timed),
        # so latency-objective tests and benchmarks replay exactly
        return EvaluationResult(
            spec=spec,
            objective_value=value,
            accuracy=accuracy,
            metrics={
                "val_accuracy": accuracy,
                "energy_nj": 1.0 + 0.25 * spec.total_skips() + float(np.sin(encoding).sum() ** 2),
                "firing_rate": 0.5 + 0.5 * float(np.tanh(value)),
                "latency_ms": 1.0 + 0.1 * spec.total_skips() + 0.5 * float(np.cos(encoding).sum() ** 2),
            },
            weight_update=weight_update,
        )


def spec_fingerprint(spec: ArchitectureSpec) -> str:
    """Short stable tag of an architecture encoding (for synthetic state keys)."""
    return "-".join(str(int(v)) for v in spec.encode())
