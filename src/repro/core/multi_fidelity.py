"""Multi-fidelity evaluation: successive halving over fine-tuning budgets.

The paper cites Song et al.'s general framework for multi-fidelity Bayesian
optimization with Gaussian processes (reference [12]) as the basis for its GP
prior.  This module implements the natural multi-fidelity extension of the
skip-connection search: candidate architectures are first fine-tuned for a
*small* number of epochs, and only the most promising fraction graduates to
the next fidelity level (more epochs), successive-halving style.  Because the
objective shares weights across candidates, promotions are cheap — the
candidate resumes from the shared store rather than restarting.

Three entry points are provided:

* :class:`FidelitySchedule` — the ladder of (epochs, survivor-fraction) rungs;
* :class:`SuccessiveHalvingSearch` — a complete search strategy combining
  random sampling at the lowest rung with promotion by observed objective
  value, producing the same :class:`~repro.core.bayes_opt.OptimizationHistory`
  as the other optimizers so it can be compared on the Fig.-3 axes;
* :class:`MultiFidelityObjective` — an objective wrapper that lets the plain
  Bayesian optimizer evaluate at a chosen fidelity (used by the ablations).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bayes_opt import OptimizationHistory, OptimizationRecord
from repro.core.objectives import AccuracyDropObjective, EvaluationResult, Objective
from repro.core.search_space import ArchitectureSpec, SearchSpace
from repro.tensor.random import default_rng


@dataclass(frozen=True)
class FidelityRung:
    """One rung of the successive-halving ladder."""

    epochs: int
    keep_fraction: float

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive, got {self.epochs}")
        if not 0.0 < self.keep_fraction <= 1.0:
            raise ValueError(f"keep_fraction must be in (0, 1], got {self.keep_fraction}")


@dataclass
class FidelitySchedule:
    """A ladder of rungs, lowest fidelity first."""

    rungs: List[FidelityRung] = field(
        default_factory=lambda: [FidelityRung(1, 0.5), FidelityRung(2, 0.5), FidelityRung(4, 1.0)]
    )

    def __post_init__(self) -> None:
        if not self.rungs:
            raise ValueError("schedule needs at least one rung")
        epochs = [rung.epochs for rung in self.rungs]
        if any(b < a for a, b in zip(epochs, epochs[1:])):
            raise ValueError("rung epochs must be non-decreasing")

    @classmethod
    def geometric(cls, min_epochs: int, max_epochs: int, eta: float = 2.0) -> "FidelitySchedule":
        """Geometric ladder from ``min_epochs`` to ``max_epochs`` with ratio ``eta``."""
        if min_epochs <= 0 or max_epochs < min_epochs:
            raise ValueError("need 0 < min_epochs <= max_epochs")
        rungs = []
        epochs = min_epochs
        while epochs < max_epochs:
            rungs.append(FidelityRung(int(epochs), 1.0 / eta))
            epochs = epochs * eta
        rungs.append(FidelityRung(int(max_epochs), 1.0))
        return cls(rungs)

    def __len__(self) -> int:
        return len(self.rungs)


class MultiFidelityObjective(Objective):
    """Evaluate an :class:`AccuracyDropObjective` at a configurable fidelity.

    The fidelity is the number of fine-tuning epochs; the wrapper swaps the
    epoch count of the base objective's training configuration per call.

    A :class:`~repro.core.cache.PersistentEvaluationStore` can be attached;
    entries are then keyed by ``<spec_key>@epochs=<n>`` so results at
    different fidelities never collide, while still sharing the same backing
    file as the single-fidelity searches.  With a
    :class:`~repro.core.snapshots.WeightSnapshotStore` also attached
    (``snapshots``), each evaluation's trained state is persisted under that
    fidelity-qualified row and *replayed* on a store hit: the payload is
    restored on the result and — unless the base objective defers updates to
    an orchestrator — applied to the base's shared
    :class:`~repro.core.weight_sharing.WeightStore`, so a cached
    successive-halving run promotes candidates from the same warm weights as
    an uncached one.
    """

    def __init__(self, base: AccuracyDropObjective, store=None, snapshots=None) -> None:
        self.base = base
        self.store = store
        self.snapshots = snapshots
        self._original_epochs = base.training_config.epochs

    @staticmethod
    def fidelity_key(spec: ArchitectureSpec, epochs: int) -> str:
        """Store key of one (architecture, fidelity) evaluation."""
        from repro.core.cache import spec_key

        return f"{spec_key(spec)}@epochs={int(epochs)}"

    def at_fidelity(self, epochs: int) -> "FidelityEvaluator":
        """Return a callable evaluating candidates with ``epochs`` fine-tune epochs.

        The returned :class:`FidelityEvaluator` is a plain picklable object
        (not a closure), so it can be shipped to worker processes by
        :class:`~repro.core.async_eval.AsyncEvaluationExecutor` under any
        multiprocessing start method.
        """
        return FidelityEvaluator(self, epochs)

    def evaluate(self, spec: ArchitectureSpec, epochs: int) -> EvaluationResult:
        """Evaluate ``spec`` at the given fidelity (number of epochs)."""
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        if self.store is not None:
            from repro.core.cache import replay_weight_snapshot, row_to_result

            row = self.store.get(self.fidelity_key(spec, epochs))
            if row is not None:
                result = row_to_result(row, spec)
                replay_weight_snapshot(
                    self.snapshots, row, result, self.base, self.base.weight_store
                )
                return result
        original = self.base.training_config
        self.base.training_config = replace(original, epochs=int(epochs))
        try:
            result = self.base(spec)
        finally:
            self.base.training_config = original
        result.extra["fidelity_epochs"] = float(epochs)
        if self.store is not None:
            from repro.core.cache import persist_weight_snapshot, result_to_row

            row = result_to_row(result)
            persist_weight_snapshot(self.snapshots, result, row)
            self.store.put(self.fidelity_key(spec, epochs), row)
        return result

    def __call__(self, spec: ArchitectureSpec) -> EvaluationResult:
        return self.evaluate(spec, self._original_epochs)


@dataclass
class FidelityEvaluator:
    """Evaluate candidates at one fixed fidelity (picklable worker payload)."""

    objective: MultiFidelityObjective
    epochs: int

    def __call__(self, spec: ArchitectureSpec) -> EvaluationResult:
        return self.objective.evaluate(spec, self.epochs)


class SuccessiveHalvingSearch:
    """Successive halving over the skip-connection search space.

    ``initial_candidates`` architectures are sampled uniformly and evaluated at
    the lowest rung; after each rung only the best ``keep_fraction`` survive
    and are re-evaluated at the next rung's budget (resuming from the shared
    weights when the underlying objective uses a
    :class:`~repro.core.weight_sharing.WeightStore`).

    With ``workers > 1`` each rung's population — which is independent by
    construction — is evaluated concurrently on an
    :class:`~repro.core.async_eval.AsyncEvaluationExecutor`: the base
    objective defers its local store mutation for the rung and the
    result-carried weight updates are applied in submission order, so the
    shared store accumulates a deterministic state whatever the completion
    order.  (``workers=1`` keeps the classic sequential semantics, where a
    candidate may inherit weights trained by an earlier candidate of the
    same rung.)
    """

    def __init__(
        self,
        search_space: SearchSpace,
        objective: MultiFidelityObjective,
        schedule: Optional[FidelitySchedule] = None,
        initial_candidates: int = 8,
        include_default: bool = True,
        workers: int = 1,
        rng=None,
    ) -> None:
        if initial_candidates < 1:
            raise ValueError("initial_candidates must be >= 1")
        self.search_space = search_space
        self.objective = objective
        self.schedule = schedule or FidelitySchedule()
        self.initial_candidates = int(initial_candidates)
        self.include_default = bool(include_default)
        self.workers = int(workers)
        self._rng = default_rng(rng)
        self.history = OptimizationHistory()

    def _initial_population(self) -> List[ArchitectureSpec]:
        population: List[ArchitectureSpec] = []
        if self.include_default:
            population.append(self.search_space.default_spec())
        needed = self.initial_candidates - len(population)
        if needed > 0:
            exclude = {spec.encode().tobytes() for spec in population}
            population.extend(self.search_space.sample_batch(needed, rng=self._rng, exclude=exclude))
        return population

    def _evaluate_rung(self, population: List[ArchitectureSpec], epochs: int) -> List[EvaluationResult]:
        """Evaluate one rung's population, sequentially or on the executor."""
        if self.workers <= 1:
            return [self.objective.evaluate(spec, epochs) for spec in population]
        from repro.core.async_eval import evaluate_ordered

        base = self.objective.base
        weight_store = getattr(base, "weight_store", None)
        defer = weight_store is not None and hasattr(base, "defer_updates")
        if defer:
            previous_defer = base.defer_updates
            base.defer_updates = True
        try:
            return evaluate_ordered(
                self.objective.at_fidelity(epochs),
                population,
                workers=self.workers,
                weight_store=weight_store,
            )
        finally:
            if defer:
                base.defer_updates = previous_defer

    def optimize(self) -> OptimizationHistory:
        """Run the full ladder and return the evaluation history."""
        population = self._initial_population()
        for rung_index, rung in enumerate(self.schedule.rungs):
            results: List[Tuple[ArchitectureSpec, EvaluationResult]] = []
            for spec, result in zip(population, self._evaluate_rung(population, rung.epochs)):
                record = OptimizationRecord.from_result(rung_index, result, source=f"sh-rung{rung_index}")
                self.history.append(record)
                results.append((spec, result))
            results.sort(key=lambda pair: pair[1].objective_value)
            survivors = max(1, int(np.ceil(len(results) * rung.keep_fraction)))
            population = [spec for spec, _ in results[:survivors]]
        return self.history

    def best_spec(self) -> ArchitectureSpec:
        """Architecture with the smallest observed objective value."""
        return self.history.best().spec
