"""Multi-objective Bayesian optimization: accuracy–energy–latency Pareto search.

The single-objective engine (:class:`~repro.core.bayes_opt.BayesianOptimizer`)
optimises validation accuracy alone, yet the paper's analysis is inherently
multi-objective: DSC skip connections lower firing rates but inflate MAC
counts, ASC keeps MACs flat but raises firing rates.  This module turns the
existing BO stack into a hardware-aware optimizer:

* :class:`ObjectiveSpec` names one objective and where to read it from an
  evaluation's per-objective ``metrics`` dict (``val_accuracy`` from the
  trainer path, ``energy_nj``/``macs`` from the MAC/energy model of
  :mod:`repro.snn.mac`, ``latency_steps`` from the simulation window).  All
  internal vectors are **minimisation** vectors; maximised metrics are
  sign-flipped by their spec.
* :class:`MultiObjectiveBayesianOptimizer` maintains **one incremental GP per
  objective** (the same rank-k Cholesky updates as the scalar engine — a new
  observation is O(n^2) per objective) and proposes candidates by **random
  scalarization**: per proposal a fresh Chebyshev weight vector is drawn
  (ParEGO-style, augmented with a small weighted-sum term) and the scalarised
  posterior is scored by the *existing* acquisition functions (UCB/EI/PI).
  Resampling the weights every proposal sweeps the whole front instead of
  converging to one compromise point.
* Hard constraints (:class:`ObjectiveConstraint`, e.g. ``energy <= budget``)
  weight the acquisition by the posterior probability of feasibility
  (:func:`~repro.gp.acquisition.probability_in_bounds`), so the search spends
  its budget inside the feasible region without discarding the information
  infeasible evaluations carry.
* Every evaluation is inserted into a :class:`~repro.core.pareto.ParetoFront`;
  :attr:`~MultiObjectiveBayesianOptimizer.hypervolume_history` traces the
  hypervolume indicator against a reference point fixed after the warm-start
  evaluations, so front quality per evaluation is a tracked number.

The evaluation path is untouched: any objective producing
``EvaluationResult.metrics`` works, including :class:`~repro.core.cache.CachedObjective`
(rows persist the metrics dict, so cache hits replay *all* objectives) and
worker processes (batch or async).  The asynchronous engine absorbs
completions in **submission order** — slightly less adaptive than the scalar
engine's completion-order absorption, but it makes the proposal sequence a
pure function of the seed, which is what lets a fully-cached re-run reproduce
an identical front at any worker count.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.bayes_opt import BayesianOptimizer, OptimizationHistory, OptimizationRecord
from repro.core.pareto import ParetoFront
from repro.core.search_space import ArchitectureSpec
from repro.gp.acquisition import feasibility_weighted, probability_in_bounds
from repro.gp.gp import GaussianProcessRegressor
from repro.trace import span


@dataclass(frozen=True)
class ObjectiveSpec:
    """One search objective: a named view onto the per-objective metrics dict.

    ``metric`` is the key read from ``EvaluationResult.metrics`` /
    ``OptimizationRecord.metrics``; ``direction`` declares whether the raw
    metric is minimised or maximised.  :meth:`value` returns the
    *minimisation* view (maximised metrics are negated), which is the scale
    every GP, scalarization and Pareto vector in this module uses.
    """

    name: str
    metric: str
    direction: str = "min"

    def __post_init__(self) -> None:
        if self.direction not in ("min", "max"):
            raise ValueError(f"direction must be 'min' or 'max', got {self.direction!r}")

    @property
    def sign(self) -> float:
        """+1 for minimised metrics, -1 for maximised ones."""
        return -1.0 if self.direction == "max" else 1.0

    def raw(self, metrics: Dict[str, float]) -> float:
        """The metric on its natural scale; raises if the evaluation lacks it."""
        if self.metric not in metrics:
            raise KeyError(
                f"objective {self.name!r} needs metric {self.metric!r}, but the evaluation "
                f"only recorded {sorted(metrics) or 'no metrics'} — enable the measurement "
                f"on the objective (e.g. measure_energy=True for energy/macs/latency)"
            )
        return float(metrics[self.metric])

    def value(self, metrics: Dict[str, float]) -> float:
        """Minimisation-scale value (sign-flipped for maximised metrics)."""
        return self.sign * self.raw(metrics)


#: built-in objectives, keyed by the names the CLI accepts.  ``latency`` is
#: the **measured** inference latency — the median of repeated timed forward
#: passes on the graph-free fast path (``latency_ms``, recorded by
#: ``AccuracyDropObjective(measure_latency=True)``) — while ``latency_steps``
#: keeps the old simulation-window step count as a cheap structural proxy.
BUILTIN_OBJECTIVES: Dict[str, ObjectiveSpec] = {
    "accuracy": ObjectiveSpec("accuracy", metric="val_accuracy", direction="max"),
    "firing_rate": ObjectiveSpec("firing_rate", metric="firing_rate", direction="min"),
    "energy": ObjectiveSpec("energy", metric="energy_nj", direction="min"),
    "macs": ObjectiveSpec("macs", metric="macs", direction="min"),
    "latency": ObjectiveSpec("latency", metric="latency_ms", direction="min"),
    "latency_steps": ObjectiveSpec("latency_steps", metric="latency_steps", direction="min"),
}


def get_objective_spec(name_or_spec: Union[str, ObjectiveSpec]) -> ObjectiveSpec:
    """Resolve an objective by registry name, or pass an explicit spec through."""
    if isinstance(name_or_spec, ObjectiveSpec):
        return name_or_spec
    key = str(name_or_spec).strip().lower().replace("-", "_")
    if key not in BUILTIN_OBJECTIVES:
        raise KeyError(f"unknown objective {name_or_spec!r}; available: {sorted(BUILTIN_OBJECTIVES)}")
    return BUILTIN_OBJECTIVES[key]


def resolve_objective_specs(objectives: Sequence[Union[str, ObjectiveSpec]]) -> Tuple[ObjectiveSpec, ...]:
    """Resolve a sequence of objective names/specs, rejecting duplicates."""
    specs = tuple(get_objective_spec(obj) for obj in objectives)
    if len(specs) < 2:
        raise ValueError("multi-objective search needs at least two objectives")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate objectives: {names}")
    return specs


@dataclass(frozen=True)
class ObjectiveConstraint:
    """Hard constraint on one objective's **raw** metric scale.

    ``upper``/``lower`` bound the metric on its natural scale (e.g.
    ``ObjectiveConstraint("energy", upper=budget)`` reads "energy_nj must not
    exceed budget").  The constrained objective must be one of the search
    objectives — its GP provides the feasibility posterior.
    """

    objective: str
    upper: Optional[float] = None
    lower: Optional[float] = None

    def __post_init__(self) -> None:
        if self.upper is None and self.lower is None:
            raise ValueError("constraint needs at least one of upper/lower")

    def feasible(self, spec: ObjectiveSpec, metrics: Dict[str, float]) -> bool:
        """Whether an observed evaluation satisfies the constraint."""
        raw = spec.raw(metrics)
        if self.upper is not None and raw > self.upper:
            return False
        if self.lower is not None and raw < self.lower:
            return False
        return True

    def value_bounds(self, spec: ObjectiveSpec) -> Tuple[Optional[float], Optional[float]]:
        """The (lower, upper) bounds on the *minimisation* scale the GP models."""
        if spec.direction == "min":
            return self.lower, self.upper
        lower = -self.upper if self.upper is not None else None
        upper = -self.lower if self.lower is not None else None
        return lower, upper


class MultiObjectiveBayesianOptimizer(BayesianOptimizer):
    """Pareto search over the skip-connection space via random scalarization.

    Parameters (on top of :class:`~repro.core.bayes_opt.BayesianOptimizer`,
    whose evaluation machinery — batch workers, deferred weight updates,
    persistent candidate pool — is inherited unchanged):

    objectives:
        Objective names or :class:`ObjectiveSpec` instances (>= 2).  Each gets
        its own incremental GP over the architecture encoding.
    constraints:
        :class:`ObjectiveConstraint` instances; proposals are weighted by the
        posterior probability of satisfying all of them, and the scalarised
        incumbent fed to the acquisition is the best *feasible* observation
        (falling back to the unconstrained best while nothing is feasible).
    reference_point:
        Optional hypervolume reference on the **minimisation** scale (note
        maximised metrics are negated, so an accuracy reference of e.g. 0.2
        is written as -0.2).  When omitted, the reference is derived once
        from the warm-start observations — nadir plus ``reference_margin``
        of the observed range per objective — and then held fixed, so the
        recorded hypervolume trace is non-decreasing by construction.
    scalarization_rho:
        Weight of the linear term in the augmented Chebyshev scalarization
        ``max_j(w_j z_j) + rho * sum_j(w_j z_j)`` (ParEGO's rho).
    front_capacity:
        Optional bound on the retained front size (crowding-based truncation;
        ``None`` keeps every non-dominated point).

    The history's scalar ``objective_value`` is the first objective's
    minimisation value, so :meth:`history.best`, incumbent curves and every
    other single-objective consumer keep working; the real output is
    :attr:`front` and :attr:`hypervolume_history`.
    """

    def __init__(
        self,
        search_space,
        objective,
        objectives: Sequence[Union[str, ObjectiveSpec]] = ("accuracy", "energy"),
        constraints: Sequence[ObjectiveConstraint] = (),
        reference_point: Optional[Sequence[float]] = None,
        reference_margin: float = 0.1,
        scalarization_rho: float = 0.05,
        front_capacity: Optional[int] = None,
        **kwargs,
    ) -> None:
        super().__init__(search_space, objective, **kwargs)
        self.objectives = resolve_objective_specs(objectives)
        self.constraints = tuple(constraints)
        self._objectives_by_name = {spec.name: spec for spec in self.objectives}
        for constraint in self.constraints:
            if constraint.objective not in self._objectives_by_name:
                raise ValueError(
                    f"constraint targets {constraint.objective!r}, which is not among the "
                    f"search objectives {sorted(self._objectives_by_name)}"
                )
        if reference_margin <= 0:
            raise ValueError("reference_margin must be positive")
        if scalarization_rho < 0:
            raise ValueError("scalarization_rho must be non-negative")
        self.reference_margin = float(reference_margin)
        self.scalarization_rho = float(scalarization_rho)
        self.front = ParetoFront(capacity=front_capacity)
        self.reference_point: Optional[np.ndarray] = (
            np.asarray(reference_point, dtype=np.float64).reshape(-1)
            if reference_point is not None
            else None
        )
        if self.reference_point is not None and len(self.reference_point) != len(self.objectives):
            raise ValueError(
                f"reference point has {len(self.reference_point)} entries for "
                f"{len(self.objectives)} objectives"
            )
        self._reference_fixed = reference_point is not None
        #: hypervolume after each observation made once the reference existed
        self.hypervolume_history: List[float] = []
        self._models: Dict[str, GaussianProcessRegressor] = {}
        #: per-objective minimisation values of every observed record, aligned
        #: with the history; grown in :meth:`_on_record`
        self._observed: List[np.ndarray] = []
        self._observed_feasible: List[bool] = []

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def _reset_incremental_state(self) -> None:
        super()._reset_incremental_state()
        self._models = {}
        self._rebuild_observations()

    def _rebuild_observations(self) -> None:
        """Re-derive every observation-dependent structure from the history.

        The front, the feasibility flags, a derived reference point and the
        hypervolume trace are all pure functions of the record sequence, so
        a history swapped in from outside (the in-API pattern the base
        class's guard detects) replays cleanly instead of desyncing.
        """
        self._observed = []
        self._observed_feasible = []
        self.front = ParetoFront(capacity=self.front.capacity)
        if not self._reference_fixed:
            self.reference_point = None
        self.hypervolume_history = []
        for record in self.history.records:
            self._on_record(record)

    def record_values(self, record: OptimizationRecord) -> np.ndarray:
        """The record's minimisation vector over this search's objectives."""
        return np.array([spec.value(record.metrics) for spec in self.objectives])

    def _record_feasible(self, record: OptimizationRecord) -> bool:
        return all(
            constraint.feasible(self._objectives_by_name[constraint.objective], record.metrics)
            for constraint in self.constraints
        )

    def _on_record(self, record: OptimizationRecord) -> None:
        values = self.record_values(record)
        self._observed.append(values)
        self._observed_feasible.append(self._record_feasible(record))
        self.front.insert(values, payload={"record": record})
        if self.reference_point is None and len(self._observed) >= self.initial_points:
            self.reference_point = self._derive_reference()
        if self.reference_point is not None:
            self.hypervolume_history.append(self.front.hypervolume(self.reference_point))

    def _derive_reference(self) -> np.ndarray:
        observed = np.stack(self._observed)
        nadir = observed.max(axis=0)
        spread = observed.max(axis=0) - observed.min(axis=0)
        margin = self.reference_margin * np.where(spread > 0, spread, np.maximum(np.abs(nadir), 1.0))
        return nadir + margin

    def hypervolume(self) -> float:
        """Current front hypervolume (0 until the reference point exists)."""
        if self.reference_point is None:
            return 0.0
        return self.front.hypervolume(self.reference_point)

    # ------------------------------------------------------------------
    # surrogates: one incremental GP per objective
    # ------------------------------------------------------------------
    def _fit_surrogate(self) -> Dict[str, GaussianProcessRegressor]:
        """Absorb new observations into every per-objective GP (rank-k update).

        ``hyperopt_every`` is honoured here too: the shared kernel is re-tuned
        against the first objective's values (the scalar the history records
        as ``objective_value``), and a changed kernel drops every cached
        per-objective GP so each rebuilds its Cholesky factor once.
        """
        self._guard_incremental_state()
        if self._maybe_adapt_hyperparameters():
            self._models = {}
        if len(self._observed) != len(self.history):
            # records appended to the history from outside never passed
            # through _on_record; replay them before they train the GPs
            self._rebuild_observations()
        new_records = self.history.records[self._num_modelled :]
        if new_records:
            x_new = np.array([record.spec.encode() for record in new_records], dtype=np.float64)
            x_all: Optional[np.ndarray] = None
            for spec in self.objectives:
                model = self._models.get(spec.name)
                if model is None or not self.incremental:
                    if x_all is None:
                        # shared across objectives: only the targets differ
                        x_all = np.array(
                            [record.spec.encode() for record in self.history], dtype=np.float64
                        )
                    y_all = np.array([spec.value(record.metrics) for record in self.history])
                    model = GaussianProcessRegressor(kernel=self.kernel, noise=self.noise)
                    model.fit(x_all, y_all)
                    self._models[spec.name] = model
                else:
                    y_new = np.array([spec.value(record.metrics) for record in new_records])
                    model.update(x_new, y_new)
        self._num_modelled = len(self.history)
        self._modelled_tail = self.history.records[-1] if self.history.records else None
        return self._models

    # ------------------------------------------------------------------
    # random-scalarization proposals
    # ------------------------------------------------------------------
    def _draw_weights(self) -> np.ndarray:
        """One Chebyshev weight vector, uniform on the simplex (Dirichlet(1))."""
        return self._rng.dirichlet(np.ones(len(self.objectives)))

    def _scalarize(self, z: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Augmented Chebyshev scalarization of normalised rows ``z`` (n, k)."""
        weighted = z * weights
        return weighted.max(axis=1) + self.scalarization_rho * weighted.sum(axis=1)

    def _best_scalarized(
        self, observed_z: np.ndarray, weights: np.ndarray
    ) -> float:
        """Best observed scalarised value — feasible observations first."""
        scalarized = self._scalarize(observed_z, weights)
        feasible = np.asarray(self._observed_feasible, dtype=bool)
        if self.constraints and np.any(feasible):
            return float(scalarized[feasible].min())
        return float(scalarized.min())

    def _feasibility_probability(self, models, matrix: np.ndarray) -> Optional[np.ndarray]:
        """Posterior probability that each pool candidate satisfies all constraints."""
        if not self.constraints:
            return None
        probability = np.ones(matrix.shape[0])
        for constraint in self.constraints:
            spec = self._objectives_by_name[constraint.objective]
            mean, std = models[spec.name].predict(matrix)
            lower, upper = constraint.value_bounds(spec)
            probability = probability * probability_in_bounds(mean, std, lower=lower, upper=upper)
        return probability

    def _propose_one(self, models, iteration: int) -> ArchitectureSpec:
        """Score the pool under a freshly drawn scalarization and pop the winner."""
        weights = self._draw_weights()
        observed = np.stack(self._observed)
        ideal = observed.min(axis=0)
        spread = observed.max(axis=0) - ideal
        spread = np.where(spread > 0, spread, 1.0)
        matrix = self._pool_matrix
        means = np.empty((matrix.shape[0], len(self.objectives)))
        stds = np.empty_like(means)
        for j, spec in enumerate(self.objectives):
            means[:, j], stds[:, j] = models[spec.name].predict(matrix)
        z_mean = (means - ideal) / spread
        mean_s = self._scalarize(z_mean, weights)
        # heuristic scalarised uncertainty: weight-combined per-objective
        # standard deviations on the normalised scale (exact for the linear
        # term; conservative for the max term)
        std_s = np.sqrt((((stds / spread) * weights) ** 2).sum(axis=1))
        best = self._best_scalarized((observed - ideal) / spread, weights)
        scores = self.acquisition(mean_s, std_s, best_observed=best, iteration=iteration)
        probability = self._feasibility_probability(models, matrix)
        if probability is not None:
            scores = feasibility_weighted(scores, probability)
        return self._pool_pop(int(np.argmax(scores)))

    def _propose_batch(self, surrogate, iteration: int) -> List[ArchitectureSpec]:
        """A batch of proposals, each under its own random scalarization.

        Weight resampling per pick replaces the scalar engine's constant-liar
        fantasies: distinct Chebyshev weights aim each proposal at a
        different region of the front, which keeps a batch diverse without
        conditioning the per-objective posteriors on lies.
        """
        with span("propose", iteration=iteration) as propose_span:
            self._refresh_pool()
            proposals: List[ArchitectureSpec] = []
            for _ in range(self.batch_size):
                if not self._pool_specs:
                    break
                proposals.append(self._propose_one(surrogate, iteration))
            if propose_span:
                propose_span.set(proposals=len(proposals))
            return proposals

    def _propose_async(self, in_flight_specs, iteration: int) -> Optional[ArchitectureSpec]:
        with span("propose", iteration=iteration) as propose_span:
            models = self._fit_surrogate()
            pending = {spec.encode().tobytes() for spec in in_flight_specs}
            self._refresh_pool(exclude_extra=pending)
            if not self._pool_specs:
                return None
            if propose_span:
                propose_span.set(in_flight=len(pending), pool=len(self._pool_specs))
            return self._propose_one(models, iteration)

    # ------------------------------------------------------------------
    # deterministic asynchronous engine
    # ------------------------------------------------------------------
    def _optimize_async(self, num_iterations: int, callback) -> OptimizationHistory:
        """Asynchronous engine with **submission-order** absorption.

        Up to ``async_workers`` evaluations stay in flight, but completions
        are buffered and observed strictly in ticket order, and each in-order
        absorption immediately submits exactly one replacement proposal —
        never a batch of them.  Proposal ``p`` therefore always sees the
        first ``p - async_workers`` results absorbed and the rest pending,
        whatever order workers actually finished in: the proposal sequence
        is a pure function of the seed, never of scheduling.  That
        determinism is what lets a fully-cached re-run replay the identical
        front at any worker count; the price is that a worker can idle
        behind an out-of-order straggler (the scalar engine, which has no
        such reproducibility contract, absorbs in completion order instead).
        """
        from repro.core.async_eval import AsyncEvaluationExecutor, WeightUpdateSequencer

        budget = num_iterations * self.batch_size
        sequencer = WeightUpdateSequencer(self.weight_store)
        defer = self._weight_base is not None and self.weight_store is not None
        if defer:
            previous_defer = self._weight_base.defer_updates
            self._weight_base.defer_updates = True
        try:
            with AsyncEvaluationExecutor(self.objective, workers=self.async_workers) as executor:
                in_flight: Dict[int, ArchitectureSpec] = {}
                buffered: Dict[int, object] = {}
                next_ticket = 0
                num_init = 0
                absorbed = 0
                proposed = 0

                def pending_specs():
                    return itertools.chain(
                        in_flight.values(), (done.spec for done in buffered.values())
                    )

                def propose_one() -> bool:
                    """Submit one replacement proposal; False once the budget is spent."""
                    nonlocal proposed
                    if proposed >= budget:
                        return False
                    spec = self._propose_async(pending_specs(), iteration=1 + proposed // self.batch_size)
                    if spec is None:
                        proposed = budget
                        return False
                    in_flight[executor.submit(spec)] = spec
                    proposed += 1
                    return True

                def absorb_ready(replace: bool) -> None:
                    """Absorb buffered completions in ticket order, one at a time.

                    With ``replace`` set, each absorption immediately submits
                    exactly one replacement — the interleaving that keeps the
                    absorbed-prefix-per-proposal independent of completion
                    order.
                    """
                    nonlocal next_ticket, absorbed
                    while next_ticket in buffered:
                        done = buffered.pop(next_ticket)
                        if next_ticket < num_init:
                            self._absorb_async(done, sequencer, iteration=0, source="init")
                        else:
                            absorbed += 1
                            iteration = 1 + (absorbed - 1) // self.batch_size
                            self._absorb_async(done, sequencer, iteration=iteration, source="bo")
                        next_ticket += 1
                        if replace:
                            propose_one()

                if not len(self.history):
                    for spec in self._initial_specs():
                        in_flight[executor.submit(spec)] = spec
                    num_init = len(in_flight)
                    while in_flight:
                        done = executor.next_completed()
                        del in_flight[done.ticket]
                        buffered[done.ticket] = done
                        absorb_ready(replace=False)
                    if callback is not None:
                        callback(0, self.history)
                while len(in_flight) < self.async_workers and propose_one():
                    pass
                # buffered drains whenever in_flight empties (an out-of-order
                # ticket implies an earlier one still running), so in_flight
                # alone is the loop condition
                while in_flight:
                    done = executor.next_completed()
                    del in_flight[done.ticket]
                    buffered[done.ticket] = done
                    before = absorbed
                    absorb_ready(replace=True)
                    boundary = absorbed % self.batch_size == 0 or (
                        not in_flight and not buffered and proposed >= budget
                    )
                    if callback is not None and absorbed > before and boundary:
                        callback(1 + (absorbed - 1) // self.batch_size, self.history)
        finally:
            if defer:
                self._weight_base.defer_updates = previous_defer
        return self.history

    # ------------------------------------------------------------------
    def front_records(self) -> List[OptimizationRecord]:
        """The history records behind the current front, by first objective."""
        records = [point.payload["record"] for point in self.front]
        return sorted(records, key=lambda record: self.record_values(record)[0])
