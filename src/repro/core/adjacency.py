"""Block adjacency matrices encoding skip connections (paper Eq. 1).

A block of depth ``d`` is a DAG over ``d + 1`` nodes: node 0 is the block
input and node ``k`` (``1 <= k <= d``) is the output of the block's ``k``-th
layer.  Layer ``k`` always receives the output of node ``k - 1`` through the
fixed *sequential* connection; in addition it may receive *skip connections*
from any earlier node ``i < k - 1``.  Each skip is typed:

====  =====================================  =====================
code  meaning                                paper terminology
====  =====================================  =====================
0     no connection                          —
1     concatenate source into layer input    DSC (DenseNet-like)
2     add source into layer input            ASC (addition-type)
====  =====================================  =====================

With this convention the maximum number of skips into the second layer is 1
(only the block input qualifies) and into the fourth layer is 3 — matching the
example given in Section III-A of the paper.

:class:`BlockAdjacency` stores the full ``(d+1, d+1)`` matrix but only the
strictly-super-super-diagonal entries (``j > i + 1``) are free; everything
else is structurally zero.  The class provides the encoding/decoding used by
the Gaussian-process surrogate, random sampling, neighbourhood moves for local
search, and conversion to :mod:`networkx` graphs for analysis/visualisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.tensor.random import default_rng

#: no skip connection between two nodes
NO_CONNECTION = 0
#: DenseNet-like skip connection (concatenation)
DSC = 1
#: addition-type skip connection (element-wise sum)
ASC = 2
#: all valid connection codes
SKIP_TYPES = (NO_CONNECTION, DSC, ASC)

_NAMES = {NO_CONNECTION: "none", DSC: "dsc", ASC: "asc"}


def connection_name(code: int) -> str:
    """Human-readable name of a connection code."""
    if code not in _NAMES:
        raise ValueError(f"unknown connection code {code}")
    return _NAMES[code]


class BlockAdjacency:
    """Adjacency matrix of one block's skip connections.

    Parameters
    ----------
    depth:
        Number of layers in the block (``d_b`` in the paper).
    matrix:
        Optional ``(depth+1, depth+1)`` integer matrix.  Only entries with
        ``j > i + 1`` may be non-zero; invalid entries raise ``ValueError``.
    """

    def __init__(self, depth: int, matrix: Optional[np.ndarray] = None) -> None:
        if depth < 1:
            raise ValueError(f"block depth must be >= 1, got {depth}")
        self.depth = int(depth)
        size = self.depth + 1
        if matrix is None:
            self.matrix = np.zeros((size, size), dtype=np.int64)
        else:
            matrix = np.asarray(matrix, dtype=np.int64)
            if matrix.shape != (size, size):
                raise ValueError(f"matrix must have shape {(size, size)}, got {matrix.shape}")
            self.matrix = matrix.copy()
            self.validate()

    # ------------------------------------------------------------------
    # structural helpers
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of DAG nodes (block input + one per layer)."""
        return self.depth + 1

    def skip_positions(self) -> List[Tuple[int, int]]:
        """All (source, destination) pairs that may carry a skip connection."""
        return [(i, j) for j in range(2, self.num_nodes) for i in range(j - 1)]

    def validate(self) -> None:
        """Raise ``ValueError`` if the matrix violates the structural constraints."""
        size = self.num_nodes
        for i in range(size):
            for j in range(size):
                value = int(self.matrix[i, j])
                if value not in SKIP_TYPES:
                    raise ValueError(f"entry ({i}, {j}) has invalid code {value}")
                if value != NO_CONNECTION and j <= i + 1:
                    raise ValueError(
                        f"entry ({i}, {j}) = {value} is not a valid skip position "
                        "(skips must go forward by at least two nodes; backward and "
                        "sequential edges are fixed)"
                    )

    # ------------------------------------------------------------------
    # queries used by the model builder and the analysis
    # ------------------------------------------------------------------
    def sources_of(self, layer_index: int) -> List[Tuple[int, int]]:
        """Skip sources of layer ``layer_index`` (0-based) as ``(node, type)`` pairs.

        The always-present sequential input (node ``layer_index``) is *not*
        included.
        """
        destination = layer_index + 1
        if not 0 <= layer_index < self.depth:
            raise IndexError(f"layer_index must be in [0, {self.depth}), got {layer_index}")
        return [
            (i, int(self.matrix[i, destination]))
            for i in range(destination - 1)
            if self.matrix[i, destination] != NO_CONNECTION
        ]

    def num_skips_per_layer(self) -> List[int]:
        """``n_skip,i`` for every layer ``i`` of the block."""
        return [len(self.sources_of(layer)) for layer in range(self.depth)]

    def total_skips(self) -> int:
        """Total number of skip connections in the block."""
        return int(sum(self.num_skips_per_layer()))

    def count_by_type(self) -> Dict[int, int]:
        """Number of skips of each type (DSC / ASC)."""
        counts = {DSC: 0, ASC: 0}
        for i, j in self.skip_positions():
            value = int(self.matrix[i, j])
            if value in counts:
                counts[value] += 1
        return counts

    def max_skips(self) -> int:
        """Maximum number of skip connections the block can hold."""
        return len(self.skip_positions())

    # ------------------------------------------------------------------
    # mutation / construction
    # ------------------------------------------------------------------
    def with_connection(self, source: int, destination: int, code: int) -> "BlockAdjacency":
        """Return a copy with entry ``(source, destination)`` set to ``code``."""
        if code not in SKIP_TYPES:
            raise ValueError(f"invalid connection code {code}")
        if destination <= source + 1:
            raise ValueError(f"({source}, {destination}) is not a skip position")
        if destination >= self.num_nodes or source < 0:
            raise ValueError(f"({source}, {destination}) outside the block")
        new = self.copy()
        new.matrix[source, destination] = code
        return new

    def copy(self) -> "BlockAdjacency":
        """Deep copy."""
        return BlockAdjacency(self.depth, self.matrix)

    @classmethod
    def empty(cls, depth: int) -> "BlockAdjacency":
        """Block with no skip connections (the ``n_skip = 0`` baseline)."""
        return cls(depth)

    @classmethod
    def fully_connected(cls, depth: int, code: int = DSC) -> "BlockAdjacency":
        """Block with a skip of type ``code`` at every legal position.

        With ``code=DSC`` this reproduces the all-to-all connectivity of an
        original DenseNet block.
        """
        block = cls(depth)
        for i, j in block.skip_positions():
            block.matrix[i, j] = code
        return block

    @classmethod
    def with_final_layer_skips(cls, depth: int, n_skip: int, code: int) -> "BlockAdjacency":
        """Block whose *last* layer receives ``n_skip`` skips of type ``code``.

        Sources are taken from the most recent eligible nodes first.  This is
        the configuration swept in the Fig. 1 analysis: ``n_skip`` ranges from
        0 to ``depth - 1`` for a block of ``depth`` layers.  If ``n_skip``
        exceeds the number of eligible sources it is clamped, mirroring the
        paper ("if n_skip is greater than the number of previous layers, we
        use the number of previous layers instead").
        """
        block = cls(depth)
        destination = depth  # node index of the last layer
        eligible = list(range(destination - 1))  # nodes 0 .. depth-2
        n_skip = min(int(n_skip), len(eligible))
        for source in reversed(eligible[-n_skip:] if n_skip else []):
            block.matrix[source, destination] = code
        return block

    @classmethod
    def with_total_skips(cls, depth: int, n_skip: int, code: int, rng=None) -> "BlockAdjacency":
        """Block with ``n_skip`` skips of type ``code`` at random legal positions."""
        rng = default_rng(rng)
        block = cls(depth)
        positions = block.skip_positions()
        n_skip = min(int(n_skip), len(positions))
        chosen = rng.choice(len(positions), size=n_skip, replace=False) if n_skip else []
        for index in np.atleast_1d(chosen):
            i, j = positions[int(index)]
            block.matrix[i, j] = code
        return block

    @classmethod
    def random(cls, depth: int, rng=None, density: float = 0.5, allowed: Sequence[int] = (DSC, ASC)) -> "BlockAdjacency":
        """Sample a random adjacency: each position is a skip with prob. ``density``."""
        rng = default_rng(rng)
        block = cls(depth)
        allowed = [code for code in allowed if code != NO_CONNECTION]
        for i, j in block.skip_positions():
            if rng.random() < density:
                block.matrix[i, j] = int(rng.choice(allowed)) if allowed else NO_CONNECTION
        return block

    def neighbors(self) -> Iterator["BlockAdjacency"]:
        """Yield every adjacency differing from this one in exactly one entry."""
        for i, j in self.skip_positions():
            current = int(self.matrix[i, j])
            for code in SKIP_TYPES:
                if code != current:
                    yield self.with_connection(i, j, code)

    # ------------------------------------------------------------------
    # encoding (GP input) and graph export
    # ------------------------------------------------------------------
    def encode(self) -> np.ndarray:
        """Flat integer vector of the free entries, in a fixed position order."""
        return np.array([self.matrix[i, j] for i, j in self.skip_positions()], dtype=np.int64)

    @classmethod
    def from_encoding(cls, depth: int, encoding: Sequence[int]) -> "BlockAdjacency":
        """Inverse of :meth:`encode`."""
        block = cls(depth)
        positions = block.skip_positions()
        encoding = list(encoding)
        if len(encoding) != len(positions):
            raise ValueError(
                f"encoding length {len(encoding)} does not match the {len(positions)} free positions "
                f"of a depth-{depth} block"
            )
        for (i, j), code in zip(positions, encoding):
            code = int(code)
            if code not in SKIP_TYPES:
                raise ValueError(f"invalid code {code} in encoding")
            block.matrix[i, j] = code
        return block

    def encoding_length(self) -> int:
        """Length of the vector produced by :meth:`encode`."""
        return len(self.skip_positions())

    def to_networkx(self) -> nx.DiGraph:
        """Export the block DAG (sequential + skip edges) as a networkx digraph."""
        graph = nx.DiGraph()
        graph.add_node(0, kind="input")
        for layer in range(1, self.num_nodes):
            graph.add_node(layer, kind="layer")
            graph.add_edge(layer - 1, layer, kind="sequential")
        for i, j in self.skip_positions():
            code = int(self.matrix[i, j])
            if code != NO_CONNECTION:
                graph.add_edge(i, j, kind=connection_name(code))
        return graph

    def is_acyclic(self) -> bool:
        """Sanity check used by property-based tests (always true by construction)."""
        return nx.is_directed_acyclic_graph(self.to_networkx())

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        return (
            isinstance(other, BlockAdjacency)
            and other.depth == self.depth
            and np.array_equal(other.matrix, self.matrix)
        )

    def __hash__(self) -> int:
        return hash((self.depth, self.encode().tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlockAdjacency(depth={self.depth}, skips={self.total_skips()}, encoding={self.encode().tolist()})"
