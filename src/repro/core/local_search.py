"""Additional search baselines: greedy local search and a simple evolutionary search.

The paper compares its GP+UCB hyperparameter optimization against random
search only; these two baselines are standard alternatives in the NAS
literature and give the reproduction's Fig.-3-style comparison more context.
Both operate on the same :class:`~repro.core.search_space.SearchSpace`, use
the same objectives (so they can share weights exactly like the BO search) and
produce the same :class:`~repro.core.bayes_opt.OptimizationHistory`.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.core.bayes_opt import OptimizationHistory, OptimizationRecord
from repro.core.objectives import EvaluationResult, Objective
from repro.core.search_space import ArchitectureSpec, SearchSpace
from repro.tensor.random import default_rng


class LocalSearch:
    """Greedy first-improvement hill climbing over single-entry moves.

    Starting from the default (or a random) architecture, the search evaluates
    neighbours that differ in exactly one adjacency entry and moves to the
    first one that improves the objective; it stops when the evaluation budget
    is exhausted or no neighbour improves (a local optimum).
    """

    def __init__(
        self,
        search_space: SearchSpace,
        objective: Objective | Callable[[ArchitectureSpec], EvaluationResult],
        start_from_default: bool = True,
        rng=None,
    ) -> None:
        self.search_space = search_space
        self.objective = objective
        self.start_from_default = bool(start_from_default)
        self._rng = default_rng(rng)
        self.history = OptimizationHistory()

    def optimize(self, max_evaluations: int) -> OptimizationHistory:
        """Run hill climbing with at most ``max_evaluations`` objective calls."""
        if max_evaluations < 1:
            raise ValueError("max_evaluations must be >= 1")
        current = (
            self.search_space.default_spec() if self.start_from_default else self.search_space.sample(self._rng)
        )
        current_result = self.objective(current)
        self.history.append(OptimizationRecord.from_result(0, current_result, source="ls"))
        evaluations = 1
        iteration = 0
        improved = True
        while improved and evaluations < max_evaluations:
            improved = False
            iteration += 1
            neighbors = list(self.search_space.neighbors(current))
            self._rng.shuffle(neighbors)
            for neighbor in neighbors:
                if evaluations >= max_evaluations:
                    break
                result = self.objective(neighbor)
                evaluations += 1
                self.history.append(OptimizationRecord.from_result(iteration, result, source="ls"))
                if result.objective_value < current_result.objective_value:
                    current, current_result = neighbor, result
                    improved = True
                    break
        return self.history

    def best_spec(self) -> ArchitectureSpec:
        """Architecture with the smallest observed objective value."""
        return self.history.best().spec


class EvolutionarySearch:
    """(mu + lambda)-style regularised evolution over adjacency matrices.

    A population of architectures evolves by tournament selection and
    single-entry mutation (the same move set as :class:`LocalSearch`), with
    the oldest member retired each generation — the "regularised evolution"
    recipe that is a strong NAS baseline.
    """

    def __init__(
        self,
        search_space: SearchSpace,
        objective: Objective | Callable[[ArchitectureSpec], EvaluationResult],
        population_size: int = 8,
        tournament_size: int = 3,
        rng=None,
    ) -> None:
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if tournament_size < 1:
            raise ValueError("tournament_size must be >= 1")
        self.search_space = search_space
        self.objective = objective
        self.population_size = int(population_size)
        self.tournament_size = int(tournament_size)
        self._rng = default_rng(rng)
        self.history = OptimizationHistory()

    def _mutate(self, spec: ArchitectureSpec) -> ArchitectureSpec:
        neighbors = list(self.search_space.neighbors(spec))
        index = int(self._rng.integers(0, len(neighbors)))
        return neighbors[index]

    def optimize(self, max_evaluations: int) -> OptimizationHistory:
        """Run evolution with at most ``max_evaluations`` objective calls."""
        if max_evaluations < 1:
            raise ValueError("max_evaluations must be >= 1")
        population: List[tuple] = []
        initial = min(self.population_size, max_evaluations)
        seeds = [self.search_space.default_spec()]
        seeds += self.search_space.sample_batch(
            initial - 1, rng=self._rng, exclude={seeds[0].encode().tobytes()}
        )
        evaluations = 0
        for spec in seeds[:initial]:
            result = self.objective(spec)
            evaluations += 1
            self.history.append(OptimizationRecord.from_result(0, result, source="evo"))
            population.append((spec, result))
        generation = 0
        while evaluations < max_evaluations:
            generation += 1
            contenders_idx = self._rng.choice(len(population), size=min(self.tournament_size, len(population)), replace=False)
            contenders = [population[int(i)] for i in np.atleast_1d(contenders_idx)]
            parent = min(contenders, key=lambda pair: pair[1].objective_value)[0]
            child = self._mutate(parent)
            result = self.objective(child)
            evaluations += 1
            self.history.append(OptimizationRecord.from_result(generation, result, source="evo"))
            population.append((child, result))
            population.pop(0)  # retire the oldest member (regularised evolution)
        return self.history

    def best_spec(self) -> ArchitectureSpec:
        """Architecture with the smallest observed objective value."""
        return self.history.best().spec
