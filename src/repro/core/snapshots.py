"""Disk-backed weight snapshots: the persistence tier of weight sharing.

The persistent evaluation store (:mod:`repro.core.cache`) records *what* an
architecture scored; this module records the trained weights the evaluation
produced, so that a later run answering from the cache can also replay the
candidate's weight updates into its :class:`~repro.core.weight_sharing.WeightStore`
instead of fine-tuning its final model from cold, vanilla weights.

Snapshots are **content-addressed**: each trained state is written once as
``<digest>.npz`` (digest over sorted keys, dtypes, shapes and raw bytes), so
identical states produced by different candidates or repeated runs share one
file, and a snapshot reference stored in an evaluation row is stable across
processes.  Writes are atomic (write to a temporary file in the same
directory, then ``os.replace``), so concurrent runs sharing a cache directory
can never observe a torn ``.npz``.

Snapshot metadata (score, size) lives in a per-digest ``<digest>.meta.json``
sidecar rather than one shared index file: every piece of on-disk state is
then written atomically by exactly one ``os.replace``, so concurrent writers
— worker-pool children, or two runs sharing a cache directory — cannot drop
each other's entries, and eviction always sees every snapshot on disk.

The directory is bounded: each store keeps at most ``keep_best`` snapshots,
ranked by the score recorded at ``put`` time (higher is better, e.g.
validation accuracy).  Eviction removes the lowest-scoring files; an
evaluation row whose snapshot was evicted simply replays nothing — the cached
objective value is still valid, the run is merely a little colder, which is
exactly the pre-snapshot behaviour.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

#: default per-store snapshot budget (each snapshot is one small .npz file)
DEFAULT_KEEP_BEST = 32


def state_digest(state: Dict[str, np.ndarray]) -> str:
    """Content digest of a state dict (keys, dtypes, shapes and bytes)."""
    hasher = hashlib.sha256()
    for key in sorted(state):
        value = np.ascontiguousarray(state[key])
        hasher.update(key.encode("utf-8"))
        hasher.update(str(value.dtype).encode("utf-8"))
        hasher.update(str(value.shape).encode("utf-8"))
        hasher.update(value.tobytes())
    return hasher.hexdigest()[:16]


class WeightSnapshotStore:
    """Content-addressed ``.npz`` snapshots of trained weight states.

    Parameters
    ----------
    directory:
        Where snapshots live; created on first use.  One directory per
        evaluation store (see :func:`repro.core.cache.snapshot_store_for`),
        so the evaluation configuration fingerprint embedded in the store's
        filename also scopes the snapshots.
    keep_best:
        Maximum number of snapshots kept; the lowest-scoring ones are evicted
        first (a snapshot without a score ranks below any scored one).
    """

    def __init__(self, directory: Union[str, Path], keep_best: int = DEFAULT_KEEP_BEST) -> None:
        if keep_best < 1:
            raise ValueError("keep_best must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep_best = int(keep_best)
        self.puts = 0
        self.replays = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def _snapshot_path(self, digest: str) -> Path:
        return self.directory / f"{digest}.npz"

    def _meta_path(self, digest: str) -> Path:
        return self.directory / f"{digest}.meta.json"

    def _write_atomically(self, path: Path, writer) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=path.suffix + ".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                writer(handle)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def _read_meta(self, digest: str) -> Dict[str, float]:
        try:
            meta = json.loads(self._meta_path(digest).read_text())
        except (OSError, json.JSONDecodeError):
            return {}
        return meta if isinstance(meta, dict) else {}

    def _scan(self) -> Dict[str, Dict[str, float]]:
        """Every snapshot currently on disk, with its sidecar metadata.

        Derived from the directory listing (the single source of truth), so
        snapshots written by concurrent processes are always visible to
        eviction and accounting.
        """
        entries: Dict[str, Dict[str, float]] = {}
        for path in self.directory.glob("*.npz"):
            digest = path.stem
            meta = self._read_meta(digest)
            if "bytes" not in meta:
                try:
                    meta["bytes"] = float(path.stat().st_size)
                except OSError:  # pragma: no cover - concurrently evicted
                    continue
            entries[digest] = meta
        return entries

    # ------------------------------------------------------------------
    def put(self, state: Dict[str, np.ndarray], score: Optional[float] = None) -> str:
        """Persist ``state`` and return its snapshot digest.

        Re-putting identical content is free (the file already exists); the
        recorded score is the best seen for that content, so a snapshot
        shared by several rows is ranked by its strongest use.
        """
        digest = state_digest(state)
        path = self._snapshot_path(digest)
        if not path.exists():
            self._write_atomically(path, lambda handle: np.savez(handle, **state))
        try:
            size = float(path.stat().st_size)
        except OSError:
            # a concurrent store evicted this digest between our existence
            # check and the stat; re-write it — this put is its newest use
            self._write_atomically(path, lambda handle: np.savez(handle, **state))
            size = float(path.stat().st_size)
        meta = self._read_meta(digest)
        previous = meta.get("score")
        if score is not None:
            meta["score"] = float(score) if previous is None else max(float(previous), float(score))
        meta["tensors"] = float(len(state))
        meta["bytes"] = size
        payload = json.dumps(meta).encode("utf-8")
        self._write_atomically(self._meta_path(digest), lambda handle: handle.write(payload))
        self._evict()
        self.puts += 1
        return digest

    def get(self, digest: str) -> Optional[Dict[str, np.ndarray]]:
        """Load the snapshot ``digest`` (``None`` if missing/evicted/corrupt)."""
        path = self._snapshot_path(digest)
        if not path.exists():
            return None
        try:
            with np.load(path) as archive:
                state = {key: np.array(archive[key]) for key in archive.files}
        except (OSError, ValueError, zipfile.BadZipFile):  # pragma: no cover - torn external writer
            return None
        self.replays += 1
        return state

    def _evict(self) -> None:
        """Drop the lowest-scoring snapshots beyond the ``keep_best`` budget."""
        entries = self._scan()
        if len(entries) <= self.keep_best:
            return
        ranked = sorted(
            entries,
            key=lambda digest: (
                entries[digest].get("score") is not None,
                entries[digest].get("score", float("-inf")),
            ),
        )
        for digest in ranked[: len(entries) - self.keep_best]:
            for path in (self._snapshot_path(digest), self._meta_path(digest)):
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - already removed by another run
                    pass
            self.evictions += 1

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._scan())

    def __contains__(self, digest: str) -> bool:
        return self._snapshot_path(digest).exists()

    def digests(self) -> List[str]:
        """Digests of every stored snapshot."""
        return list(self._scan())

    def total_bytes(self) -> int:
        """Disk footprint of the stored snapshots."""
        return int(sum(entry.get("bytes", 0.0) for entry in self._scan().values()))

    def stats(self) -> Dict[str, float]:
        """Usage counters plus the store size."""
        return {
            "snapshots": float(len(self)),
            "puts": float(self.puts),
            "replays": float(self.replays),
            "evictions": float(self.evictions),
            "bytes": float(self.total_bytes()),
        }
