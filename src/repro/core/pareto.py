"""Pareto-front bookkeeping for multi-objective search.

The paper's central observation is a *trade-off*: DSC skip connections lower
firing rates but inflate MAC counts, ASC keeps MACs flat but raises firing
rates.  A single scalar objective collapses that trade-off; this module keeps
it explicit.  All objective vectors are **minimisation** vectors (callers flip
the sign of maximised quantities such as accuracy before inserting), matching
the convention of the optimizers in :mod:`repro.core.bayes_opt`.

Three pieces:

* :func:`dominates` — strict Pareto dominance (no worse everywhere, strictly
  better somewhere), the partial order every other definition builds on;
* :class:`ParetoFront` — incremental non-dominated insertion: the retained
  set after any insertion sequence is exactly the non-dominated subset of all
  inserted vectors, independent of insertion order (a dominated insert is
  rejected, a dominating insert evicts the incumbents it dominates);
* hypervolume and crowding: :meth:`ParetoFront.hypervolume` measures the
  region dominated by the front up to a fixed reference point (the standard
  strictly-monotone quality indicator — adding a non-dominated point never
  decreases it), and :meth:`ParetoFront.truncate` bounds the front size by
  NSGA-II crowding distance, always keeping the per-objective extremes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether minimisation vector ``a`` strictly Pareto-dominates ``b``.

    ``a`` dominates ``b`` iff it is no worse in every objective and strictly
    better in at least one.  This is a strict partial order: irreflexive
    (equal vectors do not dominate each other), asymmetric and transitive —
    invariants pinned by the property-based tests.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"objective vectors disagree on shape: {a.shape} vs {b.shape}")
    return bool(np.all(a <= b) and np.any(a < b))


def non_dominated_mask(values: np.ndarray) -> np.ndarray:
    """Boolean mask of the non-dominated rows of ``values`` (n, d).

    Duplicate rows are all marked non-dominated (none strictly dominates the
    other); pairwise O(n^2), which is fine at front sizes.
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        dominated = np.all(values <= values[i], axis=1) & np.any(values < values[i], axis=1)
        if np.any(dominated & mask):
            mask[i] = False
    return mask


@dataclass
class ParetoPoint:
    """One non-dominated point: the minimisation vector plus caller payload."""

    values: np.ndarray
    payload: Optional[Dict] = None

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64).reshape(-1)
        values.flags.writeable = False
        self.values = values


@dataclass
class ParetoFront:
    """Incrementally maintained set of mutually non-dominated points.

    ``capacity`` (optional) bounds the front: every insertion that grows the
    front beyond it triggers a crowding-based :meth:`truncate`.  Capacity
    makes retention insertion-order *dependent* (crowding ties are broken by
    age), so the order-independence guarantee applies to unbounded fronts.
    """

    capacity: Optional[int] = None
    points: List[ParetoPoint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @property
    def num_objectives(self) -> Optional[int]:
        """Dimensionality of the stored vectors (None while empty)."""
        return len(self.points[0].values) if self.points else None

    def values_array(self) -> np.ndarray:
        """All front vectors as an (n, d) array (empty (0, 0) when empty)."""
        if not self.points:
            return np.zeros((0, 0))
        return np.stack([point.values for point in self.points])

    # ------------------------------------------------------------------
    def insert(self, values: Sequence[float], payload: Optional[Dict] = None) -> bool:
        """Offer one minimisation vector; returns whether it joined the front.

        Rejected when an incumbent dominates or equals it; accepted otherwise,
        evicting every incumbent it dominates.  The retained *set of vectors*
        after any insertion sequence is therefore the non-dominated subset of
        everything offered, whatever the order (for unbounded fronts).
        """
        candidate = np.asarray(values, dtype=np.float64).reshape(-1)
        if self.points and len(candidate) != len(self.points[0].values):
            raise ValueError(
                f"vector has {len(candidate)} objectives, front holds {len(self.points[0].values)}"
            )
        survivors: List[ParetoPoint] = []
        for point in self.points:
            if dominates(point.values, candidate) or np.array_equal(point.values, candidate):
                return False
            if not dominates(candidate, point.values):
                survivors.append(point)
        survivors.append(ParetoPoint(values=candidate, payload=payload))
        self.points = survivors
        if self.capacity is not None and len(self.points) > self.capacity:
            self.truncate(self.capacity)
        return True

    # ------------------------------------------------------------------
    # hypervolume
    # ------------------------------------------------------------------
    def hypervolume(self, reference: Sequence[float]) -> float:
        """Volume dominated by the front, bounded above by ``reference``.

        ``reference`` must be a (pessimistic) upper bound; points not strictly
        below it in every coordinate contribute nothing (they are clipped
        out), so with a *fixed* reference the indicator is non-decreasing
        under insertion — the property the search loop's per-iteration
        hypervolume trace relies on.
        """
        reference = np.asarray(reference, dtype=np.float64).reshape(-1)
        values = self.values_array()
        if values.size == 0:
            return 0.0
        if values.shape[1] != len(reference):
            raise ValueError(
                f"reference has {len(reference)} objectives, front holds {values.shape[1]}"
            )
        inside = values[np.all(values < reference, axis=1)]
        return _hypervolume(inside, reference)

    # ------------------------------------------------------------------
    # crowding-based truncation
    # ------------------------------------------------------------------
    def crowding_distances(self) -> np.ndarray:
        """NSGA-II crowding distance of every front point.

        Per objective, points are sorted and each interior point accumulates
        its normalised neighbour gap; the per-objective extremes get
        ``inf`` so truncation always keeps the boundary of the front.
        """
        values = self.values_array()
        n = values.shape[0]
        distances = np.zeros(n)
        if n <= 2:
            return np.full(n, np.inf)
        for j in range(values.shape[1]):
            order = np.argsort(values[:, j], kind="stable")
            spread = values[order[-1], j] - values[order[0], j]
            distances[order[0]] = distances[order[-1]] = np.inf
            if spread <= 0:
                continue
            gaps = (values[order[2:], j] - values[order[:-2], j]) / spread
            distances[order[1:-1]] += gaps
        return distances

    def truncate(self, capacity: int) -> List[ParetoPoint]:
        """Drop the most crowded points until ``len(self) <= capacity``.

        Returns the removed points (most crowded first).  Distances are
        recomputed after each removal, and ties prefer removing the *newest*
        point so long-standing trade-offs are kept.
        """
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        removed: List[ParetoPoint] = []
        while len(self.points) > capacity:
            distances = self.crowding_distances()
            most_crowded = int(np.flatnonzero(distances == distances.min())[-1])
            removed.append(self.points.pop(most_crowded))
        return removed


def _hypervolume(values: np.ndarray, reference: np.ndarray) -> float:
    """Exact hypervolume of minimisation ``values`` all strictly below ``reference``.

    Dimension-recursive slicing: 1-D and 2-D are closed-form sweeps; for
    d >= 3 the volume is integrated along the last objective — between two
    consecutive observed coordinates the dominated (d-1)-dimensional
    cross-section is constant, so the volume is a sum of slab heights times
    recursively computed cross-sections.  O(n^2) per dimension shaved off,
    which is comfortably fast at search-front sizes.
    """
    if values.shape[0] == 0:
        return 0.0
    values = values[non_dominated_mask(values)]
    d = values.shape[1]
    if d == 1:
        return float(reference[0] - values[:, 0].min())
    if d == 2:
        # after non-dominated filtering, ascending first objective implies
        # strictly descending second — one sweep accumulates the staircase
        order = np.argsort(values[:, 0], kind="stable")
        total = 0.0
        upper = float(reference[1])
        for x, y in values[order]:
            total += (reference[0] - x) * (upper - y)
            upper = float(y)
        return float(total)
    total = 0.0
    order = np.argsort(values[:, -1], kind="stable")
    sorted_values = values[order]
    cuts = [float(v) for v in sorted_values[:, -1]] + [float(reference[-1])]
    for i in range(len(sorted_values)):
        height = cuts[i + 1] - cuts[i]
        if height <= 0:
            continue
        slab = sorted_values[: i + 1, :-1]
        total += height * _hypervolume(slab, reference[:-1])
    return float(total)
