"""Evaluation cache: memoisation of architecture evaluations.

Search methods occasionally revisit an architecture (e.g. random restarts,
ablation sweeps that share configurations, the incumbent being re-evaluated at
higher fidelity).  Re-training it would waste the dominant cost of the whole
pipeline, so :class:`CachedObjective` wraps any
:class:`~repro.core.objectives.Objective` with an exact-match cache keyed by
the architecture encoding.  The cache also doubles as a tabular record of the
search (a miniature NAS-bench for the explored region) that can be exported
and re-loaded across runs.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.core.objectives import EvaluationResult, Objective
from repro.core.search_space import ArchitectureSpec, SearchSpace


def spec_key(spec: ArchitectureSpec) -> str:
    """Stable string key of an architecture (its flat integer encoding)."""
    return ",".join(str(int(v)) for v in spec.encode())


class CachedObjective(Objective):
    """Exact-match memoisation wrapper around another objective."""

    def __init__(self, objective: Objective | Callable[[ArchitectureSpec], EvaluationResult]) -> None:
        self.objective = objective
        self._cache: Dict[str, EvaluationResult] = {}
        self.hits = 0
        self.misses = 0

    def __call__(self, spec: ArchitectureSpec) -> EvaluationResult:
        key = spec_key(spec)
        if key in self._cache:
            self.hits += 1
            return self._cache[key]
        self.misses += 1
        result = self.objective(spec)
        self._cache[key] = result
        return result

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, spec: ArchitectureSpec) -> bool:
        return spec_key(spec) in self._cache

    @property
    def hit_rate(self) -> float:
        """Fraction of calls answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def results(self) -> List[EvaluationResult]:
        """All cached evaluation results."""
        return list(self._cache.values())

    def best(self) -> EvaluationResult:
        """Cached result with the smallest objective value."""
        if not self._cache:
            raise ValueError("cache is empty")
        return min(self._cache.values(), key=lambda result: result.objective_value)

    # ------------------------------------------------------------------
    # persistence: a miniature tabular benchmark of the explored region
    # ------------------------------------------------------------------
    def to_table(self) -> List[Dict[str, object]]:
        """Export the cache as a list of JSON-serialisable rows."""
        rows = []
        for key, result in self._cache.items():
            rows.append(
                {
                    "encoding": [int(v) for v in key.split(",")],
                    "objective_value": result.objective_value,
                    "accuracy": result.accuracy,
                    "firing_rate": result.firing_rate,
                    "macs": result.macs,
                    "num_skips": result.extra.get("num_skips", float(result.spec.total_skips())),
                }
            )
        return rows

    def save(self, path: Union[str, Path]) -> None:
        """Write the cache table to a JSON file."""
        Path(path).write_text(json.dumps(self.to_table(), indent=2))

    @classmethod
    def load_table(
        cls,
        path: Union[str, Path],
        search_space: SearchSpace,
        objective: Optional[Objective] = None,
    ) -> "CachedObjective":
        """Rebuild a cache from a saved table.

        ``objective`` is used only for cache misses; pass a raising stub to get
        a purely tabular benchmark of the previously explored architectures.
        """
        if objective is None:
            def objective(_spec):  # type: ignore[misc]
                raise KeyError("architecture not present in the loaded evaluation table")

        cache = cls(objective)
        rows = json.loads(Path(path).read_text())
        for row in rows:
            spec = search_space.decode(np.asarray(row["encoding"], dtype=np.int64))
            result = EvaluationResult(
                spec=spec,
                objective_value=row["objective_value"],
                accuracy=row["accuracy"],
                firing_rate=row.get("firing_rate", 0.0),
                macs=row.get("macs", 0.0),
            )
            cache._cache[spec_key(spec)] = result
        return cache
