"""Evaluation cache: memoisation and persistence of architecture evaluations.

Search methods occasionally revisit an architecture (e.g. random restarts,
ablation sweeps that share configurations, the incumbent being re-evaluated at
higher fidelity).  Re-training it would waste the dominant cost of the whole
pipeline, so :class:`CachedObjective` wraps any
:class:`~repro.core.objectives.Objective` with an exact-match cache keyed by
the architecture encoding.  The cache also doubles as a tabular record of the
search (a miniature NAS-bench for the explored region) that can be exported
and re-loaded across runs.

:class:`PersistentEvaluationStore` is the disk-backed tier: an append-only
JSONL file keyed by :func:`spec_key`.  Every record is written with a single
``O_APPEND`` write (atomic on POSIX for writes well under ``PIPE_BUF``-scale
sizes), so concurrent runs — BO, random search, local search, multi-fidelity —
can safely share one store, and a torn trailing line from a crashed run is
skipped on load instead of poisoning the file.  Plug a store into
:class:`CachedObjective` (or pass ``--cache-dir`` to the CLI) and evaluations
survive the process: a later run hits the store instead of re-training.
:class:`ShardedEvaluationStore` extends the format for many concurrent
writers: each writer appends to its own JSONL shard under ``<name>.shards/``
and reads a merged view of every shard, so parallel search processes and
worker-pool children share one cache directory without write contention.

The store is no longer only a batch-run artefact: it is the backing table of
the long-running HTTP serving layer (:mod:`repro.server`).  ``repro serve``
holds one read view per store open across requests — :meth:`refresh` reloads
it only when a backing file actually changed — and answers ``/pareto`` and
``/recommend`` queries instantly from the accumulated rows, while search jobs
keep appending to their own shards of the same cache directory.  Long-lived
directories accumulate one shard per writer; ``repro cache compact`` folds
them back into the base files (see :meth:`ShardedEvaluationStore.compact`).

The on-disk formats (rows, fingerprinted filenames, snapshots, shards) are a
stable contract documented in ``docs/caching.md``; the serving layer is
documented in ``docs/server.md``.

Pair the store with a :class:`~repro.core.snapshots.WeightSnapshotStore`
(:func:`snapshot_store_for`) and hits also restore the *weight-sharing* state:
each row references the content-addressed snapshot of the candidate's trained
weights, replayed into the shared
:class:`~repro.core.weight_sharing.WeightStore` on a hit so cached runs stay
as warm as uncached ones.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
import uuid
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.core.objectives import EvaluationResult, Objective, resolve_weight_context
from repro.core.search_space import ArchitectureSpec, SearchSpace
from repro.core.snapshots import DEFAULT_KEEP_BEST, WeightSnapshotStore
from repro.core.weight_sharing import WeightUpdate
from repro.trace import span


def spec_key(spec: ArchitectureSpec) -> str:
    """Stable string key of an architecture (its flat integer encoding)."""
    return ",".join(str(int(v)) for v in spec.encode())


# ---------------------------------------------------------------------------
# Process-wide store lookup tallies.
#
# Each store instance keeps its own ``hits``/``misses`` counters, but the
# serving layer's ``/metrics`` endpoint needs one monotone view per process —
# including lookups made by stores the server never sees (e.g. a job's
# sharded store, or worker-pool children whose deltas are merged back by the
# async executor).  Mirrors the sparse-routing aggregate in
# :mod:`repro.tensor.sparse`.
# ---------------------------------------------------------------------------
_STORE_AGGREGATE_LOCK = threading.Lock()
_STORE_AGGREGATE: Dict[str, int] = {"hits": 0, "misses": 0}


def store_counters() -> Dict[str, int]:
    """Snapshot of this process's cumulative store hit/miss tallies."""
    with _STORE_AGGREGATE_LOCK:
        return dict(_STORE_AGGREGATE)


def merge_store_counters(delta: Dict[str, int]) -> None:
    """Fold a worker process's store-counter delta into this process's tally."""
    with _STORE_AGGREGATE_LOCK:
        for key in _STORE_AGGREGATE:
            _STORE_AGGREGATE[key] += int(delta.get(key, 0))


def _bump_store(key: str) -> None:
    with _STORE_AGGREGATE_LOCK:
        _STORE_AGGREGATE[key] += 1


#: (base path, pid) -> this process's shard writer id; see
#: :meth:`ShardedEvaluationStore._process_writer_id`
_PROCESS_WRITER_IDS: Dict[tuple, str] = {}


def config_fingerprint(**config) -> str:
    """Short, stable fingerprint of evaluation-relevant configuration.

    Cached objective values are only comparable between runs that evaluate
    candidates the same way (same fine-tune budget, seed, penalties, ...).
    Embedding this fingerprint in a store's filename keeps incompatible
    configurations from silently sharing evaluations.
    """
    payload = json.dumps(config, sort_keys=True, default=str)
    return hashlib.md5(payload.encode("utf-8")).hexdigest()[:10]


def dataset_fingerprint_fields(splits) -> Dict[str, object]:
    """Fingerprint fields identifying the data an objective evaluates on.

    Two runs whose datasets differ in size, resolution or class count must
    not share cached evaluations even when every training hyperparameter
    matches — include these fields in :func:`config_fingerprint` alongside
    the training configuration.
    """
    return {
        "dataset": splits.name,
        "train_size": len(splits.train),
        "val_size": len(splits.val),
        "sample_shape": [int(v) for v in splits.sample_shape],
        "num_classes": int(splits.num_classes),
    }


def evaluation_store_for(cache_dir, name_parts, sharded: bool = False, **config) -> "PersistentEvaluationStore":
    """Open the store for one (experiment, configuration) combination.

    The filename is ``<name_parts joined by '-'>-<fingerprint>.jsonl`` under
    ``cache_dir`` — the single place that defines what makes two runs'
    evaluations comparable.  All experiment wiring (adapter, figure3) goes
    through here so fingerprint coverage cannot drift between call sites.

    With ``sharded=True`` the returned store is a
    :class:`ShardedEvaluationStore` rooted at the same fingerprinted name:
    this process appends to its own shard under ``<name>.shards/`` and reads
    a merged view of every writer's shard (plus any legacy single file), so
    several concurrent search processes can share the cache directory
    without funnelling their appends through one file.
    """
    tag = config_fingerprint(**config)
    filename = "-".join([str(part) for part in name_parts] + [tag]) + ".jsonl"
    store_cls = ShardedEvaluationStore if sharded else PersistentEvaluationStore
    return store_cls(Path(cache_dir) / filename)


def snapshot_store_for(
    store: PersistentEvaluationStore, keep_best: int = DEFAULT_KEEP_BEST
) -> WeightSnapshotStore:
    """Open the weight-snapshot directory paired with an evaluation store.

    The directory sits next to the store's ``.jsonl`` file and inherits its
    name — including the configuration fingerprint — so snapshots are scoped
    exactly like the evaluation rows that reference them.  For a
    :class:`ShardedEvaluationStore` the directory derives from the shared
    *base* name (not the per-writer shard), so every writer resolves the
    same snapshot directory and a row written by one process replays in any
    other; the snapshot store is safe for concurrent writers by design
    (content addressing, atomic replace, per-digest sidecars).
    """
    base = getattr(store, "base_path", store.path)
    return WeightSnapshotStore(base.with_suffix(".weights"), keep_best=keep_best)


def persist_weight_snapshot(
    snapshots: Optional[WeightSnapshotStore], result: EvaluationResult, row: Dict[str, object]
) -> None:
    """Write the result's trained state to ``snapshots`` and reference it from ``row``.

    Shared by every store writer (:class:`CachedObjective`,
    :class:`~repro.core.multi_fidelity.MultiFidelityObjective`), so the row
    reference format cannot drift between them.  No-op without a snapshot
    store or a weight payload.
    """
    if snapshots is None or result.weight_update is None:
        return
    digest = snapshots.put(result.weight_update.state, score=result.weight_update.score)
    result.weight_update.snapshot = digest
    row["weights"] = {"snapshot": digest, "score": result.weight_update.score}


def replay_weight_snapshot(
    snapshots: Optional[WeightSnapshotStore],
    row: Dict[str, object],
    result: EvaluationResult,
    base,
    weight_store,
) -> None:
    """Rebuild the weight payload referenced by a stored row.

    Mirrors a live evaluation: the payload is attached to ``result`` for the
    orchestrator, and applied to ``weight_store`` directly when ``base`` is
    not operating in deferred mode (i.e. when a live evaluation would also
    have applied it locally).  A missing or evicted snapshot replays nothing
    — the cached value is still valid, the run is merely as cold as it was
    before snapshots existed.
    """
    if snapshots is None:
        return
    reference = row.get("weights")
    if not isinstance(reference, dict) or "snapshot" not in reference:
        return
    state = snapshots.get(str(reference["snapshot"]))
    if state is None:
        return
    score = reference.get("score")
    result.weight_update = WeightUpdate(
        state=state,
        score=float(score) if score is not None else None,
        snapshot=str(reference["snapshot"]),
    )
    if (
        base is not None
        and weight_store is not None
        and getattr(base, "update_store", True)
        and not getattr(base, "defer_updates", False)
    ):
        result.weight_update.apply(weight_store)


def result_to_row(result: EvaluationResult) -> Dict[str, object]:
    """JSON-serialisable row of the quantities a search needs back.

    The optional ``metrics`` field carries the per-objective measurement dict
    (``val_accuracy``, ``energy_nj``, ``latency_steps``, ...) so a store hit
    replays *every* objective of a multi-objective search; rows written
    before the field existed simply replay with empty metrics.
    """
    row = {
        "encoding": [int(v) for v in result.spec.encode()],
        "objective_value": float(result.objective_value),
        "accuracy": float(result.accuracy),
        "firing_rate": float(result.firing_rate),
        "macs": float(result.macs),
        "extra": {str(k): float(v) for k, v in result.extra.items()},
    }
    if result.metrics:
        row["metrics"] = {str(k): float(v) for k, v in result.metrics.items()}
    return row


def row_metrics(row: Dict[str, object]) -> Dict[str, float]:
    """The per-objective metrics dict of a stored row, with legacy fallbacks.

    Rows written since the multi-objective subsystem carry an explicit
    ``metrics`` field; older rows still recorded accuracy, firing rate and
    MACs as top-level columns.  Consumers that only need measurements — the
    serving layer's ``/pareto`` and ``/recommend`` endpoints, offline front
    extraction — read through this helper so both generations of rows answer
    queries.
    """
    metrics = {str(k): float(v) for k, v in (row.get("metrics") or {}).items()}
    fallbacks = {
        "val_accuracy": row.get("accuracy"),
        "firing_rate": row.get("firing_rate"),
        "macs": row.get("macs"),
    }
    for key, value in fallbacks.items():
        if key not in metrics and value is not None:
            metrics[key] = float(value)
    return metrics


def row_to_result(row: Dict[str, object], spec: ArchitectureSpec) -> EvaluationResult:
    """Rebuild an :class:`EvaluationResult` from a stored row.

    The training history is not persisted — a cached hit stands in for the
    *outcome* of an evaluation, not its trajectory.
    """
    return EvaluationResult(
        spec=spec,
        objective_value=float(row["objective_value"]),
        accuracy=float(row.get("accuracy", 0.0)),
        firing_rate=float(row.get("firing_rate", 0.0)),
        macs=float(row.get("macs", 0.0)),
        extra=dict(row.get("extra", {})),
        metrics=dict(row.get("metrics", {})),
    )


class PersistentEvaluationStore:
    """Append-only JSONL store of evaluation results, keyed by :func:`spec_key`.

    Parameters
    ----------
    path:
        Either a ``.jsonl`` file or a directory (the store then lives at
        ``<path>/evaluations.jsonl``).  Parent directories are created.

    The whole file is loaded into memory on construction (rows are tiny); a
    duplicate key keeps the *latest* row, and a torn/corrupt line — possible
    only as the trailing line of a crashed writer — is skipped.  ``hits`` /
    ``misses`` count :meth:`get` lookups, mirroring :class:`CachedObjective`.
    """

    FILENAME = "evaluations.jsonl"

    def __init__(self, path: Union[str, Path]) -> None:
        path = Path(path)
        if path.suffix != ".jsonl":
            path = path / self.FILENAME
        path.parent.mkdir(parents=True, exist_ok=True)
        self.path = path
        self._rows: Dict[str, Dict[str, object]] = {}
        self.hits = 0
        self.misses = 0
        self.skipped_lines = 0
        self.reload()

    # ------------------------------------------------------------------
    def _source_paths(self) -> List[Path]:
        """Files merged into the read view, oldest layer first."""
        return [self.path] if self.path.exists() else []

    def _sources_signature(self) -> tuple:
        """(path, mtime_ns, size) of every source file — the staleness check."""
        signature = []
        for path in self._source_paths():
            try:
                stat = path.stat()
            except OSError:
                continue
            signature.append((str(path), stat.st_mtime_ns, stat.st_size))
        return tuple(signature)

    def refresh(self) -> bool:
        """Reload only if a backing file changed; returns whether it did.

        A long-running reader (the HTTP serving layer answers ``/pareto`` and
        ``/recommend`` from one store instance across requests) must see rows
        appended by concurrent search processes without re-parsing every
        shard per request.  The signature is taken *before* each read, so an
        append racing the read at worst triggers one redundant reload on the
        next call — never a stale view that stays stale.
        """
        if self._sources_signature() == self._loaded_signature:
            return False
        self.reload()
        return True

    def _ingest(self, text: str) -> None:
        """Parse one file's JSONL rows into the in-memory view (latest wins)."""
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                key = row["key"]
            except (json.JSONDecodeError, KeyError, TypeError):
                self.skipped_lines += 1
                continue
            self._rows[key] = row

    def reload(self) -> int:
        """(Re)read the backing file(s); returns the number of rows loaded.

        A source file vanishing mid-read means a concurrent compaction pass
        folded it into the base file (shards are unlinked only *after* the
        merged base was atomically replaced), so the whole read is retried:
        the next pass sees the post-compaction layout and loses no rows.
        """
        for attempt in range(3):
            self._rows.clear()
            self.skipped_lines = 0
            self._needs_newline = False
            vanished = False
            # recorded before reading: rows appended mid-read change the
            # on-disk signature, so the next refresh() reloads rather than
            # trusting a view that may have missed them
            self._loaded_signature = self._sources_signature()
            for path in self._source_paths():
                try:
                    text = path.read_text()
                except OSError:
                    vanished = True
                    continue
                if path == self.path:
                    # a crashed writer can leave a torn line without a
                    # newline; remember to start the next append on a fresh
                    # line so it stays parseable
                    self._needs_newline = bool(text) and not text.endswith("\n")
                self._ingest(text)
            if not vanished or attempt == 2:
                break
        return len(self._rows)

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """Stored row for ``key`` or ``None``; updates the hit/miss counters."""
        row = self._rows.get(key)
        if row is None:
            self.misses += 1
            _bump_store("misses")
        else:
            self.hits += 1
            _bump_store("hits")
        return row

    def put(self, key: str, row: Dict[str, object]) -> None:
        """Persist one row under ``key`` with a single atomic append."""
        payload = {"key": key, **row}
        line = json.dumps(payload, separators=(",", ":")) + "\n"
        if self._needs_newline:
            line = "\n" + line
            self._needs_newline = False
        try:
            fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        except FileNotFoundError:
            # the parent directory can disappear under a live store (e.g. a
            # compaction pass removed an emptied shard directory); recreate it
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            # loop on short writes: a partial os.write would otherwise drop
            # the row's tail and concatenate the next writer's line onto it
            view = memoryview(line.encode("utf-8"))
            while view:
                view = view[os.write(fd, view) :]
        finally:
            os.close(fd)
        self._rows[key] = payload

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: str) -> bool:
        return key in self._rows

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the store."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def keys(self) -> List[str]:
        """All stored keys."""
        return list(self._rows)

    def rows(self) -> List[Dict[str, object]]:
        """All stored rows."""
        return list(self._rows.values())

    def stats(self) -> Dict[str, float]:
        """Hit/miss statistics plus the store size."""
        return {
            "entries": float(len(self._rows)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": self.hit_rate,
            "skipped_lines": float(self.skipped_lines),
        }


class ShardedEvaluationStore(PersistentEvaluationStore):
    """Per-writer JSONL shards behind one merged read view.

    The single-file store is already safe for concurrent *appends* (each row
    is one ``O_APPEND`` write), but every process still funnels its writes
    into one file.  The sharded layout removes even that contention and makes
    ownership explicit: each writer appends only to its **own** shard under
    ``<base>.shards/``, while :meth:`reload` merges the legacy single file
    (if present) plus every shard into one read view — so any number of
    search processes (or worker-pool children) can share a cache directory
    and see each other's rows after a reload.

    Layout, given a base path ``evals.jsonl``::

        evals.jsonl                       # optional legacy single-file layer
        evals.shards/<pid>-<uuid>.jsonl   # one shard per writer

    Duplicate keys resolve deterministically: the legacy file is the oldest
    layer, shards are merged in sorted filename order, and within a file
    later lines win.  Rows for one key are interchangeable anyway — the
    configuration fingerprint embedded in the base filename guarantees every
    writer evaluated candidates the same way.

    Instances are picklable; an unpickled copy (e.g. the cached objective
    shipped to a worker process) writes to the receiving **process's own**
    shard — one shard per (process, base path), however many times the
    objective is re-pickled — so worker children never interleave with the
    parent's file and a long search does not scatter one shard per task.
    """

    SHARD_SUFFIX = ".shards"

    def __init__(self, path: Union[str, Path], writer_id: Optional[str] = None) -> None:
        base = Path(path)
        if base.suffix != ".jsonl":
            base = base / self.FILENAME
        self.base_path = base
        self.writer_id = writer_id if writer_id is not None else self._process_writer_id(base)
        super().__init__(self.shard_dir / f"{self.writer_id}.jsonl")

    @classmethod
    def _process_writer_id(cls, base_path: Path) -> str:
        """This process's stable writer id for ``base_path``.

        Cached per (base path, pid): every store instance this process opens
        on the same base — including copies unpickled per worker task —
        appends to one shard.  The pid in the cache key means a forked child
        never inherits its parent's id, and the uuid component keeps ids
        unique under pid reuse across machines/sessions.
        """
        key = (str(base_path), os.getpid())
        writer_id = _PROCESS_WRITER_IDS.get(key)
        if writer_id is None:
            writer_id = f"{os.getpid()}-{uuid.uuid4().hex[:8]}"
            _PROCESS_WRITER_IDS[key] = writer_id
        return writer_id

    @property
    def shard_dir(self) -> Path:
        """Directory holding the per-writer shard files."""
        return self.base_path.with_suffix(self.SHARD_SUFFIX)

    def _source_paths(self) -> List[Path]:
        legacy = [self.base_path] if self.base_path.exists() else []
        shards = sorted(self.shard_dir.glob("*.jsonl")) if self.shard_dir.exists() else []
        return legacy + shards

    def compact(self) -> Dict[str, int]:
        """Merge every shard (and the legacy file) into the base JSONL.

        Long-lived cache directories accumulate one shard per writer process;
        each reload then re-parses every shard.  Compaction folds the merged
        read view back into the single base file — after which fresh stores
        read one file again — while keeping the duplicate-key resolution of
        :meth:`reload` (the compacted file holds exactly the merged view).

        The pass is atomic and lossless under concurrent writers: the merged
        view is written to a temporary file and ``os.replace``d over the base
        path.  Each merged shard is then atomically *renamed* aside before
        any deletion decision — a writer's next append simply recreates its
        shard path as a fresh file, which survives untouched — and the
        renamed file is deleted only if its size still matches the size
        observed before it was read; if rows landed in it meanwhile, it is
        renamed back into the shard directory under a carry name and stays a
        live layer until the next compaction.  (The only remaining window is
        an append whose ``open()`` resolved the old path right as the rename
        happened and whose write landed after the post-rename size check — a
        lost row there costs one re-evaluation, never a corrupted view.)

        Returns a summary dict: ``rows`` written to the base file,
        ``shards_merged`` (deleted) and ``shards_kept`` (still live).
        """
        shard_sizes: Dict[Path, int] = {}
        for shard in sorted(self.shard_dir.glob("*.jsonl")) if self.shard_dir.exists() else []:
            try:
                shard_sizes[shard] = shard.stat().st_size
            except OSError:  # pragma: no cover - concurrently removed shard
                continue
        self.reload()
        tmp = self.base_path.with_name(self.base_path.name + f".compact-{self.writer_id}.tmp")
        with open(tmp, "w") as handle:
            for key in sorted(self._rows):
                handle.write(json.dumps(self._rows[key], separators=(",", ":")) + "\n")
        os.replace(tmp, self.base_path)
        merged = kept = 0
        for shard, size_before in shard_sizes.items():
            tombstone = shard.with_name(shard.stem + f".compact-{uuid.uuid4().hex[:8]}.tomb")
            try:
                os.replace(shard, tombstone)
                size_now = tombstone.stat().st_size
            except OSError:  # pragma: no cover - concurrently removed shard
                continue
            if size_now == size_before:
                tombstone.unlink()
                merged += 1
            else:
                # rows landed after the merge snapshot: keep them as a carry
                # shard (the original path may already be a writer's fresh
                # file, so the carry gets its own name)
                os.replace(tombstone, shard.with_name(shard.stem + "-carry.jsonl"))
                kept += 1
        try:
            self.shard_dir.rmdir()
        except OSError:
            pass  # non-empty (kept shards) or already gone
        # this process's own shard may have been folded in; the next append
        # starts a fresh shard file, so the newline bookkeeping resets
        self._needs_newline = False
        return {"rows": len(self._rows), "shards_merged": merged, "shards_kept": kept}

    def __getstate__(self):
        state = self.__dict__.copy()
        # drop the writer identity: the receiving process must not append to
        # this process's shard
        del state["writer_id"], state["path"]
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self.writer_id = self._process_writer_id(self.base_path)
        self.path = self.shard_dir / f"{self.writer_id}.jsonl"
        self._needs_newline = False


class CachedObjective(Objective):
    """Exact-match memoisation wrapper around another objective.

    With a :class:`PersistentEvaluationStore` attached, misses in the
    in-memory tier fall through to the store before the wrapped objective is
    evaluated, and fresh evaluations are appended to the store — so the cache
    outlives the process and is shared by every search strategy pointed at the
    same path.

    With a :class:`~repro.core.snapshots.WeightSnapshotStore` also attached,
    the trained state each evaluation carries (``result.weight_update``) is
    persisted as a content-addressed snapshot and referenced from the row; a
    later store hit then *replays* the snapshot — restoring the payload on the
    result and, unless the wrapped objective defers updates to its
    orchestrator, applying it to the shared weight store — so a fully- or
    partially-cached run accumulates the same shared weights as the run that
    originally paid for the evaluations.
    """

    def __init__(
        self,
        objective: Objective | Callable[[ArchitectureSpec], EvaluationResult],
        store: Optional[PersistentEvaluationStore] = None,
        snapshots: Optional[WeightSnapshotStore] = None,
    ) -> None:
        self.objective = objective
        self.store = store
        self.snapshots = snapshots
        self._cache: Dict[str, EvaluationResult] = {}
        self.hits = 0
        self.misses = 0

    def _remember(self, key: str, result: EvaluationResult) -> None:
        """Cache the result without its weight payload.

        By the time a result is memoised its update has already reached the
        store (applied locally or merged by the orchestrator), so keeping the
        full state dict would only grow resident memory per candidate — and,
        with ``workers > 1``, be re-pickled into every later batch's worker
        dispatch.  An in-memory hit therefore (as before snapshots existed)
        returns the outcome only.
        """
        if result.weight_update is not None:
            result = dataclasses.replace(result, weight_update=None)
        self._cache[key] = result

    def __call__(self, spec: ArchitectureSpec) -> EvaluationResult:
        key = spec_key(spec)
        with span("cache.lookup") as lookup_span:
            if key in self._cache:
                self.hits += 1
                if lookup_span:
                    lookup_span.set(hit=True, tier="memory")
                return self._cache[key]
            if self.store is not None:
                row = self.store.get(key)
                if row is not None:
                    result = row_to_result(row, spec)
                    base, weight_store = resolve_weight_context(self.objective)
                    with span("cache.replay_snapshot"):
                        replay_weight_snapshot(self.snapshots, row, result, base, weight_store)
                    self._remember(key, result)
                    self.hits += 1
                    if lookup_span:
                        lookup_span.set(hit=True, tier="store")
                    return result
            self.misses += 1
            if lookup_span:
                lookup_span.set(hit=False)
        result = self.objective(spec)
        self._remember(key, result)
        if self.store is not None:
            row = result_to_row(result)
            persist_weight_snapshot(self.snapshots, result, row)
            self.store.put(key, row)
        return result

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, spec: ArchitectureSpec) -> bool:
        return spec_key(spec) in self._cache

    @property
    def hit_rate(self) -> float:
        """Fraction of calls answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def results(self) -> List[EvaluationResult]:
        """All cached evaluation results."""
        return list(self._cache.values())

    def best(self) -> EvaluationResult:
        """Cached result with the smallest objective value."""
        if not self._cache:
            raise ValueError("cache is empty")
        return min(self._cache.values(), key=lambda result: result.objective_value)

    # ------------------------------------------------------------------
    # persistence: a miniature tabular benchmark of the explored region
    # ------------------------------------------------------------------
    def to_table(self) -> List[Dict[str, object]]:
        """Export the cache as a list of JSON-serialisable rows.

        Rows use the same serialisation as :class:`PersistentEvaluationStore`
        (:func:`result_to_row`) plus a ``num_skips`` convenience column kept
        for older saved tables.
        """
        rows = []
        for result in self._cache.values():
            row = result_to_row(result)
            row["num_skips"] = row["extra"].get("num_skips", float(result.spec.total_skips()))
            rows.append(row)
        return rows

    def save(self, path: Union[str, Path]) -> None:
        """Write the cache table to a JSON file."""
        Path(path).write_text(json.dumps(self.to_table(), indent=2))

    @classmethod
    def load_table(
        cls,
        path: Union[str, Path],
        search_space: SearchSpace,
        objective: Optional[Objective] = None,
    ) -> "CachedObjective":
        """Rebuild a cache from a saved table.

        ``objective`` is used only for cache misses; pass a raising stub to get
        a purely tabular benchmark of the previously explored architectures.
        """
        if objective is None:
            def objective(_spec):  # type: ignore[misc]
                raise KeyError("architecture not present in the loaded evaluation table")

        cache = cls(objective)
        rows = json.loads(Path(path).read_text())
        for row in rows:
            spec = search_space.decode(np.asarray(row["encoding"], dtype=np.int64))
            cache._cache[spec_key(spec)] = row_to_result(row, spec)
        return cache
