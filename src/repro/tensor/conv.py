"""Differentiable 2-D convolution and pooling built on im2col.

These are the hot paths of every experiment in the paper (all three adapted
architectures are convolutional, and the SNN unrolls them over time), so the
implementation is fully vectorised:

* the im2col "lowering" is produced with :func:`numpy.lib.stride_tricks.as_strided`
  so no data is copied to build the patch view;
* the contraction between patches and filters is a single ``einsum`` call that
  also handles grouped convolution (needed for the MobileNetV2 depthwise
  blocks) without a Python loop over groups;
* the backward col2im accumulation loops only over the *kernel* positions
  (e.g. 9 iterations for a 3x3 kernel), never over batch or spatial positions.

When no gradient will ever be needed — under
:func:`~repro.tensor.tensor.no_grad`, or when neither input requires grad —
the convolution dispatches to a **graph-free inference kernel** instead: the
grouped im2col view is copied once into a per-thread workspace column matrix
(:mod:`repro.tensor.workspace`) and contracted with a single batched GEMM
(``np.matmul``).  The GEMM reduces over the same ``(channel, kh, kw)`` axis
order as the einsum path, so the two paths produce bit-identical outputs
(pinned by ``tests/test_inference_fastpath.py``) while the inference kernel
avoids the einsum dispatch overhead, the per-call padded-buffer allocation
and all graph bookkeeping — the im2col scratch is reused across the time
steps of an SNN simulation instead of being reallocated per step.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.tensor.sparse import conv_dispatch, sparse_conv2d
from repro.tensor.tensor import Tensor, ensure_tensor, graph_free, is_grad_enabled
from repro.trace import ops_span
from repro.tensor.workspace import workspace

IntOrPair = Union[int, Tuple[int, int]]


def _pair(value: IntOrPair) -> Tuple[int, int]:
    """Normalise an int-or-pair argument to a pair."""
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def conv_output_shape(
    height: int, width: int, kernel_size: IntOrPair, stride: IntOrPair = 1, padding: IntOrPair = 0
) -> Tuple[int, int]:
    """Return the spatial output shape of a conv/pool with the given geometry."""
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    out_h = (height + 2 * ph - kh) // sh + 1
    out_w = (width + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"conv geometry produces empty output: input {height}x{width}, "
            f"kernel {kh}x{kw}, stride {sh}x{sw}, padding {ph}x{pw}"
        )
    return out_h, out_w


def _im2col_view(padded: np.ndarray, kh: int, kw: int, sh: int, sw: int, out_h: int, out_w: int) -> np.ndarray:
    """Return a (N, C, KH, KW, OH, OW) strided view of the padded input."""
    n, c, _, _ = padded.shape
    stride_n, stride_c, stride_h, stride_w = padded.strides
    shape = (n, c, kh, kw, out_h, out_w)
    strides = (stride_n, stride_c, stride_h, stride_w, stride_h * sh, stride_w * sw)
    return as_strided(padded, shape=shape, strides=strides, writeable=False)


def _col2im(
    col_grad: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    sh: int,
    sw: int,
    ph: int,
    pw: int,
) -> np.ndarray:
    """Scatter-add a (N, C, KH, KW, OH, OW) gradient back onto the input."""
    n, c, h, w = input_shape
    out_h = col_grad.shape[4]
    out_w = col_grad.shape[5]
    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=col_grad.dtype)
    for i in range(kh):
        i_end = i + sh * out_h
        for j in range(kw):
            j_end = j + sw * out_w
            padded[:, :, i:i_end:sh, j:j_end:sw] += col_grad[:, :, i, j]
    if ph == 0 and pw == 0:
        return padded
    return padded[:, :, ph : ph + h, pw : pw + w]


def _padded_workspace(
    x: np.ndarray, ph: int, pw: int, key: str, fill: float = 0.0
) -> np.ndarray:
    """Copy ``x`` into a pooled padded buffer whose border holds ``fill``.

    The pool key is qualified by the full geometry, so every distinct padded
    layer of a model owns its buffer: after a layer's first call, its border
    cells still hold ``fill`` (only the interior is ever overwritten) and the
    per-step cost is the interior copy alone — even when many layers with
    different geometries interleave within one simulation step.
    """
    n, c, h, w = x.shape
    signature = (n, c, h, w, ph, pw, fill)
    padded, matched = workspace(
        f"{key}:{signature}", (n, c, h + 2 * ph, w + 2 * pw), x.dtype, signature=signature
    )
    if not matched:
        padded[...] = fill
    padded[:, :, ph : ph + h, pw : pw + w] = x
    return padded


def _conv2d_infer(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    groups: int,
    sh: int,
    sw: int,
    ph: int,
    pw: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Graph-free grouped convolution forward: pooled im2col + one batched GEMM.

    Reduces over ``(c_in_per_group, kh, kw)`` in exactly the order of the
    autograd path's einsum contraction, so outputs are bit-identical to it.
    Only the scratch (padded input, column matrix) lives in the workspace
    pool; the returned array is always freshly allocated by the GEMM.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_per_group, kh, kw = weight.shape
    out_per_group = c_out // groups
    if ph or pw:
        padded = _padded_workspace(x, ph, pw, "conv2d.pad")
    else:
        # the strided view below is valid for any regular layout, so even a
        # transposed view (e.g. a chained fast-path conv output) needs no copy
        padded = x
    stride_n, stride_c, stride_h, stride_w = padded.strides
    # grouped im2col view (G, Cg, KH, KW, N, OH, OW) — contraction axes lead
    view = as_strided(
        padded,
        shape=(groups, c_in_per_group, kh, kw, n, out_h, out_w),
        strides=(
            stride_c * c_in_per_group,
            stride_c,
            stride_h,
            stride_w,
            stride_n,
            stride_h * sh,
            stride_w * sw,
        ),
        writeable=False,
    )
    m = n * out_h * out_w
    cols, _ = workspace("conv2d.cols", (groups, c_in_per_group * kh * kw, m), x.dtype)
    np.copyto(cols.reshape(groups, c_in_per_group, kh, kw, n, out_h, out_w), view)
    if groups == 1:
        # plain 2-D GEMM skips the batched-matmul dispatch overhead
        weight_mat = weight.reshape(c_out, c_in_per_group * kh * kw)
        out = weight_mat @ cols[0]  # (C_out, N*OH*OW), freshly allocated
        if bias is not None:
            out += bias.reshape(c_out, 1)
    else:
        weight_mat = weight.reshape(groups, out_per_group, c_in_per_group * kh * kw)
        out = np.matmul(weight_mat, cols)  # (G, Og, N*OH*OW), freshly allocated
        if bias is not None:
            out += bias.reshape(groups, out_per_group, 1)
    return out.reshape(c_out, n, out_h, out_w).transpose(1, 0, 2, 3)


def conv2d(
    x,
    weight,
    bias=None,
    stride: IntOrPair = 1,
    padding: IntOrPair = 0,
    groups: int = 1,
) -> Tensor:
    """Grouped 2-D convolution over an NCHW tensor.

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in // groups, KH, KW)``.
    bias:
        Optional per-output-channel bias of shape ``(C_out,)``.
    stride, padding:
        Convolution geometry (int or pair).
    groups:
        Number of channel groups; ``groups == C_in`` gives a depthwise
        convolution as used by MobileNetV2's inverted residual blocks.
    """
    x = ensure_tensor(x)
    weight = ensure_tensor(weight)
    bias = ensure_tensor(bias) if bias is not None else None

    n, c_in, h, w = x.shape
    c_out, c_in_per_group, kh, kw = weight.shape
    if c_in % groups != 0 or c_out % groups != 0:
        raise ValueError(f"groups={groups} must divide both C_in={c_in} and C_out={c_out}")
    if c_in // groups != c_in_per_group:
        raise ValueError(
            f"weight expects {c_in_per_group} input channels per group but input provides {c_in // groups}"
        )
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    out_h, out_w = conv_output_shape(h, w, (kh, kw), (sh, sw), (ph, pw))

    parents = [p for p in (x, weight, bias) if p is not None]
    requires = is_grad_enabled() and any(p.requires_grad for p in parents)
    if not requires:
        bias_data = bias.data if bias is not None else None
        # event-driven kernel when the input carries a spike-event list and
        # the geometry is certified (see repro.tensor.sparse); bit-identical
        # to the dense kernel below, just never materialising the im2col
        with ops_span("op.conv2d") as op:
            events = conv_dispatch(x, weight, bias, groups, out_h, out_w)
            if op:
                op.set(
                    route="sparse" if events is not None else "dense",
                    shape=f"{n}x{c_in}x{h}x{w}->{c_out}x{out_h}x{out_w}",
                    events=-1 if events is None else int(events.size),
                )
            if events is not None:
                return graph_free(
                    sparse_conv2d(
                        x.shape, weight.data, bias_data, events, sh, sw, ph, pw, out_h, out_w
                    )
                )
            return graph_free(
                _conv2d_infer(x.data, weight.data, bias_data, groups, sh, sw, ph, pw, out_h, out_w)
            )

    if ph or pw:
        padded = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    else:
        padded = x.data
    col = _im2col_view(padded, kh, kw, sh, sw, out_h, out_w)
    # (N, G, Cg, KH, KW, OH, OW) x (G, Og, Cg, KH, KW) -> (N, G, Og, OH, OW)
    col_g = col.reshape(n, groups, c_in_per_group, kh, kw, out_h, out_w)
    w_g = weight.data.reshape(groups, c_out // groups, c_in_per_group, kh, kw)
    out = np.einsum("ngcuvhw,gocuv->ngohw", col_g, w_g, optimize=True)
    out = out.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    result = Tensor(out, requires_grad=True, _prev=parents)

    def _backward() -> None:
        grad_out = result.grad.reshape(n, groups, c_out // groups, out_h, out_w)
        if weight.requires_grad:
            grad_w = np.einsum("ngcuvhw,ngohw->gocuv", col_g, grad_out, optimize=True)
            weight.accumulate_grad(grad_w.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias.accumulate_grad(result.grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            grad_col = np.einsum("gocuv,ngohw->ngcuvhw", w_g, grad_out, optimize=True)
            grad_col = grad_col.reshape(n, c_in, kh, kw, out_h, out_w)
            x.accumulate_grad(_col2im(grad_col, (n, c_in, h, w), kh, kw, sh, sw, ph, pw))

    result._backward = _backward
    return result


def max_pool2d(x, kernel_size: IntOrPair, stride: IntOrPair = None, padding: IntOrPair = 0) -> Tensor:
    """2-D max pooling over an NCHW tensor."""
    x = ensure_tensor(x)
    kh, kw = _pair(kernel_size)
    if stride is None:
        stride = (kh, kw)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    n, c, h, w = x.shape
    out_h, out_w = conv_output_shape(h, w, (kh, kw), (sh, sw), (ph, pw))

    if not (is_grad_enabled() and x.requires_grad):
        # graph-free: reduce the strided window view directly — no argmax map,
        # no (N, C, KH*KW, OH, OW) copy, pooled padded buffer
        if ph or pw:
            padded = _padded_workspace(x.data, ph, pw, "max_pool2d.pad", fill=-np.inf)
        else:
            padded = x.data
        col = _im2col_view(padded, kh, kw, sh, sw, out_h, out_w)
        return graph_free(col.max(axis=(2, 3)))

    if ph or pw:
        padded = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)), constant_values=-np.inf)
    else:
        padded = x.data
    col = _im2col_view(padded, kh, kw, sh, sw, out_h, out_w)
    col_flat = col.reshape(n, c, kh * kw, out_h, out_w)
    arg = col_flat.argmax(axis=2)
    out = np.take_along_axis(col_flat, arg[:, :, None], axis=2)[:, :, 0]

    result = Tensor(out, requires_grad=True, _prev=(x,))

    def _backward() -> None:
        grad_col = np.zeros((n, c, kh * kw, out_h, out_w), dtype=np.float64)
        np.put_along_axis(grad_col, arg[:, :, None], result.grad[:, :, None], axis=2)
        grad_col = grad_col.reshape(n, c, kh, kw, out_h, out_w)
        x.accumulate_grad(_col2im(grad_col, (n, c, h, w), kh, kw, sh, sw, ph, pw))

    result._backward = _backward
    return result


def avg_pool2d(x, kernel_size: IntOrPair, stride: IntOrPair = None, padding: IntOrPair = 0) -> Tensor:
    """2-D average pooling over an NCHW tensor."""
    x = ensure_tensor(x)
    kh, kw = _pair(kernel_size)
    if stride is None:
        stride = (kh, kw)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    n, c, h, w = x.shape
    out_h, out_w = conv_output_shape(h, w, (kh, kw), (sh, sw), (ph, pw))

    if not (is_grad_enabled() and x.requires_grad):
        if ph or pw:
            padded = _padded_workspace(x.data, ph, pw, "avg_pool2d.pad")
        else:
            padded = x.data
        col = _im2col_view(padded, kh, kw, sh, sw, out_h, out_w)
        return graph_free(col.mean(axis=(2, 3)))

    if ph or pw:
        padded = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    else:
        padded = x.data
    col = _im2col_view(padded, kh, kw, sh, sw, out_h, out_w)
    out = col.mean(axis=(2, 3))

    result = Tensor(out, requires_grad=True, _prev=(x,))

    def _backward() -> None:
        scale = 1.0 / (kh * kw)
        grad_col = np.broadcast_to(
            result.grad[:, :, None, None] * scale, (n, c, kh, kw, out_h, out_w)
        ).astype(np.float64)
        x.accumulate_grad(_col2im(grad_col, (n, c, h, w), kh, kw, sh, sw, ph, pw))

    result._backward = _backward
    return result


def global_avg_pool2d(x) -> Tensor:
    """Average over the spatial dimensions, returning ``(N, C)``."""
    x = ensure_tensor(x)
    pooled = x.mean(axis=(2, 3))
    return pooled
