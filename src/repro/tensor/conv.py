"""Differentiable 2-D convolution and pooling built on im2col.

These are the hot paths of every experiment in the paper (all three adapted
architectures are convolutional, and the SNN unrolls them over time), so the
implementation is fully vectorised:

* the im2col "lowering" is produced with :func:`numpy.lib.stride_tricks.as_strided`
  so no data is copied to build the patch view;
* the contraction between patches and filters is a single ``einsum`` call that
  also handles grouped convolution (needed for the MobileNetV2 depthwise
  blocks) without a Python loop over groups;
* the backward col2im accumulation loops only over the *kernel* positions
  (e.g. 9 iterations for a 3x3 kernel), never over batch or spatial positions.

When no gradient will ever be needed — under
:func:`~repro.tensor.tensor.no_grad`, or when neither input requires grad —
the convolution dispatches to a **graph-free inference kernel** instead: the
grouped im2col view is copied once into a per-thread workspace column matrix
(:mod:`repro.tensor.workspace`) and contracted with a single batched GEMM
(``np.matmul``).  The GEMM reduces over the same ``(channel, kh, kw)`` axis
order as the einsum path, so the two paths produce bit-identical outputs
(pinned by ``tests/test_inference_fastpath.py``) while the inference kernel
avoids the einsum dispatch overhead, the per-call padded-buffer allocation
and all graph bookkeeping — the im2col scratch is reused across the time
steps of an SNN simulation instead of being reallocated per step.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.tensor.primitives import Primitive, apply as _apply, register
from repro.tensor.sparse import conv_dispatch, sparse_conv2d
from repro.tensor.tensor import Tensor, ensure_tensor, graph_free, is_grad_enabled
from repro.trace import ops_span
from repro.tensor.workspace import workspace

IntOrPair = Union[int, Tuple[int, int]]


def _pair(value: IntOrPair) -> Tuple[int, int]:
    """Normalise an int-or-pair argument to a pair."""
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def conv_output_shape(
    height: int, width: int, kernel_size: IntOrPair, stride: IntOrPair = 1, padding: IntOrPair = 0
) -> Tuple[int, int]:
    """Return the spatial output shape of a conv/pool with the given geometry."""
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    out_h = (height + 2 * ph - kh) // sh + 1
    out_w = (width + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"conv geometry produces empty output: input {height}x{width}, "
            f"kernel {kh}x{kw}, stride {sh}x{sw}, padding {ph}x{pw}"
        )
    return out_h, out_w


def _strided_view(arr: np.ndarray, shape: Tuple[int, ...], strides: Tuple[int, ...]) -> np.ndarray:
    """A read-only overlapping view, built the cheapest way the layout allows.

    The ``np.ndarray`` buffer constructor skips ``as_strided``'s interface
    round-trip (several µs per call, and the training kernels build hundreds
    of these views per step) but only accepts contiguous buffers; irregular
    layouts — transposed channel-major stashes — fall back.
    """
    if arr.flags["C_CONTIGUOUS"]:
        return np.ndarray(shape, dtype=arr.dtype, buffer=arr, strides=strides)
    return as_strided(arr, shape=shape, strides=strides, writeable=False)


def _im2col_view(padded: np.ndarray, kh: int, kw: int, sh: int, sw: int, out_h: int, out_w: int) -> np.ndarray:
    """Return a (N, C, KH, KW, OH, OW) strided view of the padded input."""
    n, c, _, _ = padded.shape
    stride_n, stride_c, stride_h, stride_w = padded.strides
    shape = (n, c, kh, kw, out_h, out_w)
    strides = (stride_n, stride_c, stride_h, stride_w, stride_h * sh, stride_w * sw)
    return _strided_view(padded, shape, strides)


def _col2im(
    col_grad: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    sh: int,
    sw: int,
    ph: int,
    pw: int,
) -> np.ndarray:
    """Scatter-add a (N, C, KH, KW, OH, OW) gradient back onto the input."""
    n, c, h, w = input_shape
    out_h = col_grad.shape[4]
    out_w = col_grad.shape[5]
    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=col_grad.dtype)
    for i in range(kh):
        i_end = i + sh * out_h
        for j in range(kw):
            j_end = j + sw * out_w
            padded[:, :, i:i_end:sh, j:j_end:sw] += col_grad[:, :, i, j]
    if ph == 0 and pw == 0:
        return padded
    return padded[:, :, ph : ph + h, pw : pw + w]


def _padded_workspace(
    x: np.ndarray, ph: int, pw: int, key: str, fill: float = 0.0
) -> np.ndarray:
    """Copy ``x`` into a pooled padded buffer whose border holds ``fill``.

    The pool key is qualified by the full geometry, so every distinct padded
    layer of a model owns its buffer: after a layer's first call, its border
    cells still hold ``fill`` (only the interior is ever overwritten) and the
    per-step cost is the interior copy alone — even when many layers with
    different geometries interleave within one simulation step.
    """
    n, c, h, w = x.shape
    signature = (n, c, h, w, ph, pw, fill)
    padded, matched = workspace(
        f"{key}:{signature}", (n, c, h + 2 * ph, w + 2 * pw), x.dtype, signature=signature
    )
    if not matched:
        padded[...] = fill
    padded[:, :, ph : ph + h, pw : pw + w] = x
    return padded


def _conv2d_infer(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    groups: int,
    sh: int,
    sw: int,
    ph: int,
    pw: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Graph-free grouped convolution forward: pooled im2col + one batched GEMM.

    Reduces over ``(c_in_per_group, kh, kw)`` in exactly the order of the
    autograd path's einsum contraction, so outputs are bit-identical to it.
    Only the scratch (padded input, column matrix) lives in the workspace
    pool; the returned array is always freshly allocated by the GEMM.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_per_group, kh, kw = weight.shape
    out_per_group = c_out // groups
    if ph or pw:
        padded = _padded_workspace(x, ph, pw, "conv2d.pad")
    else:
        # the strided view below is valid for any regular layout, so even a
        # transposed view (e.g. a chained fast-path conv output) needs no copy
        padded = x
    stride_n, stride_c, stride_h, stride_w = padded.strides
    # grouped im2col view (G, Cg, KH, KW, N, OH, OW) — contraction axes lead
    view = _strided_view(
        padded,
        (groups, c_in_per_group, kh, kw, n, out_h, out_w),
        (
            stride_c * c_in_per_group,
            stride_c,
            stride_h,
            stride_w,
            stride_n,
            stride_h * sh,
            stride_w * sw,
        ),
    )
    m = n * out_h * out_w
    cols, _ = workspace("conv2d.cols", (groups, c_in_per_group * kh * kw, m), x.dtype)
    np.copyto(cols.reshape(groups, c_in_per_group, kh, kw, n, out_h, out_w), view)
    if groups == 1:
        # plain 2-D GEMM skips the batched-matmul dispatch overhead
        weight_mat = weight.reshape(c_out, c_in_per_group * kh * kw)
        out = weight_mat @ cols[0]  # (C_out, N*OH*OW), freshly allocated
        if bias is not None:
            out += bias.reshape(c_out, 1)
    else:
        weight_mat = weight.reshape(groups, out_per_group, c_in_per_group * kh * kw)
        out = np.matmul(weight_mat, cols)  # (G, Og, N*OH*OW), freshly allocated
        if bias is not None:
            out += bias.reshape(groups, out_per_group, 1)
    return out.reshape(c_out, n, out_h, out_w).transpose(1, 0, 2, 3)


# ---------------------------------------------------------------------------
# primitives: conv2d / max_pool2d / avg_pool2d
# ---------------------------------------------------------------------------

def _conv2d_fwd(*arrays, want_ctx=False, stride, padding, groups):
    x, weight = arrays[0], arrays[1]
    bias = arrays[2] if len(arrays) > 2 else None
    n, c_in, h, w = x.shape
    c_out, c_in_per_group, kh, kw = weight.shape
    sh, sw = stride
    ph, pw = padding
    out_h, out_w = conv_output_shape(h, w, (kh, kw), (sh, sw), (ph, pw))
    if ph or pw:
        padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    else:
        padded = x
    col = _im2col_view(padded, kh, kw, sh, sw, out_h, out_w)
    # (N, G, Cg, KH, KW, OH, OW) x (G, Og, Cg, KH, KW) -> (N, G, Og, OH, OW)
    col_g = col.reshape(n, groups, c_in_per_group, kh, kw, out_h, out_w)
    w_g = weight.reshape(groups, c_out // groups, c_in_per_group, kh, kw)
    out = np.einsum("ngcuvhw,gocuv->ngohw", col_g, w_g, optimize=True)
    out = out.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out = out + bias.reshape(1, c_out, 1, 1)
    if not want_ctx:
        return out, None
    geometry = (n, c_in, h, w, kh, kw, sh, sw, ph, pw, out_h, out_w, c_out, weight.shape)
    return out, (col_g, w_g, geometry)


def _conv2d_vjp(ctx, g, needs, *, stride, padding, groups):
    col_g, w_g, geometry = ctx
    n, c_in, h, w, kh, kw, sh, sw, ph, pw, out_h, out_w, c_out, weight_shape = geometry
    grads = [None] * len(needs)
    out_per_group = c_out // groups
    cpg = c_in // groups
    m = out_h * out_w
    grad_out = g.reshape(n, groups, out_per_group, out_h, out_w)
    go_mat = grad_out.reshape(n, groups, out_per_group, m)
    if needs[1]:
        # batched GEMM over (N, G) then a pairwise sum over the batch — an
        # order of magnitude faster than the equivalent einsum contraction at
        # the small per-layer sizes BPTT sweeps over
        col_mat = col_g.reshape(n, groups, cpg * kh * kw, m)
        grad_w = np.matmul(go_mat, col_mat.swapaxes(-1, -2)).sum(axis=0)
        grads[1] = grad_w.reshape(weight_shape)
    if len(needs) > 2 and needs[2]:
        grads[2] = g.sum(axis=(0, 2, 3))
    if needs[0]:
        if sh == 1 and sw == 1:
            # stride-1 input gradient as one GEMM: correlate the zero-padded
            # output gradient with the spatially flipped, channel-transposed
            # weight — no column gradient, no overlapping scatter-add
            wf = w_g[:, :, :, ::-1, ::-1].transpose(0, 2, 1, 3, 4)
            wf = np.ascontiguousarray(wf).reshape(c_in, out_per_group, kh, kw)
            grad_pad = _conv2d_infer(
                grad_out.reshape(n, c_out, out_h, out_w),
                wf, None, groups, 1, 1, kh - 1, kw - 1, h + 2 * ph, w + 2 * pw,
            )
            grads[0] = grad_pad[:, :, ph : ph + h, pw : pw + w]
        else:
            grad_col = np.matmul(
                w_g.reshape(groups, out_per_group, cpg * kh * kw).swapaxes(-1, -2), go_mat
            )
            grad_col = grad_col.reshape(n, c_in, kh, kw, out_h, out_w)
            grads[0] = _col2im(grad_col, (n, c_in, h, w), kh, kw, sh, sw, ph, pw)
    return tuple(grads)


def _conv2d_jvp(ctx, tangents, *, stride, padding, groups):
    col_g, w_g, geometry = ctx
    n, c_in, h, w, kh, kw, sh, sw, ph, pw, out_h, out_w, c_out, weight_shape = geometry
    tx, tw = tangents[0], tangents[1]
    c_in_per_group = weight_shape[1]
    if ph or pw:
        t_padded = np.pad(tx, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    else:
        t_padded = tx
    t_col = _im2col_view(t_padded, kh, kw, sh, sw, out_h, out_w)
    t_col_g = t_col.reshape(n, groups, c_in_per_group, kh, kw, out_h, out_w)
    tw_g = tw.reshape(groups, c_out // groups, c_in_per_group, kh, kw)
    out = np.einsum("ngcuvhw,gocuv->ngohw", t_col_g, w_g, optimize=True)
    out = out + np.einsum("ngcuvhw,gocuv->ngohw", col_g, tw_g, optimize=True)
    out = out.reshape(n, c_out, out_h, out_w)
    if len(tangents) > 2:
        out = out + tangents[2].reshape(1, c_out, 1, 1)
    return out


def _conv2d_sample(shapes, **params):
    def make(rng, dtype):
        inputs = tuple(rng.standard_normal(shape).astype(dtype, copy=False) for shape in shapes)
        return inputs, dict(params)

    return make


CONV2D = register(
    Primitive(
        "conv2d",
        forward=_conv2d_fwd,
        vjp=_conv2d_vjp,
        jvp=_conv2d_jvp,
        samples=[
            _conv2d_sample(
                [(2, 3, 5, 5), (4, 3, 3, 3), (4,)], stride=(1, 1), padding=(1, 1), groups=1
            ),
            _conv2d_sample([(2, 3, 6, 6), (4, 3, 3, 3)], stride=(2, 2), padding=(0, 0), groups=1),
            _conv2d_sample(
                [(2, 4, 5, 5), (6, 2, 3, 3), (6,)], stride=(1, 1), padding=(1, 1), groups=2
            ),
        ],
    )
)


def _max_pool2d_fwd(x, want_ctx=False, *, kernel, stride, padding):
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    n, c, h, w = x.shape
    out_h, out_w = conv_output_shape(h, w, (kh, kw), (sh, sw), (ph, pw))
    if ph or pw:
        padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), constant_values=-np.inf)
    else:
        padded = x
    col = _im2col_view(padded, kh, kw, sh, sw, out_h, out_w)
    col_flat = col.reshape(n, c, kh * kw, out_h, out_w)
    arg = col_flat.argmax(axis=2)
    out = np.take_along_axis(col_flat, arg[:, :, None], axis=2)[:, :, 0]
    if not want_ctx:
        return out, None
    return out, (arg, (n, c, h, w, kh, kw, sh, sw, ph, pw, out_h, out_w))


def _max_pool2d_vjp(ctx, g, needs, *, kernel, stride, padding):
    if not needs[0]:
        return (None,)
    arg, (n, c, h, w, kh, kw, sh, sw, ph, pw, out_h, out_w) = ctx
    grad_col = np.zeros((n, c, kh * kw, out_h, out_w), dtype=np.float64)
    np.put_along_axis(grad_col, arg[:, :, None], g[:, :, None], axis=2)
    grad_col = grad_col.reshape(n, c, kh, kw, out_h, out_w)
    return (_col2im(grad_col, (n, c, h, w), kh, kw, sh, sw, ph, pw),)


def _max_pool2d_jvp(ctx, tangents, *, kernel, stride, padding):
    arg, (n, c, h, w, kh, kw, sh, sw, ph, pw, out_h, out_w) = ctx
    tx = tangents[0]
    if ph or pw:
        t_padded = np.pad(tx, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    else:
        t_padded = tx
    t_col = _im2col_view(t_padded, kh, kw, sh, sw, out_h, out_w)
    t_flat = t_col.reshape(n, c, kh * kw, out_h, out_w)
    return np.take_along_axis(t_flat, arg[:, :, None], axis=2)[:, :, 0]


def _pool_sample(shape, **params):
    def make(rng, dtype):
        return (rng.standard_normal(shape).astype(dtype, copy=False),), dict(params)

    return make


MAX_POOL2D = register(
    Primitive(
        "max_pool2d",
        forward=_max_pool2d_fwd,
        vjp=_max_pool2d_vjp,
        jvp=_max_pool2d_jvp,
        samples=[
            _pool_sample((2, 3, 6, 6), kernel=(2, 2), stride=(2, 2), padding=(0, 0)),
            _pool_sample((2, 3, 5, 5), kernel=(3, 3), stride=(2, 2), padding=(1, 1)),
        ],
    )
)


def _avg_pool2d_fwd(x, want_ctx=False, *, kernel, stride, padding):
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    n, c, h, w = x.shape
    out_h, out_w = conv_output_shape(h, w, (kh, kw), (sh, sw), (ph, pw))
    if ph or pw:
        padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    else:
        padded = x
    col = _im2col_view(padded, kh, kw, sh, sw, out_h, out_w)
    out = col.mean(axis=(2, 3))
    return out, ((n, c, h, w, kh, kw, sh, sw, ph, pw, out_h, out_w) if want_ctx else None)


def _avg_pool2d_vjp(ctx, g, needs, *, kernel, stride, padding):
    if not needs[0]:
        return (None,)
    n, c, h, w, kh, kw, sh, sw, ph, pw, out_h, out_w = ctx
    scale = 1.0 / (kh * kw)
    grad_col = np.broadcast_to(g[:, :, None, None] * scale, (n, c, kh, kw, out_h, out_w)).astype(
        np.float64
    )
    return (_col2im(grad_col, (n, c, h, w), kh, kw, sh, sw, ph, pw),)


def _avg_pool2d_jvp(ctx, tangents, *, kernel, stride, padding):
    out, _ = _avg_pool2d_fwd(tangents[0], kernel=kernel, stride=stride, padding=padding)
    return out


AVG_POOL2D = register(
    Primitive(
        "avg_pool2d",
        forward=_avg_pool2d_fwd,
        vjp=_avg_pool2d_vjp,
        jvp=_avg_pool2d_jvp,
        samples=[
            _pool_sample((2, 3, 6, 6), kernel=(2, 2), stride=(2, 2), padding=(0, 0)),
            _pool_sample((2, 3, 5, 5), kernel=(3, 3), stride=(2, 2), padding=(1, 1)),
        ],
    )
)


def conv2d(
    x,
    weight,
    bias=None,
    stride: IntOrPair = 1,
    padding: IntOrPair = 0,
    groups: int = 1,
) -> Tensor:
    """Grouped 2-D convolution over an NCHW tensor.

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in // groups, KH, KW)``.
    bias:
        Optional per-output-channel bias of shape ``(C_out,)``.
    stride, padding:
        Convolution geometry (int or pair).
    groups:
        Number of channel groups; ``groups == C_in`` gives a depthwise
        convolution as used by MobileNetV2's inverted residual blocks.
    """
    x = ensure_tensor(x)
    weight = ensure_tensor(weight)
    bias = ensure_tensor(bias) if bias is not None else None

    n, c_in, h, w = x.shape
    c_out, c_in_per_group, kh, kw = weight.shape
    if c_in % groups != 0 or c_out % groups != 0:
        raise ValueError(f"groups={groups} must divide both C_in={c_in} and C_out={c_out}")
    if c_in // groups != c_in_per_group:
        raise ValueError(
            f"weight expects {c_in_per_group} input channels per group but input provides {c_in // groups}"
        )
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    out_h, out_w = conv_output_shape(h, w, (kh, kw), (sh, sw), (ph, pw))

    parents = [p for p in (x, weight, bias) if p is not None]
    requires = is_grad_enabled() and any(p.requires_grad for p in parents)
    if not requires:
        bias_data = bias.data if bias is not None else None
        # event-driven kernel when the input carries a spike-event list and
        # the geometry is certified (see repro.tensor.sparse); bit-identical
        # to the dense kernel below, just never materialising the im2col
        with ops_span("op.conv2d") as op:
            events = conv_dispatch(x, weight, bias, groups, out_h, out_w)
            if op:
                op.set(
                    route="sparse" if events is not None else "dense",
                    shape=f"{n}x{c_in}x{h}x{w}->{c_out}x{out_h}x{out_w}",
                    events=-1 if events is None else int(events.size),
                )
            if events is not None:
                return graph_free(
                    sparse_conv2d(
                        x.shape, weight.data, bias_data, events, sh, sw, ph, pw, out_h, out_w
                    )
                )
            return graph_free(
                _conv2d_infer(x.data, weight.data, bias_data, groups, sh, sw, ph, pw, out_h, out_w)
            )

    return _apply(CONV2D, parents, stride=(sh, sw), padding=(ph, pw), groups=groups)


def max_pool2d(x, kernel_size: IntOrPair, stride: IntOrPair = None, padding: IntOrPair = 0) -> Tensor:
    """2-D max pooling over an NCHW tensor."""
    x = ensure_tensor(x)
    kh, kw = _pair(kernel_size)
    if stride is None:
        stride = (kh, kw)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    n, c, h, w = x.shape
    out_h, out_w = conv_output_shape(h, w, (kh, kw), (sh, sw), (ph, pw))

    if not (is_grad_enabled() and x.requires_grad):
        # graph-free: reduce the strided window view directly — no argmax map,
        # no (N, C, KH*KW, OH, OW) copy, pooled padded buffer
        if ph or pw:
            padded = _padded_workspace(x.data, ph, pw, "max_pool2d.pad", fill=-np.inf)
        else:
            padded = x.data
        col = _im2col_view(padded, kh, kw, sh, sw, out_h, out_w)
        return graph_free(col.max(axis=(2, 3)))

    return _apply(MAX_POOL2D, (x,), kernel=(kh, kw), stride=(sh, sw), padding=(ph, pw))


def avg_pool2d(x, kernel_size: IntOrPair, stride: IntOrPair = None, padding: IntOrPair = 0) -> Tensor:
    """2-D average pooling over an NCHW tensor."""
    x = ensure_tensor(x)
    kh, kw = _pair(kernel_size)
    if stride is None:
        stride = (kh, kw)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    n, c, h, w = x.shape
    out_h, out_w = conv_output_shape(h, w, (kh, kw), (sh, sw), (ph, pw))

    if not (is_grad_enabled() and x.requires_grad):
        if ph or pw:
            padded = _padded_workspace(x.data, ph, pw, "avg_pool2d.pad")
        else:
            padded = x.data
        col = _im2col_view(padded, kh, kw, sh, sw, out_h, out_w)
        return graph_free(col.mean(axis=(2, 3)))

    return _apply(AVG_POOL2D, (x,), kernel=(kh, kw), stride=(sh, sw), padding=(ph, pw))


def global_avg_pool2d(x) -> Tensor:
    """Average over the spatial dimensions, returning ``(N, C)``."""
    x = ensure_tensor(x)
    pooled = x.mean(axis=(2, 3))
    return pooled
