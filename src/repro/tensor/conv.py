"""Differentiable 2-D convolution and pooling built on im2col.

These are the hot paths of every experiment in the paper (all three adapted
architectures are convolutional, and the SNN unrolls them over time), so the
implementation is fully vectorised:

* the im2col "lowering" is produced with :func:`numpy.lib.stride_tricks.as_strided`
  so no data is copied to build the patch view;
* the contraction between patches and filters is a single ``einsum`` call that
  also handles grouped convolution (needed for the MobileNetV2 depthwise
  blocks) without a Python loop over groups;
* the backward col2im accumulation loops only over the *kernel* positions
  (e.g. 9 iterations for a 3x3 kernel), never over batch or spatial positions.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.tensor.tensor import Tensor, ensure_tensor, is_grad_enabled

IntOrPair = Union[int, Tuple[int, int]]


def _pair(value: IntOrPair) -> Tuple[int, int]:
    """Normalise an int-or-pair argument to a pair."""
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def conv_output_shape(
    height: int, width: int, kernel_size: IntOrPair, stride: IntOrPair = 1, padding: IntOrPair = 0
) -> Tuple[int, int]:
    """Return the spatial output shape of a conv/pool with the given geometry."""
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    out_h = (height + 2 * ph - kh) // sh + 1
    out_w = (width + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"conv geometry produces empty output: input {height}x{width}, "
            f"kernel {kh}x{kw}, stride {sh}x{sw}, padding {ph}x{pw}"
        )
    return out_h, out_w


def _im2col_view(padded: np.ndarray, kh: int, kw: int, sh: int, sw: int, out_h: int, out_w: int) -> np.ndarray:
    """Return a (N, C, KH, KW, OH, OW) strided view of the padded input."""
    n, c, _, _ = padded.shape
    stride_n, stride_c, stride_h, stride_w = padded.strides
    shape = (n, c, kh, kw, out_h, out_w)
    strides = (stride_n, stride_c, stride_h, stride_w, stride_h * sh, stride_w * sw)
    return as_strided(padded, shape=shape, strides=strides, writeable=False)


def _col2im(
    col_grad: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    sh: int,
    sw: int,
    ph: int,
    pw: int,
) -> np.ndarray:
    """Scatter-add a (N, C, KH, KW, OH, OW) gradient back onto the input."""
    n, c, h, w = input_shape
    out_h = col_grad.shape[4]
    out_w = col_grad.shape[5]
    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=col_grad.dtype)
    for i in range(kh):
        i_end = i + sh * out_h
        for j in range(kw):
            j_end = j + sw * out_w
            padded[:, :, i:i_end:sh, j:j_end:sw] += col_grad[:, :, i, j]
    if ph == 0 and pw == 0:
        return padded
    return padded[:, :, ph : ph + h, pw : pw + w]


def conv2d(
    x,
    weight,
    bias=None,
    stride: IntOrPair = 1,
    padding: IntOrPair = 0,
    groups: int = 1,
) -> Tensor:
    """Grouped 2-D convolution over an NCHW tensor.

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in // groups, KH, KW)``.
    bias:
        Optional per-output-channel bias of shape ``(C_out,)``.
    stride, padding:
        Convolution geometry (int or pair).
    groups:
        Number of channel groups; ``groups == C_in`` gives a depthwise
        convolution as used by MobileNetV2's inverted residual blocks.
    """
    x = ensure_tensor(x)
    weight = ensure_tensor(weight)
    bias = ensure_tensor(bias) if bias is not None else None

    n, c_in, h, w = x.shape
    c_out, c_in_per_group, kh, kw = weight.shape
    if c_in % groups != 0 or c_out % groups != 0:
        raise ValueError(f"groups={groups} must divide both C_in={c_in} and C_out={c_out}")
    if c_in // groups != c_in_per_group:
        raise ValueError(
            f"weight expects {c_in_per_group} input channels per group but input provides {c_in // groups}"
        )
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    out_h, out_w = conv_output_shape(h, w, (kh, kw), (sh, sw), (ph, pw))

    if ph or pw:
        padded = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    else:
        padded = x.data
    col = _im2col_view(padded, kh, kw, sh, sw, out_h, out_w)
    # (N, G, Cg, KH, KW, OH, OW) x (G, Og, Cg, KH, KW) -> (N, G, Og, OH, OW)
    col_g = col.reshape(n, groups, c_in_per_group, kh, kw, out_h, out_w)
    w_g = weight.data.reshape(groups, c_out // groups, c_in_per_group, kh, kw)
    out = np.einsum("ngcuvhw,gocuv->ngohw", col_g, w_g, optimize=True)
    out = out.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    parents = [p for p in (x, weight, bias) if p is not None]
    requires = is_grad_enabled() and any(p.requires_grad for p in parents)
    if not requires:
        return Tensor(out)

    result = Tensor(out, requires_grad=True, _prev=parents)

    def _backward() -> None:
        grad_out = result.grad.reshape(n, groups, c_out // groups, out_h, out_w)
        if weight.requires_grad:
            grad_w = np.einsum("ngcuvhw,ngohw->gocuv", col_g, grad_out, optimize=True)
            weight.accumulate_grad(grad_w.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias.accumulate_grad(result.grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            grad_col = np.einsum("gocuv,ngohw->ngcuvhw", w_g, grad_out, optimize=True)
            grad_col = grad_col.reshape(n, c_in, kh, kw, out_h, out_w)
            x.accumulate_grad(_col2im(grad_col, (n, c_in, h, w), kh, kw, sh, sw, ph, pw))

    result._backward = _backward
    return result


def max_pool2d(x, kernel_size: IntOrPair, stride: IntOrPair = None, padding: IntOrPair = 0) -> Tensor:
    """2-D max pooling over an NCHW tensor."""
    x = ensure_tensor(x)
    kh, kw = _pair(kernel_size)
    if stride is None:
        stride = (kh, kw)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    n, c, h, w = x.shape
    out_h, out_w = conv_output_shape(h, w, (kh, kw), (sh, sw), (ph, pw))

    if ph or pw:
        padded = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)), constant_values=-np.inf)
    else:
        padded = x.data
    col = _im2col_view(padded, kh, kw, sh, sw, out_h, out_w)
    col_flat = col.reshape(n, c, kh * kw, out_h, out_w)
    arg = col_flat.argmax(axis=2)
    out = np.take_along_axis(col_flat, arg[:, :, None], axis=2)[:, :, 0]

    if not (is_grad_enabled() and x.requires_grad):
        return Tensor(out)

    result = Tensor(out, requires_grad=True, _prev=(x,))

    def _backward() -> None:
        grad_col = np.zeros((n, c, kh * kw, out_h, out_w), dtype=np.float64)
        np.put_along_axis(grad_col, arg[:, :, None], result.grad[:, :, None], axis=2)
        grad_col = grad_col.reshape(n, c, kh, kw, out_h, out_w)
        x.accumulate_grad(_col2im(grad_col, (n, c, h, w), kh, kw, sh, sw, ph, pw))

    result._backward = _backward
    return result


def avg_pool2d(x, kernel_size: IntOrPair, stride: IntOrPair = None, padding: IntOrPair = 0) -> Tensor:
    """2-D average pooling over an NCHW tensor."""
    x = ensure_tensor(x)
    kh, kw = _pair(kernel_size)
    if stride is None:
        stride = (kh, kw)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    n, c, h, w = x.shape
    out_h, out_w = conv_output_shape(h, w, (kh, kw), (sh, sw), (ph, pw))

    if ph or pw:
        padded = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    else:
        padded = x.data
    col = _im2col_view(padded, kh, kw, sh, sw, out_h, out_w)
    out = col.mean(axis=(2, 3))

    if not (is_grad_enabled() and x.requires_grad):
        return Tensor(out)

    result = Tensor(out, requires_grad=True, _prev=(x,))

    def _backward() -> None:
        scale = 1.0 / (kh * kw)
        grad_col = np.broadcast_to(
            result.grad[:, :, None, None] * scale, (n, c, kh, kw, out_h, out_w)
        ).astype(np.float64)
        x.accumulate_grad(_col2im(grad_col, (n, c, h, w), kh, kw, sh, sw, ph, pw))

    result._backward = _backward
    return result


def global_avg_pool2d(x) -> Tensor:
    """Average over the spatial dimensions, returning ``(N, C)``."""
    x = ensure_tensor(x)
    pooled = x.mean(axis=(2, 3))
    return pooled
