"""Core :class:`Tensor` type with reverse-mode automatic differentiation.

The design follows the classic define-by-run tape: every differentiable
operation produces a new :class:`Tensor` whose ``_backward`` closure knows how
to push the output gradient into the gradients of its parents.  Calling
:meth:`Tensor.backward` topologically sorts the recorded graph and runs the
closures in reverse order.

Performance notes (see ``/opt/skills/guides/python/hpc-parallel``):

* gradients are accumulated **in place** (``+=``) into pre-allocated buffers;
* broadcasting in the forward pass is undone in the backward pass by summing
  over the broadcast axes (``_unbroadcast``) rather than materialising
  intermediate copies;
* the graph bookkeeping uses ``__slots__`` to keep per-node overhead small —
  a BPTT-unrolled SNN creates tens of thousands of nodes per step.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, list, tuple, "Tensor"]

_DEFAULT_DTYPE = np.float64

# ---------------------------------------------------------------------------
# global grad-mode switch (mirrors torch.no_grad)
# ---------------------------------------------------------------------------

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return ``True`` when operations record a backward graph."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph recording.

    Used by evaluation loops and by the firing-rate monitors so that pure
    inference does not pay the memory cost of the tape.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    """Coerce ``value`` to a float ndarray without copying when possible."""
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value, dtype=dtype if dtype is not None else None)
    if arr.dtype.kind not in "fc":
        arr = arr.astype(_DEFAULT_DTYPE)
    return arr


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    Implements the adjoint of NumPy broadcasting: any axis of size 1 that was
    expanded, and any prepended axis, must be summed over.
    """
    if grad.shape == shape:
        return grad
    # Sum over prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An ndarray with an optional gradient and a recorded backward graph.

    Parameters
    ----------
    data:
        Anything convertible to a NumPy array.  Integer inputs are promoted
        to ``float64`` so that gradients are well defined.
    requires_grad:
        When ``True`` the tensor participates in autodiff: a ``grad`` buffer
        is allocated lazily on the first backward pass.
    name:
        Optional label used by debugging helpers and the parameter registry.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name", "_events")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: str = "",
        _prev: Sequence["Tensor"] = (),
        _backward: Optional[Callable[[], None]] = None,
    ) -> None:
        self.data: np.ndarray = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Optional[Callable[[], None]] = _backward
        self._prev: Tuple[Tensor, ...] = tuple(_prev)
        self.name: str = name
        # flat C-order indices of the nonzero entries, attached by trusted
        # producers when event-driven sparse inference is active (see
        # repro.tensor.sparse); None for ordinary dense tensors
        self._events: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(shape: Sequence[int], requires_grad: bool = False, dtype=_DEFAULT_DTYPE) -> "Tensor":
        """Return a tensor of zeros with the given ``shape``."""
        return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def ones(shape: Sequence[int], requires_grad: bool = False, dtype=_DEFAULT_DTYPE) -> "Tensor":
        """Return a tensor of ones with the given ``shape``."""
        return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def full(shape: Sequence[int], fill_value: float, requires_grad: bool = False) -> "Tensor":
        """Return a constant tensor filled with ``fill_value``."""
        return Tensor(np.full(shape, fill_value, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def from_numpy(array: np.ndarray, requires_grad: bool = False) -> "Tensor":
        """Wrap an existing ndarray (no copy for float arrays)."""
        return Tensor(array, requires_grad=requires_grad)

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def dtype(self):
        """NumPy dtype of the underlying array."""
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the raw ndarray (a view, not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the single scalar value stored in this tensor."""
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a tensor with copied data, detached from the graph."""
        return Tensor(self.data.copy(), requires_grad=False)

    def astype(self, dtype) -> "Tensor":
        """Return a detached copy cast to ``dtype``."""
        return Tensor(self.data.astype(dtype), requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, dtype={self.data.dtype}{grad_flag}{label})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # autodiff machinery
    # ------------------------------------------------------------------
    def _ensure_grad(self) -> np.ndarray:
        """Allocate the gradient buffer on demand (always float64)."""
        if self.grad is None:
            self.grad = np.zeros_like(self.data, dtype=_DEFAULT_DTYPE)
        return self.grad

    def accumulate_grad(self, value: np.ndarray) -> None:
        """Add ``value`` (already shaped like ``self``) into the grad buffer."""
        self._ensure_grad()
        self.grad += value

    def zero_grad(self) -> None:
        """Reset the gradient buffer to zeros (keeps the allocation)."""
        if self.grad is not None:
            self.grad[...] = 0.0

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to ``1`` for scalar tensors; required for
            non-scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() on a non-scalar tensor requires an explicit gradient")
            seed = np.ones_like(self.data, dtype=_DEFAULT_DTYPE)
        else:
            seed = _as_array(grad).astype(_DEFAULT_DTYPE, copy=False)
            if seed.shape != self.data.shape:
                seed = np.broadcast_to(seed, self.data.shape).astype(_DEFAULT_DTYPE)

        topo = self._topological_order()
        self._ensure_grad()
        self.grad += seed
        for node in reversed(topo):
            if node._backward is not None:
                node._backward()

    def _topological_order(self) -> List["Tensor"]:
        """Iterative topological sort of the subgraph reachable from ``self``.

        An explicit stack is used instead of recursion because deeply unrolled
        SNNs (many time steps x many layers) easily exceed Python's recursion
        limit.
        """
        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, int]] = [(self, 0)]
        while stack:
            node, child_index = stack.pop()
            node_id = id(node)
            if child_index == 0:
                if node_id in visited:
                    continue
                visited.add(node_id)
            if child_index < len(node._prev):
                stack.append((node, child_index + 1))
                child = node._prev[child_index]
                if id(child) not in visited:
                    stack.append((child, 0))
            else:
                order.append(node)
        return order

    def graph_size(self) -> int:
        """Return the number of nodes in the recorded backward graph."""
        return len(self._topological_order())

    # ------------------------------------------------------------------
    # operator overloads — delegate to repro.tensor.ops
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        from repro.tensor import ops

        return ops.add(self, other)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        from repro.tensor import ops

        return ops.add(other, self)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        from repro.tensor import ops

        return ops.sub(self, other)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        from repro.tensor import ops

        return ops.sub(other, self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        from repro.tensor import ops

        return ops.mul(self, other)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        from repro.tensor import ops

        return ops.mul(other, self)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        from repro.tensor import ops

        return ops.div(self, other)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        from repro.tensor import ops

        return ops.div(other, self)

    def __neg__(self) -> "Tensor":
        from repro.tensor import ops

        return ops.neg(self)

    def __pow__(self, exponent: float) -> "Tensor":
        from repro.tensor import ops

        return ops.power(self, exponent)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        from repro.tensor import ops

        return ops.matmul(self, other)

    def __getitem__(self, index) -> "Tensor":
        from repro.tensor import ops

        return ops.getitem(self, index)

    # comparison operators return plain (non-differentiable) tensors
    def __gt__(self, other: ArrayLike) -> "Tensor":
        return Tensor((self.data > _as_array(other)).astype(_DEFAULT_DTYPE))

    def __ge__(self, other: ArrayLike) -> "Tensor":
        return Tensor((self.data >= _as_array(other)).astype(_DEFAULT_DTYPE))

    def __lt__(self, other: ArrayLike) -> "Tensor":
        return Tensor((self.data < _as_array(other)).astype(_DEFAULT_DTYPE))

    def __le__(self, other: ArrayLike) -> "Tensor":
        return Tensor((self.data <= _as_array(other)).astype(_DEFAULT_DTYPE))

    # ------------------------------------------------------------------
    # method-style wrappers around ops (convenience for model code)
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import ops

        return ops.max(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape) -> "Tensor":
        from repro.tensor import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def flatten_batch(self) -> "Tensor":
        """Flatten every axis except the leading batch axis."""
        return self.reshape(self.shape[0], -1)

    def transpose(self, axes=None) -> "Tensor":
        from repro.tensor import ops

        return ops.transpose(self, axes=axes)

    def exp(self) -> "Tensor":
        from repro.tensor import ops

        return ops.exp(self)

    def log(self) -> "Tensor":
        from repro.tensor import ops

        return ops.log(self)

    def tanh(self) -> "Tensor":
        from repro.tensor import ops

        return ops.tanh(self)

    def sigmoid(self) -> "Tensor":
        from repro.tensor import ops

        return ops.sigmoid(self)

    def relu(self) -> "Tensor":
        from repro.tensor import ops

        return ops.relu(self)

    def clip(self, low: float, high: float) -> "Tensor":
        from repro.tensor import ops

        return ops.clip(self, low, high)


def ensure_tensor(value: ArrayLike) -> Tensor:
    """Return ``value`` as a :class:`Tensor`, wrapping raw arrays/scalars."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def graph_free(data: np.ndarray) -> Tensor:
    """Wrap an ndarray in a :class:`Tensor` with no graph, as cheaply as possible.

    This is the constructor of the inference fast path: callers guarantee
    ``data`` is already a float ndarray (the result of a NumPy kernel), so the
    coercion and flag logic of :meth:`Tensor.__init__` is skipped entirely.
    An SNN evaluation creates one output tensor per op per time step; at smoke
    feature-map sizes the ``__init__`` bookkeeping is a measurable slice of
    the whole step.  The one exception to "no coercion": full reductions
    return NumPy scalars, which are promoted to 0-d arrays so ``Tensor.data``
    is always an ndarray, exactly as :meth:`Tensor.__init__` guarantees.
    """
    if type(data) is not np.ndarray:
        data = np.asarray(data)
    out = Tensor.__new__(Tensor)
    out.data = data
    out.grad = None
    out.requires_grad = False
    out._backward = None
    out._prev = ()
    out.name = ""
    out._events = None
    return out
