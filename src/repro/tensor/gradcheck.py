"""Finite-difference gradient checking and the registry-driven harness.

Used throughout the test-suite to validate every differentiable primitive and
layer against a central-difference approximation.  The check is the standard

    (f(x + eps) - f(x - eps)) / (2 * eps)

applied element by element to each input that requires gradients.

:func:`check_primitive` extends this into a differential harness over the
primitive IR (:mod:`repro.tensor.primitives`): every registered
:class:`~repro.tensor.primitives.Primitive` carries sample inputs, and for
each sample the harness runs

* a finite-difference check of the declared vjp (float64 only — central
  differences are meaningless at float32 precision), skipped for primitives
  marked ``fd_exempt`` (the surrogate spike, whose vjp is deliberately not
  the derivative of its Heaviside forward);
* a jvp/vjp dot-product consistency check: for random cotangent ``w`` and
  tangents ``v``, ``<w, J v>`` computed by the jvp must equal
  ``sum_i <(J^T w)_i, v_i>`` computed by the vjp — the two declared linear
  maps must be mutual transposes;
* at float32, a forward/vjp comparison against the float64 reference under
  the pinned tolerance contract (:mod:`repro.tensor.tolerance`).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.tensor.tensor import Tensor


def numerical_gradient(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of ``func(*inputs).sum()`` w.r.t. ``inputs[index]``.

    The function output is reduced with ``sum()`` so the result has the same
    shape as the chosen input.
    """
    target = inputs[index]
    grad = np.zeros_like(target.data, dtype=np.float64)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(func(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(func(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-5,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> Tuple[bool, float]:
    """Compare analytic and numerical gradients of ``func``.

    Parameters
    ----------
    func:
        Callable mapping the input tensors to an output tensor.  The scalar
        loss used for differentiation is ``output.sum()``.
    inputs:
        Tensors passed positionally to ``func``.  Only those with
        ``requires_grad=True`` are checked.
    eps, atol, rtol:
        Finite-difference step and comparison tolerances.

    Returns
    -------
    (ok, max_abs_error):
        ``ok`` is True when every checked gradient matches within tolerance;
        ``max_abs_error`` is the largest absolute deviation observed.
    """
    for tensor in inputs:
        if tensor.grad is not None:
            tensor.zero_grad()
    output = func(*inputs)
    loss = output.sum()
    loss.backward()

    max_error = 0.0
    ok = True
    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(func, inputs, index, eps=eps)
        error = np.abs(analytic - numeric)
        max_error = max(max_error, float(error.max()) if error.size else 0.0)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            ok = False
    return ok, max_error


def _fd_vjp_check(primitive, inputs, params, eps, atol, rtol) -> float:
    """Central-difference check of the declared vjp on ``sum(forward)``."""
    out, ctx = primitive.forward(*inputs, want_ctx=True, **params)
    needs = tuple(True for _ in inputs)
    grads = primitive.vjp(ctx, np.ones_like(out, dtype=np.float64), needs, **params)
    max_error = 0.0
    for index, analytic in enumerate(grads):
        probe = [np.array(arr, dtype=np.float64) for arr in inputs]
        numeric = np.zeros(probe[index].shape, dtype=np.float64)
        flat = probe[index].reshape(-1)
        numeric_flat = numeric.reshape(-1)
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            plus = float(primitive.forward(*probe, **params)[0].sum())
            flat[i] = original - eps
            minus = float(primitive.forward(*probe, **params)[0].sum())
            flat[i] = original
            numeric_flat[i] = (plus - minus) / (2.0 * eps)
        error = np.abs(np.asarray(analytic, dtype=np.float64) - numeric)
        max_error = max(max_error, float(error.max()) if error.size else 0.0)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            raise AssertionError(
                f"primitive {primitive.name!r} input {index}: vjp disagrees with "
                f"finite differences (max abs error {error.max():.3e})"
            )
    return max_error


def _dot_consistency_check(primitive, inputs, params, rng, rtol, atol) -> None:
    """``<w, J v>`` via the jvp must equal ``sum_i <(J^T w)_i, v_i>`` via the vjp."""
    out, ctx = primitive.forward(*inputs, want_ctx=True, **params)
    cotangent = rng.standard_normal(out.shape)
    tangents = tuple(rng.standard_normal(arr.shape) for arr in inputs)
    out_tangent = primitive.jvp(ctx, tangents, **params)
    needs = tuple(True for _ in inputs)
    grads = primitive.vjp(ctx, cotangent, needs, **params)
    lhs = float((cotangent * out_tangent).sum())
    rhs = 0.0
    for grad, tangent in zip(grads, tangents):
        rhs += float((np.asarray(grad, dtype=np.float64) * tangent).sum())
    if not np.isclose(lhs, rhs, rtol=rtol, atol=atol):
        raise AssertionError(
            f"primitive {primitive.name!r}: jvp/vjp dot products disagree "
            f"(<w, Jv>={lhs:.9g} vs <J^T w, v>={rhs:.9g})"
        )


def check_primitive(
    primitive,
    rng: Optional[np.random.Generator] = None,
    dtype=np.float64,
    eps: float = 1e-5,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> int:
    """Run the registry-driven differential checks over a primitive's samples.

    Returns the number of samples checked (so callers can assert coverage).
    Raises :class:`AssertionError` on the first violated check.
    """
    from repro.tensor.tolerance import assert_float32_contract

    if rng is None:
        rng = np.random.default_rng(0)
    if not primitive.samples:
        raise ValueError(f"primitive {primitive.name!r} declares no samples to check")
    dtype = np.dtype(dtype)
    checked = 0
    for sample in primitive.samples:
        inputs, params = sample(rng, dtype.type)
        if dtype == np.float64:
            if not primitive.fd_exempt:
                _fd_vjp_check(primitive, inputs, params, eps, atol, rtol)
            _dot_consistency_check(primitive, inputs, params, rng, rtol=1e-8, atol=1e-10)
        else:
            # float32: compare forward and vjp against the float64 reference
            # under the pinned tolerance contract; the accumulation length is
            # bounded above by the largest input extent
            inputs64 = tuple(np.asarray(arr, dtype=np.float64) for arr in inputs)
            out32, ctx32 = primitive.forward(*inputs, want_ctx=True, **params)
            out64, ctx64 = primitive.forward(*inputs64, want_ctx=True, **params)
            length = max(int(arr.size) for arr in inputs) if inputs else 1
            assert_float32_contract(
                np.asarray(out32, dtype=np.float64),
                out64,
                accumulation_length=length,
                context=f"primitive {primitive.name} forward",
            )
            cotangent = rng.standard_normal(out64.shape)
            needs = tuple(True for _ in inputs)
            grads32 = primitive.vjp(ctx32, cotangent.astype(dtype.type), needs, **params)
            grads64 = primitive.vjp(ctx64, cotangent, needs, **params)
            for index, (g32, g64) in enumerate(zip(grads32, grads64)):
                assert_float32_contract(
                    np.asarray(g32, dtype=np.float64),
                    np.asarray(g64, dtype=np.float64),
                    accumulation_length=length,
                    context=f"primitive {primitive.name} vjp input {index}",
                )
            _dot_consistency_check(primitive, inputs, params, rng, rtol=1e-2, atol=1e-4)
        checked += 1
    return checked
