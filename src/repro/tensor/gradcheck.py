"""Finite-difference gradient checking.

Used throughout the test-suite to validate every differentiable primitive and
layer against a central-difference approximation.  The check is the standard

    (f(x + eps) - f(x - eps)) / (2 * eps)

applied element by element to each input that requires gradients.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

from repro.tensor.tensor import Tensor


def numerical_gradient(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of ``func(*inputs).sum()`` w.r.t. ``inputs[index]``.

    The function output is reduced with ``sum()`` so the result has the same
    shape as the chosen input.
    """
    target = inputs[index]
    grad = np.zeros_like(target.data, dtype=np.float64)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(func(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(func(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-5,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> Tuple[bool, float]:
    """Compare analytic and numerical gradients of ``func``.

    Parameters
    ----------
    func:
        Callable mapping the input tensors to an output tensor.  The scalar
        loss used for differentiation is ``output.sum()``.
    inputs:
        Tensors passed positionally to ``func``.  Only those with
        ``requires_grad=True`` are checked.
    eps, atol, rtol:
        Finite-difference step and comparison tolerances.

    Returns
    -------
    (ok, max_abs_error):
        ``ok`` is True when every checked gradient matches within tolerance;
        ``max_abs_error`` is the largest absolute deviation observed.
    """
    for tensor in inputs:
        if tensor.grad is not None:
            tensor.zero_grad()
    output = func(*inputs)
    loss = output.sum()
    loss.backward()

    max_error = 0.0
    ok = True
    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(func, inputs, index, eps=eps)
        error = np.abs(analytic - numeric)
        max_error = max(max_error, float(error.max()) if error.size else 0.0)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            ok = False
    return ok, max_error
