"""Differentiable primitives operating on :class:`repro.tensor.Tensor`.

Every function here follows the same pattern:

1. run the vectorised NumPy forward computation;
2. if gradients are enabled and at least one input requires them, attach a
   ``_backward`` closure that maps the output gradient to input gradients and
   accumulates them in place;
3. otherwise take the **graph-free fast path**: return the raw result through
   :func:`repro.tensor.tensor.graph_free`, skipping closure construction,
   parent bookkeeping and every intermediate (masks, argmax maps, inverse
   permutations) that only the backward pass would read.

The fast path is what the evaluation substrate runs on: an SNN validation
pass under :func:`~repro.tensor.tensor.no_grad` executes thousands of these
ops per batch (one per op per layer per time step), so the per-op constant
matters as much as the kernels themselves.  The closures of the slow path
capture only what they need (typically the input data arrays or cheap masks),
keeping memory pressure manageable for BPTT-unrolled spiking networks.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.tensor.sparse import matmul_dispatch, sparse_matmul
from repro.trace import ops_span
from repro.tensor.tensor import (
    Tensor,
    _as_array,
    _unbroadcast,
    ensure_tensor,
    graph_free,
    is_grad_enabled,
)

Axis = Union[None, int, Tuple[int, ...]]


def _make(data: np.ndarray, parents: Sequence[Tensor], backward) -> Tensor:
    """Build an output tensor, wiring the graph only when grad is required."""
    requires = is_grad_enabled() and any(p.requires_grad for p in parents)
    if not requires:
        return graph_free(data)
    out = Tensor(data, requires_grad=True, _prev=[p for p in parents if p.requires_grad or p._prev])
    out._backward = backward(out)
    return out


def _tracked(a: Tensor, b: Optional[Tensor] = None) -> bool:
    """Whether an op over these inputs must record the backward graph."""
    if not is_grad_enabled():
        return False
    if b is None:
        return a.requires_grad
    return a.requires_grad or b.requires_grad


def _ensure_pair(a, b) -> Tuple[Tensor, Tensor]:
    """:func:`ensure_tensor` for binary-op operands, dtype-aware for scalars.

    A bare Python scalar wrapped by :func:`ensure_tensor` becomes a float64
    0-d array, which under NEP 50 promotion would silently upcast a float32
    tensor operand to float64.  Scalars therefore adopt the tensor operand's
    dtype, keeping the substrate's dtype parametrisation end to end.  (Bools
    are excluded: ``True * x`` should keep its established semantics.)
    """
    if isinstance(a, Tensor) and not isinstance(b, Tensor) and type(b) in (int, float):
        return a, graph_free(np.asarray(b, dtype=a.data.dtype))
    if isinstance(b, Tensor) and not isinstance(a, Tensor) and type(a) in (int, float):
        return graph_free(np.asarray(a, dtype=b.data.dtype)), b
    return ensure_tensor(a), ensure_tensor(b)


# ---------------------------------------------------------------------------
# arithmetic
# ---------------------------------------------------------------------------

def add(a, b) -> Tensor:
    """Elementwise/broadcasted addition."""
    a, b = _ensure_pair(a, b)
    data = a.data + b.data
    if not _tracked(a, b):
        return graph_free(data)

    def backward(out: Tensor):
        def _backward() -> None:
            if a.requires_grad:
                a.accumulate_grad(_unbroadcast(out.grad, a.shape))
            if b.requires_grad:
                b.accumulate_grad(_unbroadcast(out.grad, b.shape))

        return _backward

    return _make(data, (a, b), backward)


def sub(a, b) -> Tensor:
    """Elementwise/broadcasted subtraction ``a - b``."""
    a, b = _ensure_pair(a, b)
    data = a.data - b.data
    if not _tracked(a, b):
        return graph_free(data)

    def backward(out: Tensor):
        def _backward() -> None:
            if a.requires_grad:
                a.accumulate_grad(_unbroadcast(out.grad, a.shape))
            if b.requires_grad:
                b.accumulate_grad(_unbroadcast(-out.grad, b.shape))

        return _backward

    return _make(data, (a, b), backward)


def mul(a, b) -> Tensor:
    """Elementwise/broadcasted multiplication."""
    a, b = _ensure_pair(a, b)
    data = a.data * b.data
    if not _tracked(a, b):
        return graph_free(data)

    def backward(out: Tensor):
        def _backward() -> None:
            if a.requires_grad:
                a.accumulate_grad(_unbroadcast(out.grad * b.data, a.shape))
            if b.requires_grad:
                b.accumulate_grad(_unbroadcast(out.grad * a.data, b.shape))

        return _backward

    return _make(data, (a, b), backward)


def div(a, b) -> Tensor:
    """Elementwise/broadcasted division ``a / b``."""
    a, b = _ensure_pair(a, b)
    data = a.data / b.data
    if not _tracked(a, b):
        return graph_free(data)

    def backward(out: Tensor):
        def _backward() -> None:
            if a.requires_grad:
                a.accumulate_grad(_unbroadcast(out.grad / b.data, a.shape))
            if b.requires_grad:
                b.accumulate_grad(_unbroadcast(-out.grad * a.data / (b.data ** 2), b.shape))

        return _backward

    return _make(data, (a, b), backward)


def neg(a) -> Tensor:
    """Elementwise negation."""
    a = ensure_tensor(a)
    data = -a.data
    if not _tracked(a):
        return graph_free(data)

    def backward(out: Tensor):
        def _backward() -> None:
            if a.requires_grad:
                a.accumulate_grad(-out.grad)

        return _backward

    return _make(data, (a,), backward)


def power(a, exponent: float) -> Tensor:
    """Elementwise power with a constant exponent."""
    a = ensure_tensor(a)
    data = a.data ** exponent
    if not _tracked(a):
        return graph_free(data)

    def backward(out: Tensor):
        def _backward() -> None:
            if a.requires_grad:
                a.accumulate_grad(out.grad * exponent * a.data ** (exponent - 1))

        return _backward

    return _make(data, (a,), backward)


def matmul(a, b) -> Tensor:
    """Matrix product supporting 2-D weight matrices and batched inputs.

    On the graph-free path, a 2-D left operand carrying a spike-event list
    (attached by a trusted producer under :func:`repro.tensor.sparse.
    sparse_inference`) is served by the event-driven gather/scatter kernel —
    bit-identical to the dense GEMM for certified shapes — instead of BLAS.
    """
    a, b = ensure_tensor(a), ensure_tensor(b)
    if not _tracked(a, b):
        with ops_span("op.matmul") as op:
            events = matmul_dispatch(a, b)
            if op:
                op.set(
                    route="sparse" if events is not None else "dense",
                    shape=f"{'x'.join(map(str, a.data.shape))}@{'x'.join(map(str, b.data.shape))}",
                )
            if events is not None:
                return graph_free(sparse_matmul(a.data.shape, b.data, events))
            return graph_free(a.data @ b.data)
    data = a.data @ b.data

    def backward(out: Tensor):
        def _backward() -> None:
            if a.requires_grad:
                grad_a = out.grad @ np.swapaxes(b.data, -1, -2)
                a.accumulate_grad(_unbroadcast(grad_a, a.shape))
            if b.requires_grad:
                grad_b = np.swapaxes(a.data, -1, -2) @ out.grad
                b.accumulate_grad(_unbroadcast(grad_b, b.shape))

        return _backward

    return _make(data, (a, b), backward)


# ---------------------------------------------------------------------------
# elementwise nonlinearities
# ---------------------------------------------------------------------------

def exp(a) -> Tensor:
    """Elementwise exponential."""
    a = ensure_tensor(a)
    data = np.exp(a.data)
    if not _tracked(a):
        return graph_free(data)

    def backward(out: Tensor):
        def _backward() -> None:
            if a.requires_grad:
                a.accumulate_grad(out.grad * out.data)

        return _backward

    return _make(data, (a,), backward)


def log(a) -> Tensor:
    """Elementwise natural logarithm."""
    a = ensure_tensor(a)
    data = np.log(a.data)
    if not _tracked(a):
        return graph_free(data)

    def backward(out: Tensor):
        def _backward() -> None:
            if a.requires_grad:
                a.accumulate_grad(out.grad / a.data)

        return _backward

    return _make(data, (a,), backward)


def tanh(a) -> Tensor:
    """Elementwise hyperbolic tangent."""
    a = ensure_tensor(a)
    data = np.tanh(a.data)
    if not _tracked(a):
        return graph_free(data)

    def backward(out: Tensor):
        def _backward() -> None:
            if a.requires_grad:
                a.accumulate_grad(out.grad * (1.0 - out.data ** 2))

        return _backward

    return _make(data, (a,), backward)


def sigmoid(a) -> Tensor:
    """Numerically stable elementwise logistic sigmoid."""
    a = ensure_tensor(a)
    x = a.data
    data = np.empty_like(x)
    pos = x >= 0
    data[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    data[~pos] = ex / (1.0 + ex)
    if not _tracked(a):
        return graph_free(data)

    def backward(out: Tensor):
        def _backward() -> None:
            if a.requires_grad:
                a.accumulate_grad(out.grad * out.data * (1.0 - out.data))

        return _backward

    return _make(data, (a,), backward)


def relu(a) -> Tensor:
    """Elementwise rectified linear unit."""
    a = ensure_tensor(a)
    mask = a.data > 0
    data = a.data * mask
    if not _tracked(a):
        return graph_free(data)

    def backward(out: Tensor):
        def _backward() -> None:
            if a.requires_grad:
                a.accumulate_grad(out.grad * mask)

        return _backward

    return _make(data, (a,), backward)


def clip(a, low: float, high: float) -> Tensor:
    """Clamp values to ``[low, high]``; gradient is zero outside the range."""
    a = ensure_tensor(a)
    data = np.clip(a.data, low, high)
    if not _tracked(a):
        return graph_free(data)
    mask = (a.data >= low) & (a.data <= high)

    def backward(out: Tensor):
        def _backward() -> None:
            if a.requires_grad:
                a.accumulate_grad(out.grad * mask)

        return _backward

    return _make(data, (a,), backward)


def maximum(a, b) -> Tensor:
    """Elementwise maximum; gradient routed to the winning input (ties split)."""
    a, b = _ensure_pair(a, b)
    data = np.maximum(a.data, b.data)
    if not _tracked(a, b):
        return graph_free(data)
    a_wins = a.data > b.data
    tie = a.data == b.data

    def backward(out: Tensor):
        def _backward() -> None:
            if a.requires_grad:
                a.accumulate_grad(_unbroadcast(out.grad * (a_wins + 0.5 * tie), a.shape))
            if b.requires_grad:
                b.accumulate_grad(_unbroadcast(out.grad * (~a_wins & ~tie) + out.grad * 0.5 * tie, b.shape))

        return _backward

    return _make(data, (a, b), backward)


def minimum(a, b) -> Tensor:
    """Elementwise minimum; gradient routed to the winning input (ties split)."""
    a, b = _ensure_pair(a, b)
    data = np.minimum(a.data, b.data)
    if not _tracked(a, b):
        return graph_free(data)
    a_wins = a.data < b.data
    tie = a.data == b.data

    def backward(out: Tensor):
        def _backward() -> None:
            if a.requires_grad:
                a.accumulate_grad(_unbroadcast(out.grad * (a_wins + 0.5 * tie), a.shape))
            if b.requires_grad:
                b.accumulate_grad(_unbroadcast(out.grad * (~a_wins & ~tie) + out.grad * 0.5 * tie, b.shape))

        return _backward

    return _make(data, (a, b), backward)


def where(condition, a, b) -> Tensor:
    """Select ``a`` where ``condition`` else ``b``; condition is non-differentiable."""
    cond = _as_array(condition).astype(bool)
    a, b = ensure_tensor(a), ensure_tensor(b)
    data = np.where(cond, a.data, b.data)
    if not _tracked(a, b):
        return graph_free(data)

    def backward(out: Tensor):
        def _backward() -> None:
            if a.requires_grad:
                a.accumulate_grad(_unbroadcast(out.grad * cond, a.shape))
            if b.requires_grad:
                b.accumulate_grad(_unbroadcast(out.grad * (~cond), b.shape))

        return _backward

    return _make(data, (a, b), backward)


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------

def sum(a, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Sum over ``axis`` (all axes by default)."""
    a = ensure_tensor(a)
    data = a.data.sum(axis=axis, keepdims=keepdims)
    if not _tracked(a):
        return graph_free(data)

    def backward(out: Tensor):
        def _backward() -> None:
            if not a.requires_grad:
                return
            grad = out.grad
            if not keepdims and axis is not None:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                grad = np.expand_dims(grad, axis=tuple(ax % a.data.ndim for ax in axes))
            a.accumulate_grad(np.broadcast_to(grad, a.shape).astype(np.float64))

        return _backward

    return _make(data, (a,), backward)


def mean(a, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Mean over ``axis`` (all axes by default)."""
    a = ensure_tensor(a)
    data = a.data.mean(axis=axis, keepdims=keepdims)
    if not _tracked(a):
        return graph_free(data)
    if axis is None:
        count = a.data.size
    else:
        axes = (axis,) if isinstance(axis, int) else tuple(axis)
        count = 1
        for ax in axes:
            count *= a.data.shape[ax]

    def backward(out: Tensor):
        def _backward() -> None:
            if not a.requires_grad:
                return
            grad = out.grad / count
            if not keepdims and axis is not None:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                grad = np.expand_dims(grad, axis=tuple(ax % a.data.ndim for ax in axes))
            a.accumulate_grad(np.broadcast_to(grad, a.shape).astype(np.float64))

        return _backward

    return _make(data, (a,), backward)


def max(a, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Maximum over ``axis``; gradient flows to (all) argmax positions."""
    a = ensure_tensor(a)
    data = a.data.max(axis=axis, keepdims=keepdims)
    if not _tracked(a):
        return graph_free(data)
    expanded = a.data.max(axis=axis, keepdims=True)
    mask = (a.data == expanded).astype(np.float64)
    mask_norm = mask / mask.sum(axis=axis, keepdims=True)

    def backward(out: Tensor):
        def _backward() -> None:
            if not a.requires_grad:
                return
            grad = out.grad
            if not keepdims and axis is not None:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                grad = np.expand_dims(grad, axis=tuple(ax % a.data.ndim for ax in axes))
            elif not keepdims and axis is None:
                grad = np.asarray(grad).reshape((1,) * a.data.ndim)
            a.accumulate_grad(np.broadcast_to(grad, a.shape) * mask_norm)

        return _backward

    return _make(data, (a,), backward)


# ---------------------------------------------------------------------------
# shape manipulation
# ---------------------------------------------------------------------------

def reshape(a, shape: Sequence[int]) -> Tensor:
    """Reshape without copying data."""
    a = ensure_tensor(a)
    data = a.data.reshape(shape)
    if not _tracked(a):
        out = graph_free(data)
        # flat C-order event indices are invariant under reshape, so a spike
        # tensor stays sparse through Flatten -> Linear
        if a._events is not None:
            out._events = a._events
        return out

    def backward(out: Tensor):
        def _backward() -> None:
            if a.requires_grad:
                a.accumulate_grad(out.grad.reshape(a.shape))

        return _backward

    return _make(data, (a,), backward)


def transpose(a, axes: Optional[Sequence[int]] = None) -> Tensor:
    """Permute axes (reverse order by default)."""
    a = ensure_tensor(a)
    data = np.transpose(a.data, axes=axes)
    if not _tracked(a):
        return graph_free(data)
    if axes is None:
        inverse = None
    else:
        inverse = np.argsort(axes)

    def backward(out: Tensor):
        def _backward() -> None:
            if a.requires_grad:
                a.accumulate_grad(np.transpose(out.grad, axes=inverse))

        return _backward

    return _make(data, (a,), backward)


def broadcast_to(a, shape: Sequence[int]) -> Tensor:
    """Broadcast to ``shape``; backward sums over expanded axes."""
    a = ensure_tensor(a)
    data = np.broadcast_to(a.data, shape).copy()
    if not _tracked(a):
        return graph_free(data)

    def backward(out: Tensor):
        def _backward() -> None:
            if a.requires_grad:
                a.accumulate_grad(_unbroadcast(out.grad, a.shape))

        return _backward

    return _make(data, (a,), backward)


def concat(tensors: Sequence, axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` — the DSC (DenseNet-like) skip primitive."""
    tensors = [ensure_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    if not (is_grad_enabled() and any(t.requires_grad for t in tensors)):
        return graph_free(data)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(out: Tensor):
        def _backward() -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    index = [slice(None)] * out.grad.ndim
                    index[axis] = slice(start, stop)
                    tensor.accumulate_grad(out.grad[tuple(index)])

        return _backward

    return _make(data, tensors, backward)


def stack(tensors: Sequence, axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (used to collect per-time-step outputs)."""
    tensors = [ensure_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    if not (is_grad_enabled() and any(t.requires_grad for t in tensors)):
        return graph_free(data)

    def backward(out: Tensor):
        def _backward() -> None:
            grads = np.split(out.grad, len(tensors), axis=axis)
            for tensor, grad in zip(tensors, grads):
                if tensor.requires_grad:
                    tensor.accumulate_grad(np.squeeze(grad, axis=axis))

        return _backward

    return _make(data, tensors, backward)


def getitem(a, index) -> Tensor:
    """Differentiable indexing/slicing."""
    a = ensure_tensor(a)
    data = a.data[index]
    if not _tracked(a):
        return graph_free(data)

    def backward(out: Tensor):
        def _backward() -> None:
            if a.requires_grad:
                grad = np.zeros_like(a.data, dtype=np.float64)
                np.add.at(grad, index, out.grad)
                a.accumulate_grad(grad)

        return _backward

    return _make(data, (a,), backward)


def pad2d(a, padding: int) -> Tensor:
    """Zero-pad the last two (spatial) axes of an NCHW tensor."""
    a = ensure_tensor(a)
    if padding == 0:
        return a
    pad_width = [(0, 0)] * (a.data.ndim - 2) + [(padding, padding), (padding, padding)]
    data = np.pad(a.data, pad_width)
    if not _tracked(a):
        return graph_free(data)

    def backward(out: Tensor):
        def _backward() -> None:
            if a.requires_grad:
                slices = tuple(
                    slice(None) if p == (0, 0) else slice(p[0], -p[1]) for p in pad_width
                )
                a.accumulate_grad(out.grad[slices])

        return _backward

    return _make(data, (a,), backward)


# ---------------------------------------------------------------------------
# composite ops
# ---------------------------------------------------------------------------

def softmax(a, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    a = ensure_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    data = e / e.sum(axis=axis, keepdims=True)
    if not _tracked(a):
        return graph_free(data)

    def backward(out: Tensor):
        def _backward() -> None:
            if a.requires_grad:
                s = out.data
                dot = (out.grad * s).sum(axis=axis, keepdims=True)
                a.accumulate_grad(s * (out.grad - dot))

        return _backward

    return _make(data, (a,), backward)


def log_softmax(a, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    a = ensure_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - log_sum
    if not _tracked(a):
        return graph_free(data)

    def backward(out: Tensor):
        def _backward() -> None:
            if a.requires_grad:
                softmax_vals = np.exp(out.data)
                grad_sum = out.grad.sum(axis=axis, keepdims=True)
                a.accumulate_grad(out.grad - softmax_vals * grad_sum)

        return _backward

    return _make(data, (a,), backward)


def dropout_mask(a, drop_probability: float, rng: np.random.Generator) -> Tensor:
    """Apply inverted dropout using ``rng``; identity when ``drop_probability<=0``."""
    a = ensure_tensor(a)
    if drop_probability <= 0.0:
        return a
    keep = 1.0 - drop_probability
    mask = (rng.random(a.shape) < keep).astype(np.float64) / keep
    data = a.data * mask
    if not _tracked(a):
        return graph_free(data)

    def backward(out: Tensor):
        def _backward() -> None:
            if a.requires_grad:
                a.accumulate_grad(out.grad * mask)

        return _backward

    return _make(data, (a,), backward)
