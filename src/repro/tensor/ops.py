"""Differentiable ops on :class:`repro.tensor.Tensor`, on the primitive IR.

Every function here follows the same pattern:

1. coerce operands and check whether the backward graph must be recorded;
2. on the **graph-free fast path** run the forward NumPy computation inline
   and return through :func:`repro.tensor.tensor.graph_free`, skipping parent
   bookkeeping and every intermediate (masks, argmax maps, inverse
   permutations) that only the backward pass would read;
3. otherwise dispatch to :func:`repro.tensor.primitives.apply`, which runs
   the registered :class:`~repro.tensor.primitives.Primitive`'s forward with
   residual capture and wires its explicit vjp into the tape.

The fast path is what the evaluation substrate runs on: an SNN validation
pass under :func:`~repro.tensor.tensor.no_grad` executes thousands of these
ops per batch (one per op per layer per time step), so the per-op constant
matters as much as the kernels themselves.  The tracked path is the
*reference* implementation of each op's derivative: the fused temporal
training kernels (:mod:`repro.snn.fused_step`) reuse the same registered
vjp formulas outside the tape and are pinned bit-for-bit against this path.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.tensor import primitives as P
from repro.tensor.primitives import apply as _apply
from repro.tensor.sparse import matmul_dispatch, sparse_matmul
from repro.trace import ops_span
from repro.tensor.tensor import (
    Tensor,
    _as_array,
    ensure_tensor,
    graph_free,
    is_grad_enabled,
)

Axis = Union[None, int, Tuple[int, ...]]


def _tracked(a: Tensor, b: Optional[Tensor] = None) -> bool:
    """Whether an op over these inputs must record the backward graph."""
    if not is_grad_enabled():
        return False
    if b is None:
        return a.requires_grad
    return a.requires_grad or b.requires_grad


def _ensure_pair(a, b) -> Tuple[Tensor, Tensor]:
    """:func:`ensure_tensor` for binary-op operands, dtype-aware for scalars.

    A bare Python scalar wrapped by :func:`ensure_tensor` becomes a float64
    0-d array, which under NEP 50 promotion would silently upcast a float32
    tensor operand to float64.  Scalars therefore adopt the tensor operand's
    dtype, keeping the substrate's dtype parametrisation end to end.  (Bools
    are excluded: ``True * x`` should keep its established semantics.)
    """
    if isinstance(a, Tensor) and not isinstance(b, Tensor) and type(b) in (int, float):
        return a, graph_free(np.asarray(b, dtype=a.data.dtype))
    if isinstance(b, Tensor) and not isinstance(a, Tensor) and type(a) in (int, float):
        return graph_free(np.asarray(a, dtype=b.data.dtype)), b
    return ensure_tensor(a), ensure_tensor(b)


# ---------------------------------------------------------------------------
# arithmetic
# ---------------------------------------------------------------------------

def add(a, b) -> Tensor:
    """Elementwise/broadcasted addition."""
    a, b = _ensure_pair(a, b)
    if not _tracked(a, b):
        return graph_free(a.data + b.data)
    return _apply(P.ADD, (a, b))


def sub(a, b) -> Tensor:
    """Elementwise/broadcasted subtraction ``a - b``."""
    a, b = _ensure_pair(a, b)
    if not _tracked(a, b):
        return graph_free(a.data - b.data)
    return _apply(P.SUB, (a, b))


def mul(a, b) -> Tensor:
    """Elementwise/broadcasted multiplication."""
    a, b = _ensure_pair(a, b)
    if not _tracked(a, b):
        return graph_free(a.data * b.data)
    return _apply(P.MUL, (a, b))


def div(a, b) -> Tensor:
    """Elementwise/broadcasted division ``a / b``."""
    a, b = _ensure_pair(a, b)
    if not _tracked(a, b):
        return graph_free(a.data / b.data)
    return _apply(P.DIV, (a, b))


def neg(a) -> Tensor:
    """Elementwise negation."""
    a = ensure_tensor(a)
    if not _tracked(a):
        return graph_free(-a.data)
    return _apply(P.NEG, (a,))


def power(a, exponent: float) -> Tensor:
    """Elementwise power with a constant exponent."""
    a = ensure_tensor(a)
    if not _tracked(a):
        return graph_free(a.data ** exponent)
    return _apply(P.POWER, (a,), exponent=exponent)


def matmul(a, b) -> Tensor:
    """Matrix product supporting 2-D weight matrices and batched inputs.

    On the graph-free path, a 2-D left operand carrying a spike-event list
    (attached by a trusted producer under :func:`repro.tensor.sparse.
    sparse_inference`) is served by the event-driven gather/scatter kernel —
    bit-identical to the dense GEMM for certified shapes — instead of BLAS.
    """
    a, b = ensure_tensor(a), ensure_tensor(b)
    if not _tracked(a, b):
        with ops_span("op.matmul") as op:
            events = matmul_dispatch(a, b)
            if op:
                op.set(
                    route="sparse" if events is not None else "dense",
                    shape=f"{'x'.join(map(str, a.data.shape))}@{'x'.join(map(str, b.data.shape))}",
                )
            if events is not None:
                return graph_free(sparse_matmul(a.data.shape, b.data, events))
            return graph_free(a.data @ b.data)
    return _apply(P.MATMUL, (a, b))


# ---------------------------------------------------------------------------
# elementwise nonlinearities
# ---------------------------------------------------------------------------

def exp(a) -> Tensor:
    """Elementwise exponential."""
    a = ensure_tensor(a)
    if not _tracked(a):
        return graph_free(np.exp(a.data))
    return _apply(P.EXP, (a,))


def log(a) -> Tensor:
    """Elementwise natural logarithm."""
    a = ensure_tensor(a)
    if not _tracked(a):
        return graph_free(np.log(a.data))
    return _apply(P.LOG, (a,))


def tanh(a) -> Tensor:
    """Elementwise hyperbolic tangent."""
    a = ensure_tensor(a)
    if not _tracked(a):
        return graph_free(np.tanh(a.data))
    return _apply(P.TANH, (a,))


def sigmoid(a) -> Tensor:
    """Numerically stable elementwise logistic sigmoid."""
    a = ensure_tensor(a)
    if not _tracked(a):
        data, _ = P.SIGMOID.forward(a.data)
        return graph_free(data)
    return _apply(P.SIGMOID, (a,))


def relu(a) -> Tensor:
    """Elementwise rectified linear unit."""
    a = ensure_tensor(a)
    if not _tracked(a):
        return graph_free(a.data * (a.data > 0))
    return _apply(P.RELU, (a,))


def clip(a, low: float, high: float) -> Tensor:
    """Clamp values to ``[low, high]``; gradient is zero outside the range."""
    a = ensure_tensor(a)
    if not _tracked(a):
        return graph_free(np.clip(a.data, low, high))
    return _apply(P.CLIP, (a,), low=low, high=high)


def maximum(a, b) -> Tensor:
    """Elementwise maximum; gradient routed to the winning input (ties split)."""
    a, b = _ensure_pair(a, b)
    if not _tracked(a, b):
        return graph_free(np.maximum(a.data, b.data))
    return _apply(P.MAXIMUM, (a, b))


def minimum(a, b) -> Tensor:
    """Elementwise minimum; gradient routed to the winning input (ties split)."""
    a, b = _ensure_pair(a, b)
    if not _tracked(a, b):
        return graph_free(np.minimum(a.data, b.data))
    return _apply(P.MINIMUM, (a, b))


def where(condition, a, b) -> Tensor:
    """Select ``a`` where ``condition`` else ``b``; condition is non-differentiable."""
    cond = _as_array(condition).astype(bool)
    a, b = ensure_tensor(a), ensure_tensor(b)
    if not _tracked(a, b):
        return graph_free(np.where(cond, a.data, b.data))
    return _apply(P.WHERE, (a, b), cond=cond)


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------

def sum(a, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Sum over ``axis`` (all axes by default)."""
    a = ensure_tensor(a)
    if not _tracked(a):
        return graph_free(a.data.sum(axis=axis, keepdims=keepdims))
    return _apply(P.SUM, (a,), axis=axis, keepdims=keepdims)


def mean(a, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Mean over ``axis`` (all axes by default)."""
    a = ensure_tensor(a)
    if not _tracked(a):
        return graph_free(a.data.mean(axis=axis, keepdims=keepdims))
    return _apply(P.MEAN, (a,), axis=axis, keepdims=keepdims)


def max(a, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Maximum over ``axis``; gradient flows to (all) argmax positions."""
    a = ensure_tensor(a)
    if not _tracked(a):
        return graph_free(a.data.max(axis=axis, keepdims=keepdims))
    return _apply(P.MAX, (a,), axis=axis, keepdims=keepdims)


# ---------------------------------------------------------------------------
# shape manipulation
# ---------------------------------------------------------------------------

def reshape(a, shape: Sequence[int]) -> Tensor:
    """Reshape without copying data."""
    a = ensure_tensor(a)
    if not _tracked(a):
        out = graph_free(a.data.reshape(shape))
        # flat C-order event indices are invariant under reshape, so a spike
        # tensor stays sparse through Flatten -> Linear
        if a._events is not None:
            out._events = a._events
        return out
    return _apply(P.RESHAPE, (a,), shape=shape)


def transpose(a, axes: Optional[Sequence[int]] = None) -> Tensor:
    """Permute axes (reverse order by default)."""
    a = ensure_tensor(a)
    if not _tracked(a):
        return graph_free(np.transpose(a.data, axes=axes))
    return _apply(P.TRANSPOSE, (a,), axes=axes)


def broadcast_to(a, shape: Sequence[int]) -> Tensor:
    """Broadcast to ``shape``; backward sums over expanded axes."""
    a = ensure_tensor(a)
    if not _tracked(a):
        return graph_free(np.broadcast_to(a.data, shape).copy())
    return _apply(P.BROADCAST_TO, (a,), shape=shape)


def concat(tensors: Sequence, axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` — the DSC (DenseNet-like) skip primitive."""
    tensors = [ensure_tensor(t) for t in tensors]
    if not (is_grad_enabled() and any(t.requires_grad for t in tensors)):
        return graph_free(np.concatenate([t.data for t in tensors], axis=axis))
    return _apply(P.CONCAT, tensors, axis=axis)


def stack(tensors: Sequence, axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (used to collect per-time-step outputs)."""
    tensors = [ensure_tensor(t) for t in tensors]
    if not (is_grad_enabled() and any(t.requires_grad for t in tensors)):
        return graph_free(np.stack([t.data for t in tensors], axis=axis))
    return _apply(P.STACK, tensors, axis=axis)


def getitem(a, index) -> Tensor:
    """Differentiable indexing/slicing."""
    a = ensure_tensor(a)
    if not _tracked(a):
        return graph_free(a.data[index])
    return _apply(P.GETITEM, (a,), index=index)


def pad2d(a, padding: int) -> Tensor:
    """Zero-pad the last two (spatial) axes of an NCHW tensor."""
    a = ensure_tensor(a)
    if padding == 0:
        return a
    if not _tracked(a):
        pad_width = [(0, 0)] * (a.data.ndim - 2) + [(padding, padding), (padding, padding)]
        return graph_free(np.pad(a.data, pad_width))
    return _apply(P.PAD2D, (a,), padding=padding)


# ---------------------------------------------------------------------------
# composite ops
# ---------------------------------------------------------------------------

def softmax(a, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    a = ensure_tensor(a)
    if not _tracked(a):
        data, _ = P.SOFTMAX.forward(a.data, axis=axis)
        return graph_free(data)
    return _apply(P.SOFTMAX, (a,), axis=axis)


def log_softmax(a, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    a = ensure_tensor(a)
    if not _tracked(a):
        data, _ = P.LOG_SOFTMAX.forward(a.data, axis=axis)
        return graph_free(data)
    return _apply(P.LOG_SOFTMAX, (a,), axis=axis)


def dropout_mask(a, drop_probability: float, rng: np.random.Generator) -> Tensor:
    """Apply inverted dropout using ``rng``; identity when ``drop_probability<=0``."""
    a = ensure_tensor(a)
    if drop_probability <= 0.0:
        return a
    keep = 1.0 - drop_probability
    # the mask is drawn unconditionally so the RNG stream does not depend on
    # whether gradients are being recorded
    mask = (rng.random(a.shape) < keep).astype(np.float64) / keep
    if not _tracked(a):
        return graph_free(a.data * mask)
    return _apply(P.DROPOUT, (a,), mask=mask)
