"""Primitive IR: explicit forward / vjp / jvp declarations for every op.

The autograd layer used to define each operation twice — once as a NumPy
forward and once as a hand-written ``_backward`` closure buried inside
:mod:`repro.tensor.ops`.  This module lifts that knowledge into a small
intermediate representation: a :class:`Primitive` is a named record holding

* ``forward(*arrays, want_ctx=False, **params) -> (out, ctx)`` — the pure
  NumPy forward.  ``ctx`` is the tuple of residuals the backward pass needs
  (input shapes, masks, the output itself, ...) and is only computed when
  ``want_ctx`` is true, so the graph-free inference path pays nothing for it;
* ``vjp(ctx, grad, needs, **params) -> grads`` — the vector-Jacobian product
  mapping the output cotangent to one cotangent per input.  ``needs`` is a
  tuple of booleans (one per input); entries that are not needed may be
  returned as ``None`` and must not be computed (this mirrors the old
  closures, which skipped gradient work for untracked inputs);
* ``jvp(ctx, tangents, **params) -> tangent`` — the Jacobian-vector product
  (forward-mode directional derivative), used by the registry-driven
  differential harness in :mod:`repro.tensor.gradcheck` to cross-check the
  vjp via the dot-product identity ``<w, J v> == <J^T w, v>``.

The graph layer (:func:`apply`) wires a primitive into the define-by-run tape
exactly the way the old closures did: same fast-path check, same ``_prev``
filtering, same accumulation order (inputs in declaration order), same
``_unbroadcast`` handling — so re-expressing :mod:`repro.tensor.ops` and
:mod:`repro.tensor.conv` on top of the registry is behaviour-preserving
bit for bit.  The fused temporal training kernels
(:mod:`repro.snn.fused_step`) are built directly on the registered vjp
formulas instead of the tape.

Declarations for the dense core ops live here; convolution/pooling primitives
are declared in :mod:`repro.tensor.conv` and the surrogate spike primitive in
:mod:`repro.snn.surrogate` (they need those modules' kernels), all landing in
the same registry.

Every primitive also carries ``samples`` — callables ``(rng, dtype) ->
(inputs, params)`` producing representative inputs — so the test-suite can
check the whole registry automatically (``tests/test_primitives.py``).
``fd_exempt`` marks primitives whose vjp is intentionally *not* the true
derivative (the surrogate spike), for which only the jvp/vjp consistency
check applies.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.tensor.tensor import Tensor, _unbroadcast, graph_free, is_grad_enabled

Array = np.ndarray


class Primitive:
    """One differentiable operation: named forward with explicit adjoints."""

    __slots__ = ("name", "forward", "vjp", "jvp", "samples", "fd_exempt")

    def __init__(
        self,
        name: str,
        *,
        forward: Callable,
        vjp: Callable,
        jvp: Callable,
        samples: Sequence[Callable] = (),
        fd_exempt: bool = False,
    ) -> None:
        if vjp is None:
            raise ValueError(f"primitive {name!r} must declare a vjp")
        if jvp is None:
            raise ValueError(f"primitive {name!r} must declare a jvp")
        self.name = str(name)
        self.forward = forward
        self.vjp = vjp
        self.jvp = jvp
        self.samples = tuple(samples)
        self.fd_exempt = bool(fd_exempt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Primitive({self.name!r}, fd_exempt={self.fd_exempt})"


_REGISTRY: Dict[str, Primitive] = {}


def register(primitive: Primitive) -> Primitive:
    """Add ``primitive`` to the registry (names must be unique)."""
    if primitive.name in _REGISTRY:
        raise ValueError(f"primitive {primitive.name!r} is already registered")
    _REGISTRY[primitive.name] = primitive
    return primitive


def get_primitive(name: str) -> Primitive:
    """Look up a registered primitive by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown primitive {name!r}; available: {sorted(_REGISTRY)}") from None


def all_primitives() -> Dict[str, Primitive]:
    """A copy of the registry (name -> primitive)."""
    return dict(_REGISTRY)


def apply(primitive: Primitive, inputs: Sequence[Tensor], **params) -> Tensor:
    """Apply ``primitive`` to tensors, recording the graph when grad is on.

    This is the single place where IR meets tape: the fast-path check, the
    ``_prev`` filtering and the per-input accumulation order are identical to
    the hand-written closures this replaces.
    """
    arrays = tuple(t.data for t in inputs)
    if not (is_grad_enabled() and any(t.requires_grad for t in inputs)):
        out, _ = primitive.forward(*arrays, **params)
        return graph_free(out)
    data, ctx = primitive.forward(*arrays, want_ctx=True, **params)
    out = Tensor(
        data, requires_grad=True, _prev=[t for t in inputs if t.requires_grad or t._prev]
    )
    needs = tuple(t.requires_grad for t in inputs)

    def _backward() -> None:
        grads = primitive.vjp(ctx, out.grad, needs, **params)
        for tensor, grad in zip(inputs, grads):
            if grad is not None and tensor.requires_grad:
                tensor.accumulate_grad(grad)

    out._backward = _backward
    return out


# ---------------------------------------------------------------------------
# sample helpers (for the registry-driven differential harness)
# ---------------------------------------------------------------------------

def _away(values: Array, *points: float, margin: float = 1e-3) -> Array:
    """Shift entries lying within ``margin`` of a non-smooth point past it.

    Finite differences are meaningless straddling a kink (relu at 0, clip at
    its bounds); nudging the offending entries keeps samples well-posed
    without changing their distribution meaningfully.
    """
    for point in points:
        values = values + (np.abs(values - point) < margin) * (2.0 * margin)
    return values


def _sample(shapes: Sequence[Tuple[int, ...]], **params):
    """Standard-normal inputs of the given shapes."""

    def make(rng: np.random.Generator, dtype):
        inputs = tuple(rng.standard_normal(shape).astype(dtype, copy=False) for shape in shapes)
        return inputs, dict(params)

    return make


def _positive_sample(shapes: Sequence[Tuple[int, ...]], **params):
    """Inputs bounded away from zero from above (for log / div / power)."""

    def make(rng: np.random.Generator, dtype):
        inputs = tuple(
            (np.abs(rng.standard_normal(shape)) + 0.5).astype(dtype, copy=False)
            for shape in shapes
        )
        return inputs, dict(params)

    return make


# ---------------------------------------------------------------------------
# arithmetic
# ---------------------------------------------------------------------------

def _add_fwd(a, b, want_ctx=False):
    out = a + b
    return out, ((a.shape, b.shape) if want_ctx else None)


def _add_vjp(ctx, g, needs):
    a_shape, b_shape = ctx
    return (
        _unbroadcast(g, a_shape) if needs[0] else None,
        _unbroadcast(g, b_shape) if needs[1] else None,
    )


def _add_jvp(ctx, tangents):
    ta, tb = tangents
    return ta + tb


ADD = register(
    Primitive(
        "add",
        forward=_add_fwd,
        vjp=_add_vjp,
        jvp=_add_jvp,
        samples=[_sample([(3, 4), (3, 4)]), _sample([(3, 4), (4,)]), _sample([(2, 1, 3), (1, 4, 3)])],
    )
)


def _sub_fwd(a, b, want_ctx=False):
    out = a - b
    return out, ((a.shape, b.shape) if want_ctx else None)


def _sub_vjp(ctx, g, needs):
    a_shape, b_shape = ctx
    return (
        _unbroadcast(g, a_shape) if needs[0] else None,
        _unbroadcast(-g, b_shape) if needs[1] else None,
    )


def _sub_jvp(ctx, tangents):
    ta, tb = tangents
    return ta - tb


SUB = register(
    Primitive(
        "sub",
        forward=_sub_fwd,
        vjp=_sub_vjp,
        jvp=_sub_jvp,
        samples=[_sample([(3, 4), (3, 4)]), _sample([(3, 4), (4,)])],
    )
)


def _mul_fwd(a, b, want_ctx=False):
    out = a * b
    return out, ((a, b) if want_ctx else None)


def _mul_vjp(ctx, g, needs):
    a, b = ctx
    return (
        _unbroadcast(g * b, a.shape) if needs[0] else None,
        _unbroadcast(g * a, b.shape) if needs[1] else None,
    )


def _mul_jvp(ctx, tangents):
    a, b = ctx
    ta, tb = tangents
    return ta * b + a * tb


MUL = register(
    Primitive(
        "mul",
        forward=_mul_fwd,
        vjp=_mul_vjp,
        jvp=_mul_jvp,
        samples=[_sample([(3, 4), (3, 4)]), _sample([(3, 4), (4,)])],
    )
)


def _div_fwd(a, b, want_ctx=False):
    out = a / b
    return out, ((a, b) if want_ctx else None)


def _div_vjp(ctx, g, needs):
    a, b = ctx
    return (
        _unbroadcast(g / b, a.shape) if needs[0] else None,
        _unbroadcast(-g * a / (b ** 2), b.shape) if needs[1] else None,
    )


def _div_jvp(ctx, tangents):
    a, b = ctx
    ta, tb = tangents
    return ta / b - a * tb / (b ** 2)


DIV = register(
    Primitive(
        "div",
        forward=_div_fwd,
        vjp=_div_vjp,
        jvp=_div_jvp,
        samples=[_positive_sample([(3, 4), (3, 4)]), _positive_sample([(3, 4), (4,)])],
    )
)


def _neg_fwd(a, want_ctx=False):
    return -a, None


def _neg_vjp(ctx, g, needs):
    return ((-g) if needs[0] else None,)


def _neg_jvp(ctx, tangents):
    return -tangents[0]


NEG = register(Primitive("neg", forward=_neg_fwd, vjp=_neg_vjp, jvp=_neg_jvp, samples=[_sample([(3, 4)])]))


def _power_fwd(a, want_ctx=False, *, exponent):
    out = a ** exponent
    return out, ((a,) if want_ctx else None)


def _power_vjp(ctx, g, needs, *, exponent):
    (a,) = ctx
    return ((g * exponent * a ** (exponent - 1)) if needs[0] else None,)


def _power_jvp(ctx, tangents, *, exponent):
    (a,) = ctx
    return tangents[0] * exponent * a ** (exponent - 1)


POWER = register(
    Primitive(
        "power",
        forward=_power_fwd,
        vjp=_power_vjp,
        jvp=_power_jvp,
        samples=[_positive_sample([(3, 4)], exponent=2.0), _positive_sample([(3, 4)], exponent=0.5)],
    )
)


def _matmul_fwd(a, b, want_ctx=False):
    out = a @ b
    return out, ((a, b) if want_ctx else None)


def _matmul_vjp(ctx, g, needs):
    a, b = ctx
    grad_a = grad_b = None
    if needs[0]:
        grad_a = _unbroadcast(g @ np.swapaxes(b, -1, -2), a.shape)
    if needs[1]:
        grad_b = _unbroadcast(np.swapaxes(a, -1, -2) @ g, b.shape)
    return grad_a, grad_b


def _matmul_jvp(ctx, tangents):
    a, b = ctx
    ta, tb = tangents
    return ta @ b + a @ tb


MATMUL = register(
    Primitive(
        "matmul",
        forward=_matmul_fwd,
        vjp=_matmul_vjp,
        jvp=_matmul_jvp,
        samples=[_sample([(3, 4), (4, 5)]), _sample([(2, 3, 4), (4, 5)])],
    )
)


# ---------------------------------------------------------------------------
# elementwise nonlinearities
# ---------------------------------------------------------------------------

def _exp_fwd(a, want_ctx=False):
    out = np.exp(a)
    return out, ((out,) if want_ctx else None)


def _exp_vjp(ctx, g, needs):
    (out,) = ctx
    return ((g * out) if needs[0] else None,)


def _exp_jvp(ctx, tangents):
    (out,) = ctx
    return tangents[0] * out


EXP = register(Primitive("exp", forward=_exp_fwd, vjp=_exp_vjp, jvp=_exp_jvp, samples=[_sample([(3, 4)])]))


def _log_fwd(a, want_ctx=False):
    out = np.log(a)
    return out, ((a,) if want_ctx else None)


def _log_vjp(ctx, g, needs):
    (a,) = ctx
    return ((g / a) if needs[0] else None,)


def _log_jvp(ctx, tangents):
    (a,) = ctx
    return tangents[0] / a


LOG = register(Primitive("log", forward=_log_fwd, vjp=_log_vjp, jvp=_log_jvp, samples=[_positive_sample([(3, 4)])]))


def _tanh_fwd(a, want_ctx=False):
    out = np.tanh(a)
    return out, ((out,) if want_ctx else None)


def _tanh_vjp(ctx, g, needs):
    (out,) = ctx
    return ((g * (1.0 - out ** 2)) if needs[0] else None,)


def _tanh_jvp(ctx, tangents):
    (out,) = ctx
    return tangents[0] * (1.0 - out ** 2)


TANH = register(Primitive("tanh", forward=_tanh_fwd, vjp=_tanh_vjp, jvp=_tanh_jvp, samples=[_sample([(3, 4)])]))


def _sigmoid_fwd(a, want_ctx=False):
    out = np.empty_like(a)
    pos = a >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-a[pos]))
    ex = np.exp(a[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out, ((out,) if want_ctx else None)


def _sigmoid_vjp(ctx, g, needs):
    (out,) = ctx
    return ((g * out * (1.0 - out)) if needs[0] else None,)


def _sigmoid_jvp(ctx, tangents):
    (out,) = ctx
    return tangents[0] * out * (1.0 - out)


SIGMOID = register(
    Primitive("sigmoid", forward=_sigmoid_fwd, vjp=_sigmoid_vjp, jvp=_sigmoid_jvp, samples=[_sample([(3, 4)])])
)


def _relu_fwd(a, want_ctx=False):
    mask = a > 0
    out = a * mask
    return out, ((mask,) if want_ctx else None)


def _relu_vjp(ctx, g, needs):
    (mask,) = ctx
    return ((g * mask) if needs[0] else None,)


def _relu_jvp(ctx, tangents):
    (mask,) = ctx
    return tangents[0] * mask


def _relu_sample(rng, dtype):
    return (_away(rng.standard_normal((3, 4)), 0.0).astype(dtype, copy=False),), {}


RELU = register(Primitive("relu", forward=_relu_fwd, vjp=_relu_vjp, jvp=_relu_jvp, samples=[_relu_sample]))


def _clip_fwd(a, want_ctx=False, *, low, high):
    out = np.clip(a, low, high)
    if not want_ctx:
        return out, None
    return out, ((a >= low) & (a <= high),)


def _clip_vjp(ctx, g, needs, *, low, high):
    (mask,) = ctx
    return ((g * mask) if needs[0] else None,)


def _clip_jvp(ctx, tangents, *, low, high):
    (mask,) = ctx
    return tangents[0] * mask


def _clip_sample(rng, dtype):
    values = _away(rng.standard_normal((3, 4)), -0.7, 0.7)
    return (values.astype(dtype, copy=False),), {"low": -0.7, "high": 0.7}


CLIP = register(Primitive("clip", forward=_clip_fwd, vjp=_clip_vjp, jvp=_clip_jvp, samples=[_clip_sample]))


def _extrema_ctx(a, b, a_wins):
    tie = a == b
    return a_wins, tie, a.shape, b.shape


def _maximum_fwd(a, b, want_ctx=False):
    out = np.maximum(a, b)
    if not want_ctx:
        return out, None
    return out, _extrema_ctx(a, b, a > b)


def _minimum_fwd(a, b, want_ctx=False):
    out = np.minimum(a, b)
    if not want_ctx:
        return out, None
    return out, _extrema_ctx(a, b, a < b)


def _extrema_vjp(ctx, g, needs):
    a_wins, tie, a_shape, b_shape = ctx
    return (
        _unbroadcast(g * (a_wins + 0.5 * tie), a_shape) if needs[0] else None,
        _unbroadcast(g * (~a_wins & ~tie) + g * 0.5 * tie, b_shape) if needs[1] else None,
    )


def _extrema_jvp(ctx, tangents):
    a_wins, tie, _, _ = ctx
    ta, tb = tangents
    return ta * (a_wins + 0.5 * tie) + tb * ((~a_wins & ~tie) + 0.5 * tie)


MAXIMUM = register(
    Primitive(
        "maximum",
        forward=_maximum_fwd,
        vjp=_extrema_vjp,
        jvp=_extrema_jvp,
        samples=[_sample([(3, 4), (3, 4)])],
    )
)

MINIMUM = register(
    Primitive(
        "minimum",
        forward=_minimum_fwd,
        vjp=_extrema_vjp,
        jvp=_extrema_jvp,
        samples=[_sample([(3, 4), (3, 4)])],
    )
)


def _where_fwd(a, b, want_ctx=False, *, cond):
    out = np.where(cond, a, b)
    return out, ((a.shape, b.shape) if want_ctx else None)


def _where_vjp(ctx, g, needs, *, cond):
    a_shape, b_shape = ctx
    return (
        _unbroadcast(g * cond, a_shape) if needs[0] else None,
        _unbroadcast(g * (~cond), b_shape) if needs[1] else None,
    )


def _where_jvp(ctx, tangents, *, cond):
    ta, tb = tangents
    return np.where(cond, ta, tb)


def _where_sample(rng, dtype):
    inputs = tuple(rng.standard_normal((3, 4)).astype(dtype, copy=False) for _ in range(2))
    return inputs, {"cond": rng.random((3, 4)) > 0.5}


WHERE = register(Primitive("where", forward=_where_fwd, vjp=_where_vjp, jvp=_where_jvp, samples=[_where_sample]))


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------

def _reduce_expand(grad, axis, keepdims, ndim):
    """Re-insert reduced axes exactly the way the old closures did."""
    if not keepdims and axis is not None:
        axes = (axis,) if isinstance(axis, int) else tuple(axis)
        grad = np.expand_dims(grad, axis=tuple(ax % ndim for ax in axes))
    return grad


def _sum_fwd(a, want_ctx=False, *, axis=None, keepdims=False):
    out = a.sum(axis=axis, keepdims=keepdims)
    return out, ((a.shape,) if want_ctx else None)


def _sum_vjp(ctx, g, needs, *, axis=None, keepdims=False):
    if not needs[0]:
        return (None,)
    (shape,) = ctx
    grad = _reduce_expand(g, axis, keepdims, len(shape))
    return (np.broadcast_to(grad, shape).astype(np.float64),)


def _sum_jvp(ctx, tangents, *, axis=None, keepdims=False):
    return tangents[0].sum(axis=axis, keepdims=keepdims)


SUM = register(
    Primitive(
        "sum",
        forward=_sum_fwd,
        vjp=_sum_vjp,
        jvp=_sum_jvp,
        samples=[
            _sample([(3, 4)]),
            _sample([(3, 4)], axis=0),
            _sample([(2, 3, 4)], axis=(0, 2), keepdims=True),
        ],
    )
)


def _reduce_count(shape, axis):
    if axis is None:
        count = 1
        for size in shape:
            count *= size
        return count
    axes = (axis,) if isinstance(axis, int) else tuple(axis)
    count = 1
    for ax in axes:
        count *= shape[ax]
    return count


def _mean_fwd(a, want_ctx=False, *, axis=None, keepdims=False):
    out = a.mean(axis=axis, keepdims=keepdims)
    return out, ((a.shape,) if want_ctx else None)


def _mean_vjp(ctx, g, needs, *, axis=None, keepdims=False):
    if not needs[0]:
        return (None,)
    (shape,) = ctx
    grad = g / _reduce_count(shape, axis)
    grad = _reduce_expand(grad, axis, keepdims, len(shape))
    return (np.broadcast_to(grad, shape).astype(np.float64),)


def _mean_jvp(ctx, tangents, *, axis=None, keepdims=False):
    return tangents[0].mean(axis=axis, keepdims=keepdims)


MEAN = register(
    Primitive(
        "mean",
        forward=_mean_fwd,
        vjp=_mean_vjp,
        jvp=_mean_jvp,
        samples=[
            _sample([(3, 4)]),
            _sample([(2, 3, 4)], axis=(0, 2)),
            _sample([(2, 3, 4, 2)], axis=(0, 2, 3), keepdims=True),
        ],
    )
)


def _max_fwd(a, want_ctx=False, *, axis=None, keepdims=False):
    out = a.max(axis=axis, keepdims=keepdims)
    if not want_ctx:
        return out, None
    expanded = a.max(axis=axis, keepdims=True)
    mask = (a == expanded).astype(np.float64)
    mask_norm = mask / mask.sum(axis=axis, keepdims=True)
    return out, (mask_norm, a.shape)


def _max_vjp(ctx, g, needs, *, axis=None, keepdims=False):
    if not needs[0]:
        return (None,)
    mask_norm, shape = ctx
    ndim = len(shape)
    grad = g
    if not keepdims and axis is not None:
        axes = (axis,) if isinstance(axis, int) else tuple(axis)
        grad = np.expand_dims(grad, axis=tuple(ax % ndim for ax in axes))
    elif not keepdims and axis is None:
        grad = np.asarray(grad).reshape((1,) * ndim)
    return (np.broadcast_to(grad, shape) * mask_norm,)


def _max_jvp(ctx, tangents, *, axis=None, keepdims=False):
    mask_norm, _ = ctx
    return (mask_norm * tangents[0]).sum(axis=axis, keepdims=keepdims)


MAX = register(
    Primitive(
        "max",
        forward=_max_fwd,
        vjp=_max_vjp,
        jvp=_max_jvp,
        samples=[_sample([(3, 4)]), _sample([(3, 4)], axis=1), _sample([(2, 3, 4)], axis=(1,), keepdims=True)],
    )
)


# ---------------------------------------------------------------------------
# shape manipulation
# ---------------------------------------------------------------------------

def _reshape_fwd(a, want_ctx=False, *, shape):
    out = a.reshape(shape)
    return out, ((a.shape,) if want_ctx else None)


def _reshape_vjp(ctx, g, needs, *, shape):
    (a_shape,) = ctx
    return (g.reshape(a_shape) if needs[0] else None,)


def _reshape_jvp(ctx, tangents, *, shape):
    return tangents[0].reshape(shape)


RESHAPE = register(
    Primitive(
        "reshape",
        forward=_reshape_fwd,
        vjp=_reshape_vjp,
        jvp=_reshape_jvp,
        samples=[_sample([(3, 4)], shape=(2, 6)), _sample([(2, 3, 4)], shape=(6, 4))],
    )
)


def _transpose_fwd(a, want_ctx=False, *, axes=None):
    out = np.transpose(a, axes=axes)
    if not want_ctx:
        return out, None
    inverse = None if axes is None else np.argsort(axes)
    return out, (inverse,)


def _transpose_vjp(ctx, g, needs, *, axes=None):
    (inverse,) = ctx
    return (np.transpose(g, axes=inverse) if needs[0] else None,)


def _transpose_jvp(ctx, tangents, *, axes=None):
    return np.transpose(tangents[0], axes=axes)


TRANSPOSE = register(
    Primitive(
        "transpose",
        forward=_transpose_fwd,
        vjp=_transpose_vjp,
        jvp=_transpose_jvp,
        samples=[_sample([(3, 4)]), _sample([(2, 3, 4)], axes=(1, 2, 0))],
    )
)


def _broadcast_to_fwd(a, want_ctx=False, *, shape):
    out = np.broadcast_to(a, shape).copy()
    return out, ((a.shape,) if want_ctx else None)


def _broadcast_to_vjp(ctx, g, needs, *, shape):
    (a_shape,) = ctx
    return (_unbroadcast(g, a_shape) if needs[0] else None,)


def _broadcast_to_jvp(ctx, tangents, *, shape):
    return np.broadcast_to(tangents[0], shape).copy()


BROADCAST_TO = register(
    Primitive(
        "broadcast_to",
        forward=_broadcast_to_fwd,
        vjp=_broadcast_to_vjp,
        jvp=_broadcast_to_jvp,
        samples=[_sample([(1, 4)], shape=(3, 4)), _sample([(3, 1)], shape=(3, 5))],
    )
)


def _concat_fwd(*arrays, want_ctx=False, axis=0):
    out = np.concatenate(arrays, axis=axis)
    if not want_ctx:
        return out, None
    sizes = [array.shape[axis] for array in arrays]
    offsets = np.cumsum([0] + sizes)
    return out, (offsets,)


def _concat_vjp(ctx, g, needs, *, axis=0):
    (offsets,) = ctx
    grads = []
    for index, (start, stop) in enumerate(zip(offsets[:-1], offsets[1:])):
        if not needs[index]:
            grads.append(None)
            continue
        slicer = [slice(None)] * g.ndim
        slicer[axis] = slice(start, stop)
        grads.append(g[tuple(slicer)])
    return grads


def _concat_jvp(ctx, tangents, *, axis=0):
    return np.concatenate(tangents, axis=axis)


CONCAT = register(
    Primitive(
        "concat",
        forward=_concat_fwd,
        vjp=_concat_vjp,
        jvp=_concat_jvp,
        samples=[_sample([(2, 3), (2, 3), (2, 3)], axis=0), _sample([(2, 2), (2, 3)], axis=1)],
    )
)


def _stack_fwd(*arrays, want_ctx=False, axis=0):
    out = np.stack(arrays, axis=axis)
    return out, ((len(arrays),) if want_ctx else None)


def _stack_vjp(ctx, g, needs, *, axis=0):
    (count,) = ctx
    parts = np.split(g, count, axis=axis)
    return [
        np.squeeze(part, axis=axis) if needed else None for part, needed in zip(parts, needs)
    ]


def _stack_jvp(ctx, tangents, *, axis=0):
    return np.stack(tangents, axis=axis)


STACK = register(
    Primitive(
        "stack",
        forward=_stack_fwd,
        vjp=_stack_vjp,
        jvp=_stack_jvp,
        samples=[_sample([(2, 3), (2, 3)], axis=0), _sample([(2, 3), (2, 3), (2, 3)], axis=1)],
    )
)


def _getitem_fwd(a, want_ctx=False, *, index):
    out = a[index]
    return out, ((a.shape, a.dtype) if want_ctx else None)


def _getitem_vjp(ctx, g, needs, *, index):
    if not needs[0]:
        return (None,)
    shape, dtype = ctx
    grad = np.zeros(shape, dtype=np.float64)
    np.add.at(grad, index, g)
    return (grad,)


def _getitem_jvp(ctx, tangents, *, index):
    return tangents[0][index]


def _getitem_sample(rng, dtype):
    values = rng.standard_normal((4, 3)).astype(dtype, copy=False)
    return (values,), {"index": np.array([0, 2, 2, 1])}


GETITEM = register(
    Primitive("getitem", forward=_getitem_fwd, vjp=_getitem_vjp, jvp=_getitem_jvp, samples=[_getitem_sample])
)


def _pad2d_fwd(a, want_ctx=False, *, padding):
    pad_width = [(0, 0)] * (a.ndim - 2) + [(padding, padding), (padding, padding)]
    out = np.pad(a, pad_width)
    return out, ((tuple(pad_width),) if want_ctx else None)


def _pad2d_vjp(ctx, g, needs, *, padding):
    if not needs[0]:
        return (None,)
    (pad_width,) = ctx
    slices = tuple(slice(None) if p == (0, 0) else slice(p[0], -p[1]) for p in pad_width)
    return (g[slices],)


def _pad2d_jvp(ctx, tangents, *, padding):
    ta = tangents[0]
    pad_width = [(0, 0)] * (ta.ndim - 2) + [(padding, padding), (padding, padding)]
    return np.pad(ta, pad_width)


PAD2D = register(
    Primitive(
        "pad2d",
        forward=_pad2d_fwd,
        vjp=_pad2d_vjp,
        jvp=_pad2d_jvp,
        samples=[_sample([(2, 3, 4, 4)], padding=1)],
    )
)


# ---------------------------------------------------------------------------
# composite ops
# ---------------------------------------------------------------------------

def _softmax_fwd(a, want_ctx=False, *, axis=-1):
    shifted = a - a.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)
    return out, ((out,) if want_ctx else None)


def _softmax_vjp(ctx, g, needs, *, axis=-1):
    if not needs[0]:
        return (None,)
    (out,) = ctx
    dot = (g * out).sum(axis=axis, keepdims=True)
    return (out * (g - dot),)


def _softmax_jvp(ctx, tangents, *, axis=-1):
    (out,) = ctx
    ta = tangents[0]
    return out * (ta - (out * ta).sum(axis=axis, keepdims=True))


SOFTMAX = register(
    Primitive(
        "softmax",
        forward=_softmax_fwd,
        vjp=_softmax_vjp,
        jvp=_softmax_jvp,
        samples=[_sample([(3, 4)]), _sample([(2, 3, 4)], axis=1)],
    )
)


def _log_softmax_fwd(a, want_ctx=False, *, axis=-1):
    shifted = a - a.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_sum
    return out, ((out,) if want_ctx else None)


def _log_softmax_vjp(ctx, g, needs, *, axis=-1):
    if not needs[0]:
        return (None,)
    (out,) = ctx
    softmax_vals = np.exp(out)
    grad_sum = g.sum(axis=axis, keepdims=True)
    return (g - softmax_vals * grad_sum,)


def _log_softmax_jvp(ctx, tangents, *, axis=-1):
    (out,) = ctx
    ta = tangents[0]
    return ta - (np.exp(out) * ta).sum(axis=axis, keepdims=True)


LOG_SOFTMAX = register(
    Primitive(
        "log_softmax",
        forward=_log_softmax_fwd,
        vjp=_log_softmax_vjp,
        jvp=_log_softmax_jvp,
        samples=[_sample([(3, 4)]), _sample([(2, 3, 4)], axis=1)],
    )
)


def _dropout_fwd(a, want_ctx=False, *, mask):
    out = a * mask
    return out, None


def _dropout_vjp(ctx, g, needs, *, mask):
    return ((g * mask) if needs[0] else None,)


def _dropout_jvp(ctx, tangents, *, mask):
    return tangents[0] * mask


def _dropout_sample(rng, dtype):
    values = rng.standard_normal((3, 4)).astype(dtype, copy=False)
    keep = 0.75
    mask = (rng.random((3, 4)) < keep).astype(np.float64) / keep
    return (values,), {"mask": mask}


DROPOUT = register(
    Primitive("dropout", forward=_dropout_fwd, vjp=_dropout_vjp, jvp=_dropout_jvp, samples=[_dropout_sample])
)
