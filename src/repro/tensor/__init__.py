"""Reverse-mode automatic differentiation on top of NumPy.

This package is the lowest-level substrate of the reproduction.  The paper
trains spiking neural networks with surrogate-gradient backpropagation through
time using snnTorch/PyTorch; since no deep-learning framework is available in
this environment we implement the required machinery from scratch:

* :class:`repro.tensor.Tensor` — an n-dimensional array with a ``grad`` buffer
  and a recorded backward graph (define-by-run, reverse-mode).
* :mod:`repro.tensor.primitives` — the primitive IR: a registry declaring
  every op's forward, vjp and jvp explicitly, shared by the graph autograd
  (the reference) and the fused temporal training kernels.
* :mod:`repro.tensor.ops` — differentiable primitives (arithmetic, matmul,
  reductions, reshaping, concatenation, indexing, nonlinearities), expressed
  on the primitive IR.
* :mod:`repro.tensor.conv` — im2col-based 2-D convolution and pooling with
  hand-written backward passes (the hot path of every experiment).
* :mod:`repro.tensor.gradcheck` — finite-difference gradient checking used by
  the test-suite to validate every primitive.
* :mod:`repro.tensor.sparse` — event-driven sparse inference: spike-event
  lists, per-shape GEMM certification and the gather/scatter kernels.
* :mod:`repro.tensor.tolerance` — the pinned float32-vs-float64 tolerance
  contract for the dtype-parametrised substrate.

Only vectorised NumPy is used in the hot paths (see the HPC guide: avoid
Python-level loops over array elements, prefer views over copies, use in-place
accumulation for gradients).
"""

from repro.tensor.tensor import Tensor, graph_free, no_grad, is_grad_enabled
from repro.tensor.workspace import WorkspacePool, clear_workspaces
from repro.tensor.sparse import (
    SPARSE_CROSSOVER,
    aggregate_sparse_counters,
    merge_sparse_counters,
    reset_sparse_counters,
    sparse_counters,
    sparse_crossover,
    sparse_enabled,
    sparse_inference,
)
from repro.tensor.tolerance import (
    FLOAT32_SAFETY,
    assert_float32_contract,
    float32_tolerance,
    float32_within_contract,
)
from repro.tensor import ops
from repro.tensor.ops import (
    add,
    broadcast_to,
    concat,
    clip,
    div,
    dropout_mask,
    exp,
    getitem,
    log,
    log_softmax,
    matmul,
    maximum,
    mean,
    minimum,
    mul,
    neg,
    pad2d,
    power,
    relu,
    reshape,
    sigmoid,
    softmax,
    stack,
    sub,
    sum as tensor_sum,
    tanh,
    transpose,
    where,
)
from repro.tensor.conv import avg_pool2d, conv2d, global_avg_pool2d, max_pool2d
from repro.tensor.gradcheck import check_primitive, gradcheck, numerical_gradient
from repro.tensor.primitives import Primitive, all_primitives, apply, get_primitive, register
from repro.tensor.random import default_rng, seed_everything

__all__ = [
    "Tensor",
    "graph_free",
    "no_grad",
    "is_grad_enabled",
    "WorkspacePool",
    "clear_workspaces",
    "SPARSE_CROSSOVER",
    "sparse_inference",
    "sparse_enabled",
    "sparse_crossover",
    "sparse_counters",
    "aggregate_sparse_counters",
    "merge_sparse_counters",
    "reset_sparse_counters",
    "FLOAT32_SAFETY",
    "float32_tolerance",
    "float32_within_contract",
    "assert_float32_contract",
    "ops",
    "add",
    "broadcast_to",
    "concat",
    "clip",
    "div",
    "dropout_mask",
    "exp",
    "getitem",
    "log",
    "log_softmax",
    "matmul",
    "maximum",
    "mean",
    "minimum",
    "mul",
    "neg",
    "pad2d",
    "power",
    "relu",
    "reshape",
    "sigmoid",
    "softmax",
    "stack",
    "sub",
    "tensor_sum",
    "tanh",
    "transpose",
    "where",
    "avg_pool2d",
    "conv2d",
    "global_avg_pool2d",
    "max_pool2d",
    "gradcheck",
    "check_primitive",
    "numerical_gradient",
    "Primitive",
    "register",
    "get_primitive",
    "all_primitives",
    "apply",
    "default_rng",
    "seed_everything",
]
