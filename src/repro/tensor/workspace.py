"""Per-thread workspace buffers for graph-free inference kernels.

The inference fast path (see :func:`repro.tensor.tensor.no_grad`) re-runs the
same convolution geometries once per simulation step, per layer, per batch.
Allocating the im2col scratch arrays — the zero-padded input and the lowered
column matrix — fresh on every call costs more than the GEMM they feed at the
feature-map sizes the experiments use.  This module keeps one reusable buffer
per ``(thread, key)``; a kernel borrows it for the duration of a single call
and releases it implicitly by returning.

Aliasing contract (pinned by ``tests/test_inference_fastpath.py``):

* workspace buffers hold **transient scratch only**.  Nothing reachable from
  a returned :class:`~repro.tensor.tensor.Tensor` may live in a workspace
  buffer — outputs are always freshly allocated — so interleaved or nested
  evaluations can never observe one another's scratch;
* buffers are keyed per thread (:class:`threading.local`), so concurrent
  evaluation threads never share scratch;
* a borrowed buffer's contents are only meaningful when
  :meth:`WorkspacePool.buffer` reports that the stored *signature* matched —
  callers relying on leftover contents (e.g. zero padding borders) must pass
  the signature that makes that reuse valid and re-initialise on mismatch.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Optional, Sequence, Tuple

import numpy as np


class WorkspacePool:
    """Grow-only, per-thread scratch buffers keyed by kernel name.

    One flat buffer is kept per key and reshaped to whatever the current call
    needs; capacity only grows, so steady-state inference performs no
    allocations in the pooled kernels.
    """

    def __init__(self) -> None:
        self._local = threading.local()

    def _entries(self) -> Dict[str, dict]:
        entries = getattr(self._local, "entries", None)
        if entries is None:
            entries = {}
            self._local.entries = entries
        return entries

    def buffer(
        self,
        key: str,
        shape: Sequence[int],
        dtype=np.float64,
        signature: Optional[Tuple] = None,
    ) -> Tuple[np.ndarray, bool]:
        """Borrow the scratch array for ``key`` shaped ``shape``.

        Returns ``(array, matched)``.  ``matched`` is ``True`` only when the
        returned array is the same storage as the previous call for ``key``
        *and* that call used an equal ``signature`` — the one case where
        leftover contents may be relied upon.  On ``False`` the contents are
        undefined and the caller must (re)initialise what it reads.
        """
        entries = self._entries()
        entry = entries.get(key)
        if entry is not None and entry["shape"] == shape and entry["dtype_arg"] is dtype:
            # steady-state hit: same geometry as the previous borrow — return
            # the cached shaped view without re-deriving size/dtype/reshape
            matched = signature is not None and entry["signature"] == signature
            entry["signature"] = signature
            return entry["view"], matched
        size = math.prod(shape)
        dt = np.dtype(dtype)
        flat = entry["flat"] if entry is not None else None
        if flat is None or flat.size < size or flat.dtype != dt:
            flat = np.empty(size, dtype=dt)
            entry = None
        view = flat[:size].reshape(shape)
        matched = signature is not None and entry is not None and entry["signature"] == signature
        entries[key] = {
            "flat": flat,
            "shape": tuple(shape),
            "dtype_arg": dtype,
            "view": view,
            "signature": signature,
        }
        return view, matched

    def clear(self) -> None:
        """Drop this thread's buffers (tests / memory-pressure hook)."""
        self._local.entries = {}


#: process-wide pool used by the inference kernels in :mod:`repro.tensor.conv`
_POOL = WorkspacePool()


def workspace(key: str, shape: Sequence[int], dtype=np.float64, signature: Optional[Tuple] = None):
    """Module-level convenience over the shared :data:`_POOL`."""
    return _POOL.buffer(key, shape, dtype=dtype, signature=signature)


def clear_workspaces() -> None:
    """Release the calling thread's pooled buffers."""
    _POOL.clear()
