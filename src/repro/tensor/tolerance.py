"""The float32 tolerance contract.

Bit-equality between the float32 substrate and the float64 reference is
impossible — every rounding step differs — so the contract *is* the spec:
a float32 computation whose longest accumulation chain has length ``n``
must agree with the float64 reference to within

    ``FLOAT32_SAFETY * eps32 * n * (scale + |reference|)``

where ``scale = max(1, max|reference|)`` guards elements near zero (their
absolute error is set by the magnitude of the intermediate terms that
cancelled, not by their own tiny magnitude).  The linear-in-``n`` growth is
the standard forward error bound for sequential summation (gamma_n ≈ n*eps
for n*eps << 1); :data:`FLOAT32_SAFETY` absorbs the difference between that
idealised model and real kernels (pairwise BLAS accumulation usually does
*better*; fused surrogate/neuron chains can do slightly worse per step).

Tests pin the contract via :func:`assert_float32_contract`; the docs
(``docs/architecture.md``) state it.  Tightening ``FLOAT32_SAFETY`` is a
contract change and must update both.
"""

from __future__ import annotations

import numpy as np

#: multiplier absorbing non-ideal accumulation order and fused op chains;
#: part of the pinned contract — change only together with docs and tests.
FLOAT32_SAFETY = 8.0

#: machine epsilon of float32 (2**-23)
FLOAT32_EPS = float(np.finfo(np.float32).eps)


def float32_tolerance(accumulation_length: int) -> float:
    """Relative tolerance granted to a float32 chain of ``accumulation_length`` terms."""
    if accumulation_length < 1:
        raise ValueError(
            f"accumulation_length must be >= 1, got {accumulation_length}"
        )
    return FLOAT32_SAFETY * FLOAT32_EPS * float(accumulation_length)


def float32_within_contract(
    actual: np.ndarray, reference: np.ndarray, accumulation_length: int
) -> bool:
    """Whether ``actual`` (float32 result) meets the contract against ``reference``.

    ``reference`` is the float64 result of the same computation;
    ``accumulation_length`` is the longest accumulation chain feeding any
    output element (e.g. ``c_in * kh * kw + 1`` for a biased conv).
    """
    actual64 = np.asarray(actual, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    tol = float32_tolerance(accumulation_length)
    scale = max(1.0, float(np.max(np.abs(reference))) if reference.size else 0.0)
    bound = tol * (scale + np.abs(reference))
    return bool(np.all(np.abs(actual64 - reference) <= bound))


def assert_float32_contract(
    actual: np.ndarray,
    reference: np.ndarray,
    accumulation_length: int,
    context: str = "",
) -> None:
    """Assert the contract, reporting the worst violation when it fails."""
    actual64 = np.asarray(actual, dtype=np.float64)
    reference64 = np.asarray(reference, dtype=np.float64)
    tol = float32_tolerance(accumulation_length)
    scale = max(1.0, float(np.max(np.abs(reference64))) if reference64.size else 0.0)
    bound = tol * (scale + np.abs(reference64))
    deviation = np.abs(actual64 - reference64)
    if np.all(deviation <= bound):
        return
    excess = deviation - bound
    worst = int(np.argmax(excess))
    label = f" [{context}]" if context else ""
    raise AssertionError(
        f"float32 contract violated{label}: n={accumulation_length}, "
        f"tol={tol:.3e}, worst deviation {deviation.reshape(-1)[worst]:.3e} "
        f"exceeds bound {bound.reshape(-1)[worst]:.3e} at flat index {worst} "
        f"(reference {reference64.reshape(-1)[worst]:.6e})"
    )
