"""Deterministic random-number utilities.

Every stochastic component of the reproduction (weight initialisation,
synthetic data generation, Bayesian-optimization seeding, random search)
accepts an explicit :class:`numpy.random.Generator` so that experiments are
reproducible bit-for-bit given a seed.  This module centralises construction
of those generators.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]

_GLOBAL_SEED: Optional[int] = None


def default_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy, or the global seed if one was installed
    with :func:`seed_everything`), an integer seed, or an existing generator
    which is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None and _GLOBAL_SEED is not None:
        return np.random.default_rng(_GLOBAL_SEED)
    return np.random.default_rng(seed)


def seed_everything(seed: int) -> None:
    """Install ``seed`` as the process-wide default seed.

    Subsequent calls to :func:`default_rng` with ``seed=None`` return
    generators seeded from this value, and NumPy's legacy global state is
    seeded as well for any third-party code that still uses it.
    """
    global _GLOBAL_SEED
    _GLOBAL_SEED = int(seed)
    np.random.seed(seed)


def spawn_rngs(seed: RngLike, count: int) -> list:
    """Derive ``count`` independent child generators from ``seed``.

    Used by the parallel Bayesian-optimization evaluator so every concurrently
    trained candidate sees an independent, reproducible stream.
    """
    parent = default_rng(seed)
    return [np.random.default_rng(s) for s in parent.bit_generator.seed_seq.spawn(count)]
