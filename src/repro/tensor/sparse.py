"""Event-driven sparse inference: dispatch state, certification and kernels.

The paper's entire economy is low-firing-rate networks, yet the dense fast
path pays full conv/GEMM price for every silent neuron at every time step.
This module adds the **event-driven mode**: trusted producers (the fused
neuron step, the temporal runner's encoder loop) attach a flat index list of
the nonzero entries — the *events* — to a binary spike tensor whenever its
measured firing rate is at or below a crossover threshold, and the graph-free
conv/matmul kernels consume that list with a gather/scatter kernel instead of
the dense im2col GEMM.

Bit-equality contract
---------------------

The sparse path must be **bit-identical** to the dense fast path (pinned by
``tests/test_sparse_inference.py``).  Three facts make that achievable
without ever computing the dense result:

1. *binary inputs make products exact* — every contribution is ``w * 1`` or
   ``w * 0``, so FMA-versus-mul/add rounding differences vanish and skipping
   exactly-zero terms leaves every partial sum unchanged;
2. *event order is already reduction order* — ``np.flatnonzero`` enumerates
   events in C order ``(n, c, y, x)``; for any fixed output position the
   contributing events are visited in ascending ``(c, u, v)``, which is
   exactly the ascending-``k`` order the dense GEMM reduces over, so no sort
   is needed (each event touches a given output through at most one kernel
   offset, and different batch items never share outputs);
3. *sequential accumulation is a per-shape GEMM property* — BLAS kernels for
   some shapes split the ``k`` loop over multiple accumulators (observed for
   wide-``k``/narrow-output GEMMs), in which case no term-skipping scheme can
   reproduce them bitwise.  :func:`gemm_accumulates_sequentially` probes the
   platform GEMM once per geometry with a rounding-sensitive input and caches
   the verdict; the sparse kernels are dispatched only for certified shapes.

Dispatch therefore requires *all* of: sparse mode enabled
(:func:`sparse_inference`), float64 data (the float32 GEMM is never
sequential here, and ``np.add.at`` accumulates float32 through a float64
cast), events attached by a trusted producer certifying binariness,
``groups == 1``, and a certified GEMM shape.  Anything else falls back to the
dense fast path; both outcomes are tallied in thread-local
``sparse_steps``/``dense_steps`` counters (:func:`sparse_counters`) so tests
can pin which path a workload actually took.

Aliasing: event lists attached to returned tensors and every array returned
by the kernels here are freshly allocated — never workspace scratch — so the
workspace aliasing contract (see :mod:`repro.tensor.workspace`) is preserved.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Dict, Optional, Tuple

import numpy as np

#: default firing-rate threshold at or below which producers attach event
#: lists.  The pure-NumPy scatter costs ~10 ns per (event x kernel-offset)
#: entry while the dense GEMM runs at BLAS speed, so the sparse kernel only
#: wins at genuinely low rates; 0.03 is the measured break-even region for
#: the cache-resident feature-map sizes the experiments use (see
#: ``benchmarks/bench_substrate.py`` and ``docs/benchmarks.md``).
SPARSE_CROSSOVER = 0.03

_F64 = np.dtype(np.float64)


class _SparseState(threading.local):
    """Per-thread dispatch mode, crossover, counters and probe cache."""

    def __init__(self) -> None:
        self.enabled = False
        self.crossover = SPARSE_CROSSOVER
        self.sparse_steps = 0
        self.dense_steps = 0
        self.gemm_probe_cache: Dict[Tuple[int, int, int], bool] = {}


_STATE = _SparseState()

#: process-wide routing aggregates: unlike the per-thread tallies these are
#: never reset by tests/workloads, so operators can export them as monotonic
#: ``/metrics`` counters.  ``probe_failures`` counts fresh GEMM certification
#: probes that came back non-sequential (each uncertified shape forces the
#: dense fallback for its lifetime).  Only touched while sparse mode is
#: active, so the dense default path takes no lock.
_AGGREGATE_LOCK = threading.Lock()
_AGGREGATE: Dict[str, int] = {"sparse_steps": 0, "dense_steps": 0, "probe_failures": 0}


def aggregate_sparse_counters() -> Dict[str, int]:
    """Process-wide snapshot of the routing tallies (all threads, no reset).

    The serving layer exports these as the ``repro_sparse_*_total`` counters;
    evaluations running in worker processes fold their deltas back into the
    parent via the result telemetry channel (see
    :class:`repro.core.async_eval.AsyncEvaluationExecutor`).
    """
    with _AGGREGATE_LOCK:
        return dict(_AGGREGATE)


def merge_sparse_counters(delta: Dict[str, int]) -> None:
    """Fold a worker process's routing-tally delta into this process's totals."""
    if not delta:
        return
    with _AGGREGATE_LOCK:
        for key in _AGGREGATE:
            _AGGREGATE[key] += int(delta.get(key, 0))


def _bump_aggregate(key: str) -> None:
    with _AGGREGATE_LOCK:
        _AGGREGATE[key] += 1


@contextlib.contextmanager
def sparse_inference(crossover: Optional[float] = None):
    """Enable event-driven dispatch inside the ``with`` block.

    Producers attach event lists to binary tensors whose firing rate is at or
    below ``crossover`` (default :data:`SPARSE_CROSSOVER`); the conv/matmul
    fast paths then route per-layer, per-step between the sparse and dense
    kernels.  Nested uses restore the previous mode/threshold on exit.
    """
    if crossover is not None and not 0.0 <= crossover <= 1.0:
        raise ValueError(f"crossover must be in [0, 1], got {crossover}")
    previous = (_STATE.enabled, _STATE.crossover)
    _STATE.enabled = True
    if crossover is not None:
        _STATE.crossover = float(crossover)
    try:
        yield
    finally:
        _STATE.enabled, _STATE.crossover = previous


def sparse_enabled() -> bool:
    """Whether event-driven dispatch is active on this thread."""
    return _STATE.enabled


def sparse_crossover() -> float:
    """The active firing-rate crossover threshold."""
    return _STATE.crossover


def sparse_counters() -> Dict[str, int]:
    """Per-thread dispatch tallies since the last reset.

    ``sparse_steps`` counts conv/matmul fast-path calls served by the
    event-driven kernels, ``dense_steps`` those that fell back to the dense
    kernels while sparse mode was active.  With sparse mode off both stay 0.
    """
    return {"sparse_steps": _STATE.sparse_steps, "dense_steps": _STATE.dense_steps}


def reset_sparse_counters() -> None:
    """Zero the per-thread dispatch tallies."""
    _STATE.sparse_steps = 0
    _STATE.dense_steps = 0


# ---------------------------------------------------------------------------
# per-shape GEMM certification
# ---------------------------------------------------------------------------

def gemm_accumulates_sequentially(rows: int, k: int, cols: int) -> bool:
    """Whether the platform's float64 GEMM of shape ``(rows, k) @ (k, cols)``
    reduces every output element with one sequential accumulator over
    ascending ``k`` — the property the sparse kernels' bit-equality rests on.

    Probes with a rounding-sensitive input: the first ``k`` term is 1 and all
    later terms are ``2**-53`` (half an ulp of 1), so a single sequential
    accumulator rounds every later term away and yields exactly 1, while any
    multi-accumulator split or reordering lets the small terms combine and
    exceed 1.  The products are exact (multiples of 1), so the probe is
    insensitive to FMA and only detects accumulation structure, which for a
    BLAS kernel depends on the shape, not the values.  Verdicts are cached
    per thread per shape.
    """
    key = (int(rows), int(k), int(cols))
    cached = _STATE.gemm_probe_cache.get(key)
    if cached is None:
        left = np.ones((key[0], key[1]))
        right = np.empty((key[1], key[2]))
        right[0, :] = 1.0
        if key[1] > 1:
            right[1:, :] = 2.0 ** -53
        cached = bool(np.all((left @ right) == 1.0))
        _STATE.gemm_probe_cache[key] = cached
        if not cached:
            _bump_aggregate("probe_failures")
    return cached


# ---------------------------------------------------------------------------
# producer helpers (attach events to certified-binary tensors)
# ---------------------------------------------------------------------------

def attach_events(tensor, events: np.ndarray):
    """Attach a flat C-order event-index list to ``tensor`` and return it.

    Trusted-producer API: the caller certifies that ``tensor.data`` is a 0/1
    array whose nonzero positions (flattened in C order) are exactly
    ``events``, and that ``events`` is an owning array (never a view of
    pooled workspace scratch — the consumer may read it on a later step).
    """
    tensor._events = events
    return tensor


def events_of(tensor) -> Optional[np.ndarray]:
    """The event list attached to ``tensor``, or ``None``."""
    return tensor._events


def spike_events(spike_bool: np.ndarray, dtype) -> Optional[np.ndarray]:
    """Producer hook for the fused neuron step.

    Given the boolean spike buffer of the step just computed, return a fresh
    flat event-index list when sparse mode is active, the spike dtype is
    float64 and the firing rate is at or below the crossover; ``None``
    otherwise (the emitted tensor then stays a plain dense spike tensor).
    """
    state = _STATE
    if not state.enabled or np.dtype(dtype) != _F64:
        return None
    if np.count_nonzero(spike_bool) > state.crossover * spike_bool.size:
        return None
    return np.flatnonzero(spike_bool)


def annotate_frame(tensor) -> None:
    """Attach events to an encoder frame if it is binary and sparse enough.

    Encoder outputs are not certified binary by construction (an event-frame
    dataset may hold counts, a constant-current encoder holds analog values),
    so beyond the rate check this verifies that every nonzero entry equals
    1.0 before attaching — non-binary frames stay dense, where skipping terms
    would not be exact.  Called by the temporal runner once per step under
    ``no_grad``; a no-op when sparse mode is off.
    """
    state = _STATE
    if not state.enabled:
        return
    data = tensor.data
    if data.dtype != _F64 or tensor._events is not None:
        return
    if np.count_nonzero(data) > state.crossover * data.size:
        return
    events = np.flatnonzero(data)
    if not np.all(data.reshape(-1)[events] == 1.0):
        return
    tensor._events = events


# ---------------------------------------------------------------------------
# consumer dispatch
# ---------------------------------------------------------------------------

def conv_dispatch(x, weight, bias, groups: int, out_h: int, out_w: int) -> Optional[np.ndarray]:
    """Return the event list when the sparse conv kernel applies, else ``None``.

    Requires sparse mode, attached events, ``groups == 1``, float64
    throughout and a certified-sequential GEMM geometry (the shape the dense
    kernel would run).  Tallies the decision in the dispatch counters.
    """
    state = _STATE
    if not state.enabled:
        return None
    events = x._events
    c_out, c_in_per_group, kh, kw = weight.data.shape
    if (
        events is None
        or groups != 1
        or x.data.dtype != _F64
        or weight.data.dtype != _F64
        or (bias is not None and bias.data.dtype != _F64)
        or not gemm_accumulates_sequentially(
            c_out, c_in_per_group * kh * kw, x.data.shape[0] * out_h * out_w
        )
    ):
        state.dense_steps += 1
        _bump_aggregate("dense_steps")
        return None
    state.sparse_steps += 1
    _bump_aggregate("sparse_steps")
    return events


def matmul_dispatch(a, b) -> Optional[np.ndarray]:
    """Return the event list when the sparse matmul kernel applies, else ``None``."""
    state = _STATE
    if not state.enabled:
        return None
    events = a._events
    if (
        events is None
        or a.data.ndim != 2
        or b.data.ndim != 2
        or a.data.dtype != _F64
        or b.data.dtype != _F64
        or not gemm_accumulates_sequentially(a.data.shape[0], a.data.shape[1], b.data.shape[1])
    ):
        state.dense_steps += 1
        _bump_aggregate("dense_steps")
        return None
    state.sparse_steps += 1
    _bump_aggregate("sparse_steps")
    return events


# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------

def sparse_conv2d(
    x_shape: Tuple[int, int, int, int],
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    events: np.ndarray,
    sh: int,
    sw: int,
    ph: int,
    pw: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Event-driven convolution forward (``groups == 1``).

    Never touches the input array: each event (a nonzero = 1.0 input entry)
    is expanded over the ``kh * kw`` kernel offsets, invalid (out-of-bounds /
    off-stride) lanes are masked, the corresponding weight rows are gathered
    and scatter-added into a freshly allocated NCHW output.  ``np.add.at``
    accumulates strictly in lane order, which per output element is ascending
    ``k`` (see the module docstring), so for a certified GEMM shape the
    result is bit-identical to the dense kernel.  The bias is added after all
    terms, matching the dense kernel's op order.
    """
    n, c_in, h, w = x_shape
    c_out, _, kh, kw = weight.shape
    u = np.repeat(np.arange(kh), kw)
    v = np.tile(np.arange(kw), kh)
    e_x = events % w
    rest = events // w
    e_y = rest % h
    rest = rest // h
    e_c = rest % c_in
    e_n = rest // c_in
    # candidate output positions per (event, offset) lane; stride-1 keeps the
    # division out of the hot path
    oy = e_y[:, None] + (ph - u)[None, :]
    ox = e_x[:, None] + (pw - v)[None, :]
    if sh != 1 or sw != 1:
        valid = (oy % sh == 0) & (ox % sw == 0)
        oy //= sh
        ox //= sw
        valid &= (oy >= 0) & (oy < out_h) & (ox >= 0) & (ox < out_w)
    else:
        valid = (oy >= 0) & (oy < out_h) & (ox >= 0) & (ox < out_w)
    k = e_c[:, None] * (kh * kw) + (u * kw + v)[None, :]
    hw = out_h * out_w
    m = (e_n[:, None] * c_out) * hw + oy * out_w + ox
    lanes = np.flatnonzero(valid.reshape(-1))
    k_all = k.reshape(-1)[lanes]
    m_all = m.reshape(-1)[lanes]
    w_rows = weight.reshape(c_out, c_in * kh * kw).T
    vals = w_rows[k_all]  # (lanes, C_out) gather, freshly allocated
    fidx = (m_all[:, None] + (np.arange(c_out) * hw)[None, :]).reshape(-1)
    out = np.zeros((n, c_out, out_h, out_w), dtype=weight.dtype)
    np.add.at(out.reshape(-1), fidx, vals.reshape(-1))
    if bias is not None:
        out += bias.reshape(1, c_out, 1, 1)
    return out


def sparse_matmul(a_shape: Tuple[int, int], b: np.ndarray, events: np.ndarray) -> np.ndarray:
    """Event-driven ``a @ b`` for a 2-D binary ``a`` given its event list.

    Gathers the rows of ``b`` selected by each event's feature index and
    scatter-adds them into the event's batch row.  Events arrive in ascending
    ``(row, feature)`` order, so every output element accumulates over
    ascending ``k`` — bit-identical to a certified-sequential GEMM.
    """
    n, f = a_shape
    out = np.zeros((n, b.shape[1]), dtype=b.dtype)
    np.add.at(out, events // f, b[events % f])
    return out
