"""Command-line interface for running the paper's experiments.

Usage (after installing the package)::

    python -m repro.cli figure1 --type asc --scale smoke
    python -m repro.cli table1  --datasets cifar10-dvs --models resnet18 --scale smoke
    python -m repro.cli figure3 --scale default --output results/figure3.json
    python -m repro.cli adapt   --dataset dvs128-gesture --model mobilenetv2
    python -m repro.cli pareto  --objectives accuracy,energy --energy-budget 50 --scale smoke
    python -m repro.cli serve   --port 8000 --cache-dir results/cache
    python -m repro.cli cache compact --cache-dir results/cache
    python -m repro.cli trace   results/pareto.trace.jsonl --chrome results/pareto.chrome.json
    python -m repro.cli lint    -- --list-rules
    python -m repro.cli info

Every batch sub-command prints the paper-style table/series to stdout,
optionally renders an ASCII chart (``--plot``), and can save the raw result
to JSON (``--output``) for later post-processing with
:mod:`repro.experiments.io`.  ``serve`` is the exception: it runs the same
engine as a long-lived HTTP service (job submission, Pareto/recommendation
queries answered from the cache, ``/healthz`` + ``/metrics``) until SIGTERM —
see ``docs/server.md``.  ``cache compact`` maintains the cache directory both
kinds of run share.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.data import available_datasets
from repro.experiments import (
    format_figure1,
    format_figure3,
    format_pareto,
    format_table1,
    get_scale,
    plot_pareto,
    run_figure1,
    run_figure3,
    run_pareto_front,
    run_table1,
)
from repro.experiments.io import save_result
from repro.experiments.plots import plot_figure1, plot_figure3
from repro.experiments.table1 import DEFAULT_DATASETS, DEFAULT_MODELS, run_table1_cell, Table1Result, Table1Row
from repro.models import available_models


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", default=None, help="experiment scale: smoke, default or paper")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--output", default=None, help="optional path to save the result as JSON")
    parser.add_argument("--plot", action="store_true", help="also render an ASCII chart")


def _add_cache_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory of the persistent evaluation store; candidate evaluations "
        "are appended there (JSONL) alongside content-addressed weight snapshots, "
        "and later runs sharing the directory re-use both: cached candidates are "
        "answered from disk and their weight updates are replayed into the "
        "shared weight store",
    )
    parser.add_argument(
        "--sharded-cache",
        action="store_true",
        help="use the sharded store layout (per-writer JSONL shards under "
        "<store>.shards/ with a merged read view), so several concurrent search "
        "processes can share --cache-dir without funnelling appends through one file",
    )


def _add_async_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--async-workers",
        type=int,
        default=0,
        help="run candidate evaluation on the asynchronous executor with this many "
        "persistent worker processes: as each evaluation finishes, its result is "
        "observed into the GP and a fresh candidate is proposed immediately, so no "
        "worker idles behind a batch barrier (0 = classic batch path)",
    )


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a span trace of the whole run to PATH (JSONL, one span per "
        "line, worker-process spans stitched under their evaluation); analyse it "
        "afterwards with `repro trace PATH`",
    )
    parser.add_argument(
        "--trace-ops",
        action="store_true",
        help="with --trace, also record per-operator substrate spans (op.conv2d, "
        "op.matmul, op.neuron_step with sparse/dense routing) — voluminous",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Skip Connections in Spiking Neural Networks' (IPPS 2023)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    figure1 = subparsers.add_parser("figure1", help="run the Fig. 1 skip-connection sweep")
    figure1.add_argument("--type", dest="connection_type", choices=["dsc", "asc"], default="asc")
    figure1.add_argument("--dataset", default="cifar10-dvs", choices=available_datasets())
    _add_common_arguments(figure1)

    table1 = subparsers.add_parser("table1", help="run the Table I adaptation grid")
    table1.add_argument("--datasets", nargs="+", default=list(DEFAULT_DATASETS), choices=available_datasets())
    table1.add_argument("--models", nargs="+", default=list(DEFAULT_MODELS), choices=available_models())
    _add_cache_argument(table1)
    _add_async_argument(table1)
    _add_common_arguments(table1)

    figure3 = subparsers.add_parser("figure3", help="run the Fig. 3 BO-vs-random-search comparison")
    figure3.add_argument("--dataset", default="cifar10-dvs", choices=available_datasets())
    figure3.add_argument("--model", default="resnet18", choices=available_models())
    figure3.add_argument("--runs", type=int, default=None, help="number of repeated runs")
    figure3.add_argument("--iterations", type=int, default=None, help="evaluations per run")
    _add_cache_argument(figure3)
    _add_async_argument(figure3)
    _add_common_arguments(figure3)

    adapt = subparsers.add_parser("adapt", help="run the adaptation pipeline for one dataset/model pair")
    adapt.add_argument("--dataset", default="cifar10-dvs", choices=available_datasets())
    adapt.add_argument("--model", default="resnet18", choices=available_models())
    _add_cache_argument(adapt)
    _add_async_argument(adapt)
    _add_common_arguments(adapt)

    pareto = subparsers.add_parser(
        "pareto",
        help="run the multi-objective Pareto search (accuracy/energy/latency trade-offs)",
    )
    pareto.add_argument("--dataset", default="cifar10-dvs", choices=available_datasets())
    pareto.add_argument("--model", default="resnet18", choices=available_models())
    pareto.add_argument(
        "--objectives",
        default="accuracy,energy",
        help="comma-separated objectives to trade off (accuracy, energy, macs, "
        "latency, latency_steps, firing_rate); each gets its own incremental GP "
        "surrogate. 'latency' is measured from repeated timed forward passes on "
        "the inference fast path (median of K runs, warmup excluded); "
        "'latency_steps' is the step-count proxy",
    )
    pareto.add_argument(
        "--energy-budget",
        type=float,
        default=None,
        help="hard constraint energy_nj <= budget: proposals are weighted by the "
        "posterior probability of staying within the budget, and the report "
        "flags which front points comply",
    )
    pareto.add_argument("--iterations", type=int, default=None, help="evaluations after the warm start")
    _add_cache_argument(pareto)
    _add_async_argument(pareto)
    _add_trace_arguments(pareto)
    _add_common_arguments(pareto)

    serve = subparsers.add_parser(
        "serve",
        help="run the long-lived HTTP serving layer over the search + cache subsystems",
        description="Serve search-as-a-service over one cache directory: POST /jobs submits "
        "single- or multi-objective searches to background workers, GET /pareto and "
        "GET /recommend answer instantly from the accumulated evaluation store, and "
        "/healthz + /metrics (Prometheus text) make the process operable. SIGTERM drains "
        "in-flight evaluations before exiting. See docs/server.md for the endpoint catalog.",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8000, help="bind port (0 picks an ephemeral port)")
    serve.add_argument(
        "--cache-dir",
        required=True,
        help="cache directory served: /pareto and /recommend read every evaluation store "
        "in it, and submitted jobs append their evaluations to it (created if missing)",
    )
    serve.add_argument(
        "--scale",
        default=None,
        help="default experiment scale for submitted jobs (smoke, default or paper; "
        "each job may override it in its request body)",
    )
    serve.add_argument(
        "--async-workers",
        type=int,
        default=0,
        help="default worker processes per submitted job (0 = evaluate serially on the "
        "job's own thread; jobs may override per request)",
    )
    serve.add_argument(
        "--no-sharded-cache",
        action="store_true",
        help="make jobs write single-file stores instead of per-writer shards "
        "(sharded is the default so several server processes can share --cache-dir)",
    )

    cache = subparsers.add_parser(
        "cache",
        help="maintain a persistent evaluation cache directory (shared by batch runs and `serve`)",
    )
    cache.add_argument(
        "action",
        choices=["compact"],
        help="compact: fold per-writer shards into the base JSONL files — run it "
        "periodically on long-lived cache directories (e.g. one backing `repro serve`) "
        "so reads stay one-file cheap; safe under concurrent writers",
    )
    cache.add_argument(
        "--cache-dir",
        required=True,
        help="cache directory whose sharded stores (<name>.shards/) are compacted in place",
    )

    lint = subparsers.add_parser(
        "lint",
        help="run repro-lint, the repo-specific static analyzer (requires a repo checkout)",
        description="Delegates to `python -m tools.analyze` from the repository root; "
        "arguments after `lint` are passed through (see docs/static_analysis.md).",
    )
    lint.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to tools.analyze (prefix with `--` to pass flags)",
    )

    trace = subparsers.add_parser(
        "trace",
        help="analyse a recorded span trace (per-phase breakdown, critical path, slowest evaluations)",
        description="Reads a trace recorded with `repro pareto --trace PATH` (or a "
        "server job's traces/<job_id>.jsonl) and prints the per-phase time "
        "breakdown, the critical path and the slowest evaluations; --chrome "
        "exports the spans as Chrome trace-event JSON for chrome://tracing or "
        "ui.perfetto.dev. See docs/observability.md.",
    )
    trace.add_argument(
        "trace_file",
        help="trace to analyse: span JSONL (one span per line) or a JSON span array",
    )
    trace.add_argument(
        "--top", type=int, default=5, help="slowest evaluations listed (default 5)"
    )
    trace.add_argument(
        "--chrome",
        default=None,
        metavar="OUT",
        help="also write the spans as Chrome trace-event JSON to OUT",
    )

    subparsers.add_parser("info", help="list available datasets, models and scales")
    return parser


def _command_figure1(args) -> int:
    scale = get_scale(args.scale)
    result = run_figure1(args.connection_type, scale=scale, dataset=args.dataset, seed=args.seed)
    print(format_figure1(result))
    if args.plot:
        print()
        print(plot_figure1(result))
    if args.output:
        save_result(result, args.output)
        print(f"\nsaved to {args.output}")
    return 0


def _command_table1(args) -> int:
    scale = get_scale(args.scale)
    result = run_table1(
        scale=scale,
        datasets=args.datasets,
        models=args.models,
        seed=args.seed,
        async_workers=args.async_workers,
        cache_dir=args.cache_dir,
        cache_sharded=args.sharded_cache,
    )
    print(format_table1(result))
    if args.output:
        save_result(result, args.output)
        print(f"\nsaved to {args.output}")
    return 0


def _command_figure3(args) -> int:
    scale = get_scale(args.scale)
    result = run_figure3(
        scale=scale,
        dataset=args.dataset,
        model=args.model,
        num_runs=args.runs,
        iterations=args.iterations,
        seed=args.seed,
        cache_dir=args.cache_dir,
        cache_sharded=args.sharded_cache,
        async_workers=args.async_workers,
    )
    print(format_figure3(result))
    if args.plot:
        print()
        print(plot_figure3(result))
    if args.output:
        save_result(result, args.output)
        print(f"\nsaved to {args.output}")
    return 0


def _command_adapt(args) -> int:
    scale = get_scale(args.scale)
    adaptation = run_table1_cell(
        args.dataset,
        args.model,
        scale=scale,
        seed=args.seed,
        async_workers=args.async_workers,
        cache_dir=args.cache_dir,
        cache_sharded=args.sharded_cache,
    )
    print(adaptation.summary())
    print(f"best architecture: {adaptation.best_spec}")
    table = Table1Result()
    table.rows.append(Table1Row.from_result(args.dataset, args.model, adaptation))
    if args.output:
        save_result(table, args.output)
        print(f"saved to {args.output}")
    return 0


def _command_pareto(args) -> int:
    import contextlib

    from repro.trace import FlightRecorder, tracing

    scale = get_scale(args.scale)
    objectives = [name.strip() for name in args.objectives.split(",") if name.strip()]
    if args.trace:
        recorder = FlightRecorder(capacity=1 << 20, jsonl_path=args.trace)
        scope = tracing(recorder=recorder, ops=args.trace_ops)
    else:
        recorder = None
        scope = contextlib.nullcontext()
    with scope:
        result = run_pareto_front(
            scale=scale,
            dataset=args.dataset,
            model=args.model,
            objectives=objectives,
            energy_budget=args.energy_budget,
            iterations=args.iterations,
            seed=args.seed,
            cache_dir=args.cache_dir,
            cache_sharded=args.sharded_cache,
            async_workers=args.async_workers,
        )
    if recorder is not None:
        recorder.close()
        print(f"trace: {len(recorder)} spans written to {args.trace} (analyse with `repro trace {args.trace}`)")
    print(format_pareto(result))
    if args.plot:
        print()
        print(plot_pareto(result))
    if args.output:
        save_result(result, args.output)
        print(f"\nsaved to {args.output}")
    return 0


def _command_serve(args) -> int:
    import signal
    import threading

    from repro.server import ReproServer, ServerConfig

    server = ReproServer(
        ServerConfig(
            cache_dir=args.cache_dir,
            host=args.host,
            port=args.port,
            scale=args.scale,
            async_workers=args.async_workers,
            sharded_cache=not args.no_sharded_cache,
        )
    )
    stop = threading.Event()

    def _signal_handler(signum, _frame):
        print(f"received {signal.Signals(signum).name}, shutting down...", flush=True)
        stop.set()

    signal.signal(signal.SIGTERM, _signal_handler)
    signal.signal(signal.SIGINT, _signal_handler)
    server.start()
    print(
        f"serving on http://{args.host}:{server.port} (cache dir {args.cache_dir}, "
        f"{server.catalog.total_rows(refresh=False)} cached evaluations)",
        flush=True,
    )
    stop.wait()
    server.stop()
    rows = server.catalog.total_rows(refresh=False)
    print(f"shutdown complete: jobs drained, store holds {rows} evaluations", flush=True)
    return 0


def _command_cache(args) -> int:
    from pathlib import Path

    from repro.core.cache import ShardedEvaluationStore

    cache_dir = Path(args.cache_dir)
    shard_dirs = sorted(cache_dir.glob(f"*{ShardedEvaluationStore.SHARD_SUFFIX}"))
    if not shard_dirs:
        print(f"no sharded stores under {cache_dir}")
        return 0
    for shard_dir in shard_dirs:
        base = shard_dir.with_suffix(".jsonl")
        summary = ShardedEvaluationStore(base).compact()
        print(
            f"{base.name}: {summary['rows']} rows, "
            f"{summary['shards_merged']} shards merged, {summary['shards_kept']} kept"
        )
    return 0


def _command_lint(args) -> int:
    """Run the static analyzer from any directory inside a repo checkout.

    ``tools/`` is not part of the installed package (the analyzer inspects
    source trees, not installed modules), so locate the repository root by
    walking up from the current directory and import it from there.
    """
    from pathlib import Path

    current = Path.cwd().resolve()
    for candidate in (current, *current.parents):
        if (candidate / "tools" / "analyze" / "cli.py").is_file():
            if str(candidate) not in sys.path:
                sys.path.insert(0, str(candidate))
            from tools.analyze.cli import main as lint_main

            forwarded = [arg for arg in args.lint_args if arg != "--"]
            return lint_main(forwarded)
    print(
        "repro lint: no tools/analyze/ found above the current directory; "
        "run from a repository checkout",
        file=sys.stderr,
    )
    return 1


def _command_trace(args) -> int:
    import json
    from pathlib import Path

    from repro.trace import chrome_trace, format_summary, load_trace, summarize

    try:
        spans = load_trace(args.trace_file)
    except (OSError, ValueError) as error:
        print(f"repro trace: cannot read {args.trace_file}: {error}", file=sys.stderr)
        return 1
    if not spans:
        print(f"repro trace: no spans in {args.trace_file}", file=sys.stderr)
        return 1
    print(format_summary(summarize(spans, top=args.top)))
    if args.chrome:
        payload = chrome_trace(spans)
        Path(args.chrome).write_text(json.dumps(payload) + "\n")
        print(f"\nchrome trace written to {args.chrome} ({len(payload['traceEvents'])} events)")
    return 0


def _command_info(_args) -> int:
    print("datasets:", ", ".join(available_datasets()))
    print("models:  ", ", ".join(available_models()))
    print("scales:   smoke, default, paper (select with --scale or REPRO_SCALE)")
    return 0


_COMMANDS = {
    "figure1": _command_figure1,
    "table1": _command_table1,
    "figure3": _command_figure3,
    "adapt": _command_adapt,
    "pareto": _command_pareto,
    "serve": _command_serve,
    "cache": _command_cache,
    "lint": _command_lint,
    "trace": _command_trace,
    "info": _command_info,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
