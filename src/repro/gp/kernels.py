"""Covariance kernels for Gaussian-process regression.

Architectures are encoded as flat integer vectors (the upper-triangular
entries of their block adjacency matrices, values in {0, 1, 2} — see
:mod:`repro.core.adjacency`).  Two kernel families are useful on this space:

* treating the encoding as a point in R^d and using a standard RBF/Matérn
  kernel (works because the encoding is low-dimensional and ordinal-ish);
* the :class:`HammingKernel`, which measures similarity as the fraction of
  *identical* entries — the natural choice for purely categorical encodings.

All kernels are vectorised: ``k(X1, X2)`` evaluates the full cross-covariance
matrix with a single broadcasted NumPy expression.
"""

from __future__ import annotations

import numpy as np


def _as_2d(x: np.ndarray) -> np.ndarray:
    """Coerce input to a 2-D ``(n_points, n_features)`` float array."""
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"kernel inputs must be 1-D or 2-D, got shape {arr.shape}")
    return arr


def _sq_dists(x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances between rows of x1 and x2."""
    x1_sq = (x1 ** 2).sum(axis=1)[:, None]
    x2_sq = (x2 ** 2).sum(axis=1)[None, :]
    cross = x1 @ x2.T
    return np.maximum(x1_sq + x2_sq - 2.0 * cross, 0.0)


class Kernel:
    """Base kernel interface."""

    #: names of positive scalar hyperparameters that marginal-likelihood
    #: adaptation may retune (see :func:`repro.gp.gp.tune_kernel`); the first
    #: entry is the length-scale-like parameter, the second the signal
    #: variance.  Kernels without tunables leave this empty.
    TUNABLE: tuple = ()

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        """Return the ``(len(x1), len(x2))`` covariance matrix."""
        raise NotImplementedError

    #: row-block width used by the generic :meth:`diag` fallback
    _DIAG_BLOCK = 128

    def diag(self, x: np.ndarray) -> np.ndarray:
        """Return the diagonal of ``k(x, x)`` without building the full matrix.

        Generic fallback for kernels that do not override this: evaluates the
        kernel on row blocks and extracts each block's diagonal, so the work is
        O(n * block) inside vectorised NumPy calls instead of a per-row Python
        loop (the stationary kernels below override it with true O(n)
        implementations).
        """
        x = _as_2d(x)
        n = x.shape[0]
        out = np.empty(n)
        for start in range(0, n, self._DIAG_BLOCK):
            block = x[start : start + self._DIAG_BLOCK]
            out[start : start + self._DIAG_BLOCK] = np.diagonal(self(block, block))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(f"{k}={v}" for k, v in vars(self).items())
        return f"{type(self).__name__}({params})"


class RBFKernel(Kernel):
    """Squared-exponential kernel ``variance * exp(-||x1 - x2||^2 / (2 l^2))``."""

    TUNABLE = ("length_scale", "variance")

    def __init__(self, length_scale: float = 1.0, variance: float = 1.0) -> None:
        if length_scale <= 0 or variance <= 0:
            raise ValueError("length_scale and variance must be positive")
        self.length_scale = float(length_scale)
        self.variance = float(variance)

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        x1, x2 = _as_2d(x1), _as_2d(x2)
        d2 = _sq_dists(x1, x2)
        return self.variance * np.exp(-0.5 * d2 / self.length_scale ** 2)

    def diag(self, x: np.ndarray) -> np.ndarray:
        x = _as_2d(x)
        return np.full(x.shape[0], self.variance)


class Matern52Kernel(Kernel):
    """Matérn kernel with smoothness 5/2 — the standard BO default."""

    TUNABLE = ("length_scale", "variance")

    def __init__(self, length_scale: float = 1.0, variance: float = 1.0) -> None:
        if length_scale <= 0 or variance <= 0:
            raise ValueError("length_scale and variance must be positive")
        self.length_scale = float(length_scale)
        self.variance = float(variance)

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        x1, x2 = _as_2d(x1), _as_2d(x2)
        d = np.sqrt(_sq_dists(x1, x2))
        scaled = np.sqrt(5.0) * d / self.length_scale
        return self.variance * (1.0 + scaled + scaled ** 2 / 3.0) * np.exp(-scaled)

    def diag(self, x: np.ndarray) -> np.ndarray:
        x = _as_2d(x)
        return np.full(x.shape[0], self.variance)


class HammingKernel(Kernel):
    """Exponentiated Hamming-similarity kernel for categorical encodings.

    ``k(a, b) = variance * exp(-gamma * mean(a_i != b_i))`` — two architectures
    are similar when most of their adjacency entries coincide, regardless of
    the numeric values used to label the connection types.  ``gamma`` plays
    the role of an inverse length scale, so it is the tunable the
    marginal-likelihood adaptation retunes.
    """

    TUNABLE = ("gamma", "variance")

    def __init__(self, gamma: float = 3.0, variance: float = 1.0) -> None:
        if gamma <= 0 or variance <= 0:
            raise ValueError("gamma and variance must be positive")
        self.gamma = float(gamma)
        self.variance = float(variance)

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        x1, x2 = _as_2d(x1), _as_2d(x2)
        mismatch = (x1[:, None, :] != x2[None, :, :]).mean(axis=2)
        return self.variance * np.exp(-self.gamma * mismatch)

    def diag(self, x: np.ndarray) -> np.ndarray:
        x = _as_2d(x)
        return np.full(x.shape[0], self.variance)
