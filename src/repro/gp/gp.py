"""Exact Gaussian-process regression.

Implements the textbook GP posterior (Rasmussen & Williams, 2006, Algorithm
2.1): given observations ``(X, y)``, kernel ``k`` and noise variance
``sigma^2``,

    L = cholesky(K(X, X) + sigma^2 I)
    alpha = L^-T L^-1 y
    mean(x*)  = k(x*, X) alpha
    var(x*)   = k(x*, x*) - || L^-1 k(X, x*) ||^2

Targets are standardised internally so kernel hyperparameters on the default
scale work across objectives of very different magnitude (accuracy drops in
[0, 1] vs. percentages).  This is the surrogate model used by the paper's
Bayesian optimizer (Section III-B, "The Prior").
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.linalg

from repro.gp.kernels import Kernel, Matern52Kernel


class GaussianProcessRegressor:
    """Exact GP regression with a fixed kernel and observation noise.

    Parameters
    ----------
    kernel:
        Covariance function; defaults to Matérn 5/2 with unit length scale.
    noise:
        Observation noise variance added to the kernel diagonal.  The paper's
        objective (validation accuracy after a short fine-tune) is noisy, so a
        non-trivial default is used.
    normalize_y:
        When ``True`` (default) targets are standardised to zero mean / unit
        variance before fitting and predictions are transformed back.
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        noise: float = 1e-4,
        normalize_y: bool = True,
    ) -> None:
        if noise < 0:
            raise ValueError(f"noise must be non-negative, got {noise}")
        self.kernel = kernel if kernel is not None else Matern52Kernel()
        self.noise = float(noise)
        self.normalize_y = bool(normalize_y)
        self._x_train: Optional[np.ndarray] = None
        self._y_train: Optional[np.ndarray] = None
        self._y_mean: float = 0.0
        self._y_std: float = 1.0
        self._cholesky: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called with at least one observation."""
        return self._x_train is not None and len(self._x_train) > 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        """Fit the posterior to observations ``x`` (n, d) and targets ``y`` (n,)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if x.ndim == 1:
            x = x.reshape(-1, 1)
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"x and y disagree on the number of points: {x.shape[0]} vs {y.shape[0]}")
        if x.shape[0] == 0:
            raise ValueError("cannot fit a GP to zero observations")

        self._x_train = x
        if self.normalize_y:
            self._y_mean = float(y.mean())
            self._y_std = float(y.std())
            if self._y_std < 1e-12:
                self._y_std = 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        self._y_train = (y - self._y_mean) / self._y_std

        gram = self.kernel(x, x)
        gram[np.diag_indices_from(gram)] += self.noise
        # jitter escalation keeps the Cholesky stable for near-duplicate points
        jitter = 1e-10
        for _ in range(8):
            try:
                self._cholesky = scipy.linalg.cholesky(gram + jitter * np.eye(len(x)), lower=True)
                break
            except scipy.linalg.LinAlgError:
                jitter *= 10.0
        else:  # pragma: no cover - pathological kernels only
            raise RuntimeError("GP covariance matrix is not positive definite even with jitter")
        self._alpha = scipy.linalg.cho_solve((self._cholesky, True), self._y_train)
        return self

    def predict(self, x: np.ndarray, return_std: bool = True) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean (and standard deviation) at query points ``x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if not self.is_fitted:
            mean = np.zeros(x.shape[0]) + self._y_mean
            std = np.ones(x.shape[0])
            return (mean, std) if return_std else (mean, np.zeros_like(mean))

        k_star = self.kernel(self._x_train, x)  # (n_train, n_query)
        mean = k_star.T @ self._alpha
        mean = mean * self._y_std + self._y_mean
        if not return_std:
            return mean, np.zeros_like(mean)
        v = scipy.linalg.solve_triangular(self._cholesky, k_star, lower=True)
        prior_var = self.kernel.diag(x)
        var = np.maximum(prior_var - (v ** 2).sum(axis=0), 1e-12)
        std = np.sqrt(var) * self._y_std
        return mean, std

    def log_marginal_likelihood(self) -> float:
        """Log marginal likelihood of the standardised training targets."""
        if not self.is_fitted:
            raise RuntimeError("GP is not fitted")
        n = len(self._y_train)
        data_fit = -0.5 * float(self._y_train @ self._alpha)
        complexity = -float(np.sum(np.log(np.diag(self._cholesky))))
        return data_fit + complexity - 0.5 * n * np.log(2.0 * np.pi)

    def sample_posterior(self, x: np.ndarray, num_samples: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``num_samples`` joint posterior function samples at points ``x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        mean, _ = self.predict(x, return_std=False)
        if not self.is_fitted:
            cov = self.kernel(x, x)
        else:
            k_star = self.kernel(self._x_train, x)
            v = scipy.linalg.solve_triangular(self._cholesky, k_star, lower=True)
            cov = self.kernel(x, x) - v.T @ v
            cov *= self._y_std ** 2
        cov[np.diag_indices_from(cov)] += 1e-10
        # "eigh" tolerates the slight asymmetry / near-singularity of GP posteriors
        return rng.multivariate_normal(mean, cov, size=num_samples, method="eigh")
