"""Exact Gaussian-process regression.

Implements the textbook GP posterior (Rasmussen & Williams, 2006, Algorithm
2.1): given observations ``(X, y)``, kernel ``k`` and noise variance
``sigma^2``,

    L = cholesky(K(X, X) + sigma^2 I)
    alpha = L^-T L^-1 y
    mean(x*)  = k(x*, X) alpha
    var(x*)   = k(x*, x*) - || L^-1 k(X, x*) ||^2

Targets are standardised internally so kernel hyperparameters on the default
scale work across objectives of very different magnitude (accuracy drops in
[0, 1] vs. percentages).  This is the surrogate model used by the paper's
Bayesian optimizer (Section III-B, "The Prior").

Two incremental extensions keep the Bayesian-optimization loop out of the
O(n^3)-per-step regime:

* :meth:`GaussianProcessRegressor.update` observes new points by *extending*
  the cached Cholesky factor with a rank-k block update — O(n^2 k) instead of
  the O(n^3) full refit (the factored matrix ``K + (noise + jitter) I`` does
  not depend on the targets, so target re-standardisation stays exact);
* :class:`FantasizedPosterior` is a lightweight constant-liar view over a
  fixed candidate pool: the train-pool cross-kernel block is computed once and
  every fantasy observation ("lie") is a rank-1 extension, so proposing a
  batch of k candidates costs O(k (n^2 + n m)) instead of k full refits.
"""

from __future__ import annotations

import copy
from typing import Optional, Tuple

import numpy as np
import scipy.linalg

from repro.gp.kernels import Kernel, Matern52Kernel


def _ensure_capacity(
    buffer: Optional[np.ndarray], factor: np.ndarray, needed: int, slack: int
) -> np.ndarray:
    """Return a zeroed square buffer of size >= ``needed`` holding ``factor``.

    The single growth policy behind every incrementally-extended Cholesky
    factor in this module: if ``buffer`` already has the capacity it is
    returned untouched (the factor is assumed to live in its top-left
    corner); otherwise a fresh zeroed buffer with ``slack`` spare rows is
    allocated and the factor copied once — amortised O(1) per extension.
    """
    if buffer is not None and buffer.shape[0] >= needed:
        return buffer
    capacity = max(64, needed + slack)
    grown = np.zeros((capacity, capacity))
    n = factor.shape[0]
    grown[:n, :n] = factor
    return grown


class GaussianProcessRegressor:
    """Exact GP regression with a fixed kernel and observation noise.

    Parameters
    ----------
    kernel:
        Covariance function; defaults to Matérn 5/2 with unit length scale.
    noise:
        Observation noise variance added to the kernel diagonal.  The paper's
        objective (validation accuracy after a short fine-tune) is noisy, so a
        non-trivial default is used.
    normalize_y:
        When ``True`` (default) targets are standardised to zero mean / unit
        variance before fitting and predictions are transformed back.
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        noise: float = 1e-4,
        normalize_y: bool = True,
    ) -> None:
        if noise < 0:
            raise ValueError(f"noise must be non-negative, got {noise}")
        self.kernel = kernel if kernel is not None else Matern52Kernel()
        self.noise = float(noise)
        self.normalize_y = bool(normalize_y)
        self._x_train: Optional[np.ndarray] = None
        self._y_train: Optional[np.ndarray] = None
        self._y_raw: Optional[np.ndarray] = None
        self._y_mean: float = 0.0
        self._y_std: float = 1.0
        self._cholesky: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._jitter: float = 0.0

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called with at least one observation."""
        return self._x_train is not None and len(self._x_train) > 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        """Fit the posterior to observations ``x`` (n, d) and targets ``y`` (n,)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if x.ndim == 1:
            x = x.reshape(-1, 1)
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"x and y disagree on the number of points: {x.shape[0]} vs {y.shape[0]}")
        if x.shape[0] == 0:
            raise ValueError("cannot fit a GP to zero observations")

        self._x_train = x
        self._y_raw = y

        gram = self.kernel(x, x)
        gram[np.diag_indices_from(gram)] += self.noise
        # jitter escalation keeps the Cholesky stable for near-duplicate points
        jitter = 1e-10
        for _ in range(8):
            try:
                factor = scipy.linalg.cholesky(gram + jitter * np.eye(len(x)), lower=True)
                break
            except scipy.linalg.LinAlgError:
                jitter *= 10.0
        else:  # pragma: no cover - pathological kernels only
            raise RuntimeError("GP covariance matrix is not positive definite even with jitter")
        self._jitter = jitter
        self._install_factor(factor)
        self._refresh_targets()
        return self

    def _install_factor(self, factor: np.ndarray) -> None:
        """Move a fresh Cholesky factor into a buffer with spare capacity.

        ``_cholesky`` is a view into ``_chol_buffer``; :meth:`update` writes
        the new rank-k block straight into the spare rows, so growing the
        factor costs no O(n^2) copy until the capacity is exhausted (then one
        amortised reallocation).
        """
        n = factor.shape[0]
        self._chol_buffer = _ensure_capacity(None, factor, n, n // 2)
        self._cholesky = self._chol_buffer[:n, :n]

    def _refresh_targets(self) -> None:
        """Re-standardise the raw targets and recompute ``alpha`` — O(n^2).

        The Cholesky factor depends only on ``X``, the kernel and the noise, so
        both :meth:`fit` and :meth:`update` share this exact O(n^2) tail.
        """
        y = self._y_raw
        if self.normalize_y:
            self._y_mean = float(y.mean())
            self._y_std = float(y.std())
            if self._y_std < 1e-12:
                self._y_std = 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        self._y_train = (y - self._y_mean) / self._y_std
        # two triangular solves instead of cho_solve: skips scipy's O(n^2)
        # finiteness re-validation of a factor we built and already trust
        beta = scipy.linalg.solve_triangular(
            self._cholesky, self._y_train, lower=True, check_finite=False
        )
        self._alpha = scipy.linalg.solve_triangular(
            self._cholesky, beta, lower=True, trans="T", check_finite=False
        )

    def update(self, x_new: np.ndarray, y_new: np.ndarray) -> "GaussianProcessRegressor":
        """Observe new points with a rank-k Cholesky extension — O(n^2 k).

        Produces the same posterior as refitting on the concatenated data (to
        floating-point rounding): the extended matrix uses the jitter of the
        cached factor, and targets are re-standardised exactly as in
        :meth:`fit`.  When the extension is numerically unstable (e.g. the new
        points duplicate training points so the Schur complement loses positive
        definiteness) the method falls back to a full refit, which re-runs the
        jitter escalation.
        """
        x_new = np.asarray(x_new, dtype=np.float64)
        y_new = np.asarray(y_new, dtype=np.float64).reshape(-1)
        if x_new.ndim == 1:
            # mirror fit(): 1-D inputs are a column of scalar points
            x_new = x_new.reshape(-1, 1)
        if x_new.shape[0] != y_new.shape[0]:
            raise ValueError(
                f"x and y disagree on the number of points: {x_new.shape[0]} vs {y_new.shape[0]}"
            )
        if x_new.shape[0] == 0:
            return self
        if not self.is_fitted:
            return self.fit(x_new, y_new)
        if x_new.shape[1] != self._x_train.shape[1]:
            raise ValueError(
                f"new points have {x_new.shape[1]} features, training data has {self._x_train.shape[1]}"
            )

        x_all = np.concatenate([self._x_train, x_new], axis=0)
        y_all = np.concatenate([self._y_raw, y_new])

        k_cross = self.kernel(self._x_train, x_new)  # (n, k)
        k_new = self.kernel(x_new, x_new)  # (k, k)
        k_new[np.diag_indices_from(k_new)] += self.noise + self._jitter
        l21 = scipy.linalg.solve_triangular(
            self._cholesky, k_cross, lower=True, check_finite=False
        )  # (n, k)
        schur = k_new - l21.T @ l21
        # conditioning guard: a near-singular Schur complement (new points
        # duplicating training points) would make the extension numerically
        # worthless — take the jitter-escalation path through a full refit
        tiny = 1e-8 * float(np.max(np.diag(k_new)))
        if np.any(np.diag(schur) <= tiny):
            return self.fit(x_all, y_all)
        try:
            l22 = scipy.linalg.cholesky(schur, lower=True)
        except scipy.linalg.LinAlgError:
            return self.fit(x_all, y_all)

        n, k = self._cholesky.shape[0], x_new.shape[0]
        total = n + k
        self._chol_buffer = _ensure_capacity(self._chol_buffer, self._cholesky, total, total // 2)
        self._chol_buffer[n:total, :n] = l21.T
        self._chol_buffer[n:total, n:total] = l22
        self._cholesky = self._chol_buffer[:total, :total]
        self._x_train = x_all
        self._y_raw = y_all
        self._refresh_targets()
        return self

    def fantasize(self, pool: np.ndarray) -> "FantasizedPosterior":
        """Constant-liar view of this posterior over a fixed candidate ``pool``."""
        if not self.is_fitted:
            raise RuntimeError("GP is not fitted; fantasize() needs a posterior to condition")
        return FantasizedPosterior(self, pool)

    def predict(self, x: np.ndarray, return_std: bool = True) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean (and standard deviation) at query points ``x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if not self.is_fitted:
            mean = np.zeros(x.shape[0]) + self._y_mean
            std = np.ones(x.shape[0])
            return (mean, std) if return_std else (mean, np.zeros_like(mean))

        k_star = self.kernel(self._x_train, x)  # (n_train, n_query)
        mean = k_star.T @ self._alpha
        mean = mean * self._y_std + self._y_mean
        if not return_std:
            return mean, np.zeros_like(mean)
        v = scipy.linalg.solve_triangular(self._cholesky, k_star, lower=True, check_finite=False)
        prior_var = self.kernel.diag(x)
        var = np.maximum(prior_var - (v ** 2).sum(axis=0), 1e-12)
        std = np.sqrt(var) * self._y_std
        return mean, std

    def log_marginal_likelihood(self) -> float:
        """Log marginal likelihood of the standardised training targets."""
        if not self.is_fitted:
            raise RuntimeError("GP is not fitted")
        n = len(self._y_train)
        data_fit = -0.5 * float(self._y_train @ self._alpha)
        complexity = -float(np.sum(np.log(np.diag(self._cholesky))))
        return data_fit + complexity - 0.5 * n * np.log(2.0 * np.pi)

    def sample_posterior(self, x: np.ndarray, num_samples: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``num_samples`` joint posterior function samples at points ``x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        mean, _ = self.predict(x, return_std=False)
        if not self.is_fitted:
            cov = self.kernel(x, x)
        else:
            k_star = self.kernel(self._x_train, x)
            v = scipy.linalg.solve_triangular(self._cholesky, k_star, lower=True, check_finite=False)
            cov = self.kernel(x, x) - v.T @ v
            cov *= self._y_std ** 2
        cov[np.diag_indices_from(cov)] += 1e-10
        # "eigh" tolerates the slight asymmetry / near-singularity of GP posteriors
        return rng.multivariate_normal(mean, cov, size=num_samples, method="eigh")


def tune_kernel(
    kernel: Kernel,
    x: np.ndarray,
    y: np.ndarray,
    noise: float,
    factors: Tuple[float, ...] = (0.25, 0.5, 2.0, 4.0),
    rounds: int = 2,
) -> Tuple[Kernel, float]:
    """Retune a kernel's scalar hyperparameters by marginal likelihood.

    Coordinate descent over the kernel's :attr:`~repro.gp.kernels.Kernel.TUNABLE`
    parameters (length scale / gamma and signal variance): each round tries
    multiplying every parameter in turn by each ``factor`` and keeps the value
    with the best log marginal likelihood, evaluated by a full GP fit on
    ``(x, y)``.  The grid is deterministic — no random restarts — so a seeded
    search that adapts its hyperparameters stays reproducible.

    Each candidate evaluation is an O(n^3) fit; the Bayesian optimizer
    amortises the cost by calling this only every ``hyperopt_every``
    observations (see :class:`~repro.core.bayes_opt.BayesianOptimizer`).

    Returns ``(kernel, lml)`` — a **new** kernel instance (the input is never
    mutated; it is returned unchanged when it has no tunables or already
    maximises the likelihood over the grid) and the winning log marginal
    likelihood.
    """

    def lml(candidate: Kernel) -> float:
        model = GaussianProcessRegressor(kernel=candidate, noise=noise)
        model.fit(x, y)
        return model.log_marginal_likelihood()

    best = kernel
    best_lml = lml(kernel)
    if not kernel.TUNABLE:
        return best, best_lml
    for _ in range(max(1, int(rounds))):
        improved = False
        for name in best.TUNABLE:
            current = float(getattr(best, name))
            for factor in factors:
                candidate = copy.copy(best)
                setattr(candidate, name, current * factor)
                try:
                    candidate_lml = lml(candidate)
                except (scipy.linalg.LinAlgError, RuntimeError):  # pragma: no cover
                    continue
                if candidate_lml > best_lml + 1e-12:
                    best, best_lml = candidate, candidate_lml
                    improved = True
        if not improved:
            break
    return best, best_lml


class FantasizedPosterior:
    """Incremental constant-liar posterior over a fixed candidate pool.

    Built once per proposal round from a fitted GP, this caches the two
    quantities every prediction needs —

        beta = L^-1 y_std            (n,)
        V    = L^-1 K(X, pool)       (n, m)

    — so that the pool posterior is ``mean = V^T beta`` and
    ``var = diag(K(pool, pool)) - sum(V^2, axis=0)`` in O(n m), with no
    re-factorisation.  :meth:`condition` adds a fantasy observation (a "lie")
    by extending ``L`` one rank at a time: the new row of ``V`` and entry of
    ``beta`` each cost O(n^2 + n m), versus the O((n+j)^3) refit the naive
    constant-liar loop performs per lie.

    Fantasy targets are standardised with the *base* GP's statistics (lies
    never shift the target normalisation), so conditioning is a pure posterior
    update of the fitted model.  The base GP itself is never mutated.
    """

    def __init__(self, gp: GaussianProcessRegressor, pool: np.ndarray) -> None:
        pool = np.asarray(pool, dtype=np.float64)
        if pool.ndim == 1:
            pool = pool.reshape(1, -1)
        if pool.shape[1] != gp._x_train.shape[1]:
            raise ValueError(
                f"pool has {pool.shape[1]} features, training data has {gp._x_train.shape[1]}"
            )
        self.kernel = gp.kernel
        self._y_mean = gp._y_mean
        self._y_std = gp._y_std
        self._diag_shift = gp.noise + gp._jitter
        self._x = gp._x_train
        # private factor buffer with slack for a typical batch of lies; the
        # base GP's factor is copied once per proposal round, never per lie
        n = gp._cholesky.shape[0]
        self._buffer = _ensure_capacity(None, gp._cholesky, n, 8)
        self._chol = self._buffer[:n, :n]
        self._beta = scipy.linalg.solve_triangular(
            gp._cholesky, gp._y_train, lower=True, check_finite=False
        )
        self._pool = pool
        self._v = scipy.linalg.solve_triangular(
            gp._cholesky, self.kernel(gp._x_train, pool), lower=True, check_finite=False
        )  # (n, m)
        self._prior_diag = self.kernel.diag(pool)
        self.num_fantasies = 0

    # ------------------------------------------------------------------
    @property
    def pool_size(self) -> int:
        """Number of candidates still in the pool."""
        return self._pool.shape[0]

    def predict(self) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation over the remaining pool."""
        mean = self._v.T @ self._beta * self._y_std + self._y_mean
        var = np.maximum(self._prior_diag - (self._v ** 2).sum(axis=0), 1e-12)
        std = np.sqrt(var) * self._y_std
        return mean, std

    def remove(self, index: int) -> np.ndarray:
        """Drop pool candidate ``index`` (e.g. once proposed); returns its encoding."""
        chosen = self._pool[index].copy()
        self._pool = np.delete(self._pool, index, axis=0)
        self._v = np.delete(self._v, index, axis=1)
        self._prior_diag = np.delete(self._prior_diag, index)
        return chosen

    def condition(self, x: np.ndarray, y: float) -> "FantasizedPosterior":
        """Add one fantasy observation ``(x, y)`` via a rank-1 extension."""
        x = np.asarray(x, dtype=np.float64).reshape(1, -1)
        k_x = self.kernel(self._x, x)[:, 0]  # (n,)
        ell = scipy.linalg.solve_triangular(self._chol, k_x, lower=True, check_finite=False)
        k_self = float(self.kernel.diag(x)[0]) + self._diag_shift
        # clamp rather than escalate jitter: lies near training points carry no
        # new information, and the fantasy posterior only steers one proposal
        d = np.sqrt(max(k_self - float(ell @ ell), 1e-12))

        n = self._chol.shape[0]
        self._buffer = _ensure_capacity(self._buffer, self._chol, n + 1, 8)
        self._buffer[n, :n] = ell
        self._buffer[n, n] = d
        self._chol = self._buffer[: n + 1, : n + 1]
        self._x = np.concatenate([self._x, x], axis=0)

        y_standardised = (float(y) - self._y_mean) / self._y_std
        beta_new = (y_standardised - float(ell @ self._beta)) / d
        self._beta = np.append(self._beta, beta_new)

        if self.pool_size:
            row = (self.kernel(x, self._pool)[0] - ell @ self._v) / d
        else:
            row = np.zeros(0)
        self._v = np.concatenate([self._v, row.reshape(1, -1)], axis=0)
        self.num_fantasies += 1
        return self
