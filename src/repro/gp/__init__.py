"""Gaussian-process regression and acquisition functions for Bayesian optimization.

The paper's hyperparameter-optimization strategy (Section III-B) models the
accuracy drop ``f(A)`` over adjacency matrices ``A`` with a Gaussian process
prior and selects new candidates with the Upper Confidence Bound acquisition
function.  This package provides the required machinery:

* :mod:`repro.gp.kernels` — RBF and Matérn kernels over continuous encodings
  plus a Hamming kernel tailored to the discrete adjacency-matrix encoding;
* :mod:`repro.gp.gp` — exact GP regression (Cholesky-based) with observation
  noise and standardised targets;
* :mod:`repro.gp.acquisition` — UCB (used by the paper), Expected Improvement
  and Probability of Improvement (mentioned as the common alternatives).
"""

from repro.gp.kernels import HammingKernel, Kernel, Matern52Kernel, RBFKernel
from repro.gp.gp import FantasizedPosterior, GaussianProcessRegressor, tune_kernel
from repro.gp.acquisition import (
    AcquisitionFunction,
    ExpectedImprovement,
    ProbabilityOfImprovement,
    UpperConfidenceBound,
    get_acquisition,
)

__all__ = [
    "HammingKernel",
    "Kernel",
    "Matern52Kernel",
    "RBFKernel",
    "FantasizedPosterior",
    "GaussianProcessRegressor",
    "tune_kernel",
    "AcquisitionFunction",
    "ExpectedImprovement",
    "ProbabilityOfImprovement",
    "UpperConfidenceBound",
    "get_acquisition",
]
