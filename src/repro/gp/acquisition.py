"""Acquisition functions for Bayesian optimization.

All acquisitions are written for **minimisation** of the objective (the paper
minimises the ANN→SNN accuracy drop) and return scores where *larger is
better* — the optimizer picks ``argmax`` over candidate scores.

The paper uses the Upper Confidence Bound (Auer, 2002 — reference [13]):
it "shifts from concentrating on exploration ... to focusing on
exploitation"; we implement the standard ``mean - kappa * std`` lower
confidence bound for minimisation (often still called UCB in the BO
literature) with an optional schedule that decays ``kappa`` over iterations.
Expected Improvement and Probability of Improvement are provided as the
common alternatives mentioned in Section III-B.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.stats import norm


class AcquisitionFunction:
    """Base class; subclasses score candidate points given the GP posterior."""

    #: registry name used by :func:`get_acquisition`
    name = "base"

    def __call__(
        self,
        mean: np.ndarray,
        std: np.ndarray,
        best_observed: float,
        iteration: int = 0,
    ) -> np.ndarray:
        """Return per-candidate scores (larger = more promising to evaluate)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(f"{k}={v}" for k, v in vars(self).items())
        return f"{type(self).__name__}({params})"


class UpperConfidenceBound(AcquisitionFunction):
    """Confidence-bound acquisition for minimisation.

    score = -(mean - kappa * std)

    ``kappa`` controls the exploration/exploitation balance; with
    ``decay < 1`` the effective kappa shrinks as ``kappa * decay**iteration``,
    reproducing the paper's description of UCB moving from exploration to
    exploitation over the course of the search.
    """

    name = "ucb"

    def __init__(self, kappa: float = 2.0, decay: float = 0.97, min_kappa: float = 0.1) -> None:
        if kappa <= 0:
            raise ValueError(f"kappa must be positive, got {kappa}")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.kappa = float(kappa)
        self.decay = float(decay)
        self.min_kappa = float(min_kappa)

    def effective_kappa(self, iteration: int) -> float:
        """Exploration weight at a given iteration."""
        return max(self.kappa * self.decay ** iteration, self.min_kappa)

    def __call__(self, mean, std, best_observed, iteration: int = 0) -> np.ndarray:
        kappa = self.effective_kappa(iteration)
        return -(mean - kappa * std)


class ExpectedImprovement(AcquisitionFunction):
    """Expected improvement over the best observed objective value."""

    name = "ei"

    def __init__(self, xi: float = 0.01) -> None:
        if xi < 0:
            raise ValueError(f"xi must be non-negative, got {xi}")
        self.xi = float(xi)

    def __call__(self, mean, std, best_observed, iteration: int = 0) -> np.ndarray:
        std = np.maximum(std, 1e-12)
        improvement = best_observed - mean - self.xi
        z = improvement / std
        return improvement * norm.cdf(z) + std * norm.pdf(z)


class ProbabilityOfImprovement(AcquisitionFunction):
    """Probability that a candidate improves on the best observed value."""

    name = "pi"

    def __init__(self, xi: float = 0.01) -> None:
        if xi < 0:
            raise ValueError(f"xi must be non-negative, got {xi}")
        self.xi = float(xi)

    def __call__(self, mean, std, best_observed, iteration: int = 0) -> np.ndarray:
        std = np.maximum(std, 1e-12)
        z = (best_observed - mean - self.xi) / std
        return norm.cdf(z)


def probability_in_bounds(
    mean: np.ndarray,
    std: np.ndarray,
    lower: Optional[float] = None,
    upper: Optional[float] = None,
) -> np.ndarray:
    """Gaussian probability that each candidate's value lands in ``[lower, upper]``.

    The feasibility model behind constrained acquisition: a constraint
    ``g(x) <= budget`` is scored as ``P(g(x) <= budget)`` under the GP
    posterior of ``g``.  ``None`` bounds are open; with both bounds set the
    exact interval probability ``cdf(upper) - cdf(lower)`` is returned (not
    the product of the one-sided probabilities, which overestimates it).  A
    degenerate posterior (``std ~ 0``) degrades to the 0/1 indicator of the
    mean.
    """
    std = np.maximum(np.asarray(std, dtype=np.float64), 1e-12)
    mean = np.asarray(mean, dtype=np.float64)
    upper_cdf = norm.cdf((float(upper) - mean) / std) if upper is not None else np.ones_like(mean)
    lower_cdf = norm.cdf((float(lower) - mean) / std) if lower is not None else np.zeros_like(mean)
    return np.maximum(upper_cdf - lower_cdf, 0.0)


def feasibility_weighted(scores: np.ndarray, probability: np.ndarray) -> np.ndarray:
    """Weight acquisition scores by a feasibility probability.

    Classic constrained EI multiplies the (non-negative) acquisition by the
    feasibility probability; confidence-bound scores can be negative, so the
    scores are first shifted to a non-negative scale (which preserves their
    ``argmax``) before weighting.  A tiny range-scaled floor keeps the
    feasibility signal decisive even when the shifted worst score is zero.
    """
    scores = np.asarray(scores, dtype=np.float64)
    probability = np.asarray(probability, dtype=np.float64)
    if scores.size == 0:
        return scores
    spread = float(scores.max() - scores.min())
    floor = 1e-3 * spread if spread > 0 else 1.0
    return (scores - scores.min() + floor) * probability


_REGISTRY = {cls.name: cls for cls in (UpperConfidenceBound, ExpectedImprovement, ProbabilityOfImprovement)}


def get_acquisition(name_or_instance, **kwargs) -> AcquisitionFunction:
    """Resolve an acquisition by name (``"ucb"``, ``"ei"``, ``"pi"``) or pass through."""
    if isinstance(name_or_instance, AcquisitionFunction):
        return name_or_instance
    name = str(name_or_instance)
    if name not in _REGISTRY:
        raise KeyError(f"unknown acquisition {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[name](**kwargs)
