"""Generic mini-batch trainer for models mapping input batches to logits.

The same loop trains ANNs (standard backprop) and SNNs (surrogate-gradient
BPTT, with the model wrapped in a :class:`~repro.snn.temporal.TemporalRunner`):
the time dimension is entirely hidden inside the forward pass, and gradients
flow through the recorded autodiff graph either way.

The paper's training setups are captured by :class:`TrainingConfig`
(SGD + momentum 0.9 for CIFAR-10 / CIFAR-10-DVS, Adam for DVS128 Gesture,
configurable epochs and learning rate).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.data.loaders import ArrayDataset, BatchLoader, DatasetSplits
from repro.nn.losses import CrossEntropyLoss, accuracy
from repro.nn.module import Module
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.scheduler import ConstantLR, CosineAnnealingLR, LRScheduler, StepLR
from repro.training.callbacks import EarlyStopping, TrainingHistory
from repro.training.evaluation import evaluate_classifier
from repro.tensor.random import default_rng
from repro.trace import span


@dataclass
class TrainingConfig:
    """Hyperparameters of one training run."""

    epochs: int = 10
    batch_size: int = 16
    learning_rate: float = 0.01
    optimizer: str = "sgd"
    momentum: float = 0.9
    weight_decay: float = 0.0
    grad_clip: Optional[float] = 5.0
    scheduler: str = "constant"
    scheduler_step: int = 10
    scheduler_gamma: float = 0.5
    label_smoothing: float = 0.0
    early_stopping_patience: Optional[int] = None
    shuffle: bool = True
    seed: int = 0
    #: fused-BPTT dispatch mode for temporal models: "auto" fuses whenever the
    #: model qualifies (bit-identical to graph autograd), "on" requires it,
    #: "off" always uses the recorded graph (see repro.snn.fused_step)
    fused: str = "auto"

    def with_overrides(self, **kwargs) -> "TrainingConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


def _build_optimizer(model: Module, config: TrainingConfig) -> Optimizer:
    name = config.optimizer.strip().lower()
    if name == "sgd":
        return SGD(
            model.parameters(),
            lr=config.learning_rate,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
    if name == "adam":
        return Adam(model.parameters(), lr=config.learning_rate, weight_decay=config.weight_decay)
    raise ValueError(f"unknown optimizer {config.optimizer!r} (use 'sgd' or 'adam')")


def _build_scheduler(optimizer: Optimizer, config: TrainingConfig) -> LRScheduler:
    name = config.scheduler.strip().lower()
    if name == "constant":
        return ConstantLR(optimizer)
    if name == "step":
        return StepLR(optimizer, step_size=config.scheduler_step, gamma=config.scheduler_gamma)
    if name == "cosine":
        return CosineAnnealingLR(optimizer, t_max=max(config.epochs, 1))
    raise ValueError(f"unknown scheduler {config.scheduler!r} (use 'constant', 'step' or 'cosine')")


class Trainer:
    """Mini-batch gradient-descent trainer with validation tracking."""

    def __init__(self, config: Optional[TrainingConfig] = None) -> None:
        self.config = config or TrainingConfig()

    def fit(
        self,
        model: Module,
        train_dataset: ArrayDataset,
        val_dataset: Optional[ArrayDataset] = None,
        loss_fn=None,
    ) -> TrainingHistory:
        """Train ``model`` and return the epoch history.

        ``model`` must be callable on an input batch tensor and return logits
        of shape ``(batch, num_classes)``.
        """
        config = self.config
        loss_fn = loss_fn or CrossEntropyLoss(label_smoothing=config.label_smoothing)
        optimizer = _build_optimizer(model, config)
        scheduler = _build_scheduler(optimizer, config)
        loader = BatchLoader(
            train_dataset,
            batch_size=config.batch_size,
            shuffle=config.shuffle,
            rng=default_rng(config.seed),
        )
        stopper = (
            EarlyStopping(patience=config.early_stopping_patience)
            if config.early_stopping_patience
            else None
        )
        history = TrainingHistory()

        from repro.tensor import Tensor  # local import to keep module load light
        from repro.snn.fused_step import fused_training  # local import, same reason

        for _epoch in range(config.epochs):
            with span("train.epoch", epoch=_epoch) as epoch_span, fused_training(config.fused):
                model.train()
                epoch_losses = []
                epoch_accuracies = []
                for inputs, targets in loader:
                    with span("train.step") as step_span:
                        optimizer.zero_grad()
                        logits = model(Tensor(inputs))
                        loss = loss_fn(logits, targets)
                        loss.backward()
                        if config.grad_clip:
                            optimizer.clip_grad_norm(config.grad_clip)
                        optimizer.step()
                        epoch_losses.append(loss.item())
                        epoch_accuracies.append(accuracy(logits, targets))
                        if step_span:
                            step_span.set(loss=float(loss.item()))
                val_accuracy = (
                    evaluate_classifier(model, val_dataset, batch_size=config.batch_size)
                    if val_dataset is not None and len(val_dataset)
                    else float(np.mean(epoch_accuracies)) if epoch_accuracies else 0.0
                )
                history.record(
                    train_loss=float(np.mean(epoch_losses)) if epoch_losses else 0.0,
                    train_accuracy=float(np.mean(epoch_accuracies)) if epoch_accuracies else 0.0,
                    val_accuracy=val_accuracy,
                    learning_rate=scheduler.current_lr(),
                )
                if epoch_span:
                    epoch_span.set(batches=len(epoch_losses), val_accuracy=float(val_accuracy))
                scheduler.step()
                if stopper is not None and stopper.update(val_accuracy):
                    break
        model.eval()
        return history

    def evaluate(self, model: Module, dataset: ArrayDataset) -> float:
        """Top-1 accuracy of ``model`` on ``dataset``."""
        return evaluate_classifier(model, dataset, batch_size=self.config.batch_size)

    def fit_splits(self, model: Module, splits: DatasetSplits, loss_fn=None) -> TrainingHistory:
        """Convenience: train on ``splits.train`` with validation on ``splits.val``."""
        return self.fit(model, splits.train, splits.val, loss_fn=loss_fn)
