"""Training callbacks: history recording and early stopping."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class TrainingHistory:
    """Per-epoch record of losses, accuracies and learning rates."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)
    learning_rate: List[float] = field(default_factory=list)

    def record(self, train_loss: float, train_accuracy: float, val_accuracy: float, learning_rate: float) -> None:
        """Append one epoch's metrics."""
        self.train_loss.append(float(train_loss))
        self.train_accuracy.append(float(train_accuracy))
        self.val_accuracy.append(float(val_accuracy))
        self.learning_rate.append(float(learning_rate))

    @property
    def num_epochs(self) -> int:
        """Number of completed epochs."""
        return len(self.train_loss)

    @property
    def best_val_accuracy(self) -> float:
        """Best validation accuracy observed so far (0 if no epoch ran)."""
        return max(self.val_accuracy) if self.val_accuracy else 0.0

    @property
    def best_epoch(self) -> int:
        """Index of the epoch with the best validation accuracy."""
        if not self.val_accuracy:
            return -1
        return int(max(range(len(self.val_accuracy)), key=self.val_accuracy.__getitem__))

    def as_dict(self) -> Dict[str, List[float]]:
        """Plain-dict view (for serialisation / reporting)."""
        return {
            "train_loss": list(self.train_loss),
            "train_accuracy": list(self.train_accuracy),
            "val_accuracy": list(self.val_accuracy),
            "learning_rate": list(self.learning_rate),
        }


class EarlyStopping:
    """Stop training when the monitored metric stops improving.

    Monitors validation accuracy (larger is better).  ``patience`` epochs
    without an improvement of at least ``min_delta`` triggers a stop.
    """

    def __init__(self, patience: int = 10, min_delta: float = 0.0) -> None:
        if patience <= 0:
            raise ValueError(f"patience must be positive, got {patience}")
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.best: Optional[float] = None
        self.epochs_without_improvement = 0
        self.should_stop = False

    def update(self, value: float) -> bool:
        """Register a new metric value; returns True when training should stop."""
        if self.best is None or value > self.best + self.min_delta:
            self.best = value
            self.epochs_without_improvement = 0
        else:
            self.epochs_without_improvement += 1
            if self.epochs_without_improvement >= self.patience:
                self.should_stop = True
        return self.should_stop

    def reset(self) -> None:
        """Forget all observed values."""
        self.best = None
        self.epochs_without_improvement = 0
        self.should_stop = False
