"""Parallel evaluation of independent workloads.

The paper's Bayesian optimizer proposes ``k`` architectures per iteration so
that they can be trained in parallel.  Two execution strategies build on this
module: :func:`parallel_map` spreads one batch over a throwaway
:mod:`multiprocessing` pool (the classic barrier path), and
:class:`~repro.core.async_eval.AsyncEvaluationExecutor` keeps a persistent
pool and hands candidates out one at a time — both share the start-method
configuration and picklability probes defined here.  With ``workers <= 1``
(the default used by the tests and by single-core CI machines) evaluation
degrades gracefully to a sequential loop with identical results.

Fallback to sequential execution happens only for *infrastructure* problems
established before any work runs: the workload cannot be pickled for shipment
to workers, or the pool itself cannot be created (sandboxed environments).
An exception raised by ``func`` during evaluation propagates to the caller —
silently re-running the whole batch sequentially would double its cost and
mask the real bug.

The start method defaults to ``fork`` where available (cheapest, shares the
parent's loaded datasets) and can be forced with the
``REPRO_MP_START_METHOD`` environment variable (``fork``/``spawn``/
``forkserver``) — CI uses ``spawn`` to prove the workload survives a fresh
interpreter.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import weakref
from typing import Callable, List, Sequence, TypeVar

from repro.trace import absorb, capture_context, remote_activation

T = TypeVar("T")
R = TypeVar("R")

#: environment variable forcing the multiprocessing start method
START_METHOD_ENV = "REPRO_MP_START_METHOD"


def default_worker_count() -> int:
    """A conservative default worker count for candidate evaluation."""
    try:
        cores = os.cpu_count() or 1
    except NotImplementedError:  # pragma: no cover - exotic platforms
        cores = 1
    return max(1, cores - 1)


def start_method() -> str:
    """The configured multiprocessing start method."""
    method = os.environ.get(START_METHOD_ENV)
    if method:
        return method
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def get_mp_context():
    """The multiprocessing context for the configured start method.

    An invalid ``REPRO_MP_START_METHOD`` raises here rather than degrading
    silently — a misconfigured run must not masquerade as a parallel one.
    """
    return multiprocessing.get_context(start_method())


#: funcs already probed for picklability; an objective is pickled by the pool
#: on every batch anyway, so the probe result is worth remembering (the func
#: object — e.g. a CachedObjective holding the dataset — can be large)
_PICKLABLE_FUNCS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def func_is_picklable(func) -> bool:
    """Whether ``func`` can be shipped to worker processes (result cached)."""
    try:
        known = _PICKLABLE_FUNCS.get(func)
    except TypeError:  # unhashable/unweakrefable func
        known = None
    if known is None:
        try:
            pickle.dumps(func)
            known = True
        except Exception:  # repro-lint: disable=swallowed-exception (any serialisation failure means "cannot ship"; the probe's only output is the boolean)
            known = False
        try:
            _PICKLABLE_FUNCS[func] = known
        except TypeError:
            pass
    return known


def _workload_is_picklable(func, items) -> bool:
    """Whether ``func`` and ``items`` can be shipped to worker processes."""
    if not func_is_picklable(func):
        return False
    try:
        pickle.dumps(items)
    except Exception:  # repro-lint: disable=swallowed-exception (probe: unpicklable items select the documented sequential fallback)
        return False
    return True


class _TracedMapCall:
    """Picklable wrapper shipping trace context alongside a pool-mapped func.

    Used only on the pool path and only while tracing is active in the
    submitting thread: the worker runs ``func`` under
    :func:`~repro.trace.remote_activation` and returns ``(result, spans)``;
    the parent unwraps the pair and folds the spans into its recorder, so
    worker-side spans (training epochs, per-op profiling) stitch under the
    span that was open at submission time.
    """

    __slots__ = ("func", "context")

    def __init__(self, func, context) -> None:
        self.func = func
        self.context = context

    def __getstate__(self):
        return (self.func, self.context)

    def __setstate__(self, state) -> None:
        self.func, self.context = state

    def __call__(self, item):
        with remote_activation(self.context) as spans:
            result = self.func(item)
        return result, spans


def parallel_map(func: Callable[[T], R], items: Sequence[T], workers: int = 1) -> List[R]:
    """Apply ``func`` to every item, optionally across worker processes.

    Results preserve the input order.  Sequential fallback happens only when
    the workload is unpicklable or the pool cannot be created; exceptions
    raised *by* ``func`` always propagate, with any worker count.  An invalid
    ``REPRO_MP_START_METHOD`` raises instead of degrading silently — a
    misconfigured run must not masquerade as a multiprocessing one.

    When the submitting thread is tracing, the captured trace context rides to
    the workers and their spans come back stitched under the caller's open
    span (see :class:`_TracedMapCall`); with tracing disabled the workload is
    shipped unwrapped, exactly as before the tracing subsystem existed.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    if not _workload_is_picklable(func, items):
        return [func(item) for item in items]
    mp_context = get_mp_context()
    try:
        pool = mp_context.Pool(processes=min(workers, len(items)))
    except (OSError, PermissionError):  # pragma: no cover - sandbox fallback
        return [func(item) for item in items]
    trace_context = capture_context()
    with pool:
        if trace_context is None:
            return pool.map(func, items)
        pairs = pool.map(_TracedMapCall(func, trace_context), items)
    results: List[R] = []
    for result, spans in pairs:
        absorb(spans)
        results.append(result)
    return results
