"""Parallel evaluation of independent workloads.

The paper's Bayesian optimizer proposes ``k`` architectures per iteration so
that they can be trained in parallel.  On a multi-core machine the candidate
evaluations (each an independent short training run) are spread over worker
processes with :mod:`multiprocessing`; with ``workers <= 1`` (the default used
by the tests and by single-core CI machines) evaluation degrades gracefully to
a sequential loop with identical results.

The implementation uses ``multiprocessing.get_context("spawn")`` when forking
is unavailable and falls back to sequential execution if the pool cannot be
created at all (sandboxed environments), so callers never have to care.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, List, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_worker_count() -> int:
    """A conservative default worker count for candidate evaluation."""
    try:
        cores = os.cpu_count() or 1
    except NotImplementedError:  # pragma: no cover - exotic platforms
        cores = 1
    return max(1, cores - 1)


def parallel_map(func: Callable[[T], R], items: Sequence[T], workers: int = 1) -> List[R]:
    """Apply ``func`` to every item, optionally across worker processes.

    Results preserve the input order.  ``func`` and ``items`` must be
    picklable when ``workers > 1``; if the pool cannot be created (restricted
    environments) the function silently falls back to sequential execution so
    that experiments always complete.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        context = multiprocessing.get_context("spawn")
    fallback_errors = (OSError, PermissionError) + pickle_error_types()
    try:
        with context.Pool(processes=min(workers, len(items))) as pool:
            return pool.map(func, items)
    except fallback_errors:  # pragma: no cover - sandbox fallback
        return [func(item) for item in items]


def pickle_error_types() -> tuple:
    """Exception types indicating the workload cannot be shipped to workers."""
    import pickle

    return (pickle.PicklingError, AttributeError, TypeError)
