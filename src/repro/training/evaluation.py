"""Evaluation helpers: accuracy, confusion matrices, firing-rate and latency."""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np

from repro.data.loaders import ArrayDataset
from repro.nn.losses import confusion_matrix
from repro.nn.module import Module
from repro.snn.metrics import FiringRateMonitor, SpikeStatistics
from repro.tensor import Tensor, no_grad
from repro.trace import span


def _forward_batches(model: Module, dataset: ArrayDataset, batch_size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Run the model over the dataset and collect raw scores and labels."""
    scores = []
    labels = []
    n = len(dataset)
    if n == 0:
        return np.zeros((0, dataset.num_classes)), np.zeros(0, dtype=np.int64)
    for start in range(0, n, batch_size):
        inputs, targets = dataset[np.arange(start, min(start + batch_size, n))]
        with no_grad():
            output = model(Tensor(inputs))
        scores.append(output.data)
        labels.append(targets)
    return np.concatenate(scores, axis=0), np.concatenate(labels, axis=0)


def evaluate_classifier(
    model: Module,
    dataset: ArrayDataset,
    batch_size: int = 32,
    return_confusion: bool = False,
):
    """Top-1 accuracy of ``model`` on ``dataset`` (optionally with confusion matrix).

    ``model`` must map an input batch to logits; spiking models should be
    wrapped in :class:`repro.snn.temporal.TemporalRunner` first.  The model is
    switched to evaluation mode for the duration of the call and restored
    afterwards.
    """
    was_training = model.training
    model.eval()
    try:
        scores, labels = _forward_batches(model, dataset, batch_size)
    finally:
        model.train(was_training)
    predictions = scores.argmax(axis=1)
    acc = float((predictions == labels).mean()) if len(labels) else 0.0
    if return_confusion:
        return acc, confusion_matrix(scores, labels, dataset.num_classes)
    return acc


def evaluate_with_spikes(
    model: Module,
    spiking_core: Module,
    dataset: ArrayDataset,
    batch_size: int = 32,
) -> Tuple[float, SpikeStatistics]:
    """Accuracy plus spiking statistics in a single pass.

    Parameters
    ----------
    model:
        The callable evaluated on batches (typically a ``TemporalRunner``).
    spiking_core:
        The module whose spiking layers should be monitored (typically the
        runner's wrapped model).
    """
    monitor = FiringRateMonitor(spiking_core)
    was_training = model.training
    model.eval()
    try:
        with monitor:
            scores, labels = _forward_batches(model, dataset, batch_size)
        stats = monitor.statistics()
    finally:
        model.train(was_training)
    predictions = scores.argmax(axis=1)
    acc = float((predictions == labels).mean()) if len(labels) else 0.0
    return acc, stats


def measure_latency_ms(
    model: Module,
    batch: np.ndarray,
    runs: int = 5,
    warmup: int = 1,
    dtype=None,
) -> float:
    """Wall-clock latency of one inference forward pass, in milliseconds.

    The timing protocol (documented in ``docs/architecture.md`` and consumed
    by the ``latency`` search objective): the model is switched to evaluation
    mode, ``warmup`` untimed passes populate every workspace/state buffer of
    the inference fast path, then ``runs`` passes are individually timed under
    :func:`~repro.tensor.tensor.no_grad` and the **median** is returned —
    robust to scheduler noise, unlike a mean or a single pass.

    ``model`` must map an input batch to scores; spiking models should be
    wrapped in :class:`repro.snn.temporal.TemporalRunner` first, so the
    reported number covers the full simulation window (every time step), not
    a single step.  ``dtype`` selects the batch dtype: ``None`` (default)
    keeps a float batch's dtype (non-float input is promoted to float64), so
    the objective measures whichever substrate — float64, float32, or the
    event-driven sparse mode (enable :func:`repro.tensor.sparse.
    sparse_inference` around the call) — the caller set up.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    batch = np.asarray(batch) if dtype is None else np.asarray(batch, dtype=dtype)
    if batch.dtype.kind != "f":
        batch = batch.astype(np.float64)
    inputs = Tensor(batch)
    was_training = model.training
    model.eval()
    # One span around the whole protocol (never per-run: entering a span per
    # timed pass would perturb the very timings this function reports).
    with span("measure_latency", runs=runs, warmup=warmup) as latency_span:
        try:
            with no_grad():
                for _ in range(warmup):
                    model(inputs)
                timings = []
                for _ in range(runs):
                    start = time.perf_counter()
                    model(inputs)
                    timings.append(time.perf_counter() - start)
        finally:
            model.train(was_training)
        median_ms = float(np.median(timings) * 1e3)
        if latency_span:
            latency_span.set(median_ms=median_ms)
    return median_ms
