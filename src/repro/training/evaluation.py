"""Evaluation helpers: accuracy, confusion matrices and firing-rate evaluation."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.data.loaders import ArrayDataset
from repro.nn.losses import confusion_matrix
from repro.nn.module import Module
from repro.snn.metrics import FiringRateMonitor, SpikeStatistics
from repro.tensor import Tensor, no_grad


def _forward_batches(model: Module, dataset: ArrayDataset, batch_size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Run the model over the dataset and collect raw scores and labels."""
    scores = []
    labels = []
    n = len(dataset)
    if n == 0:
        return np.zeros((0, dataset.num_classes)), np.zeros(0, dtype=np.int64)
    for start in range(0, n, batch_size):
        inputs, targets = dataset[np.arange(start, min(start + batch_size, n))]
        with no_grad():
            output = model(Tensor(inputs))
        scores.append(output.data)
        labels.append(targets)
    return np.concatenate(scores, axis=0), np.concatenate(labels, axis=0)


def evaluate_classifier(
    model: Module,
    dataset: ArrayDataset,
    batch_size: int = 32,
    return_confusion: bool = False,
):
    """Top-1 accuracy of ``model`` on ``dataset`` (optionally with confusion matrix).

    ``model`` must map an input batch to logits; spiking models should be
    wrapped in :class:`repro.snn.temporal.TemporalRunner` first.  The model is
    switched to evaluation mode for the duration of the call and restored
    afterwards.
    """
    was_training = model.training
    model.eval()
    try:
        scores, labels = _forward_batches(model, dataset, batch_size)
    finally:
        model.train(was_training)
    predictions = scores.argmax(axis=1)
    acc = float((predictions == labels).mean()) if len(labels) else 0.0
    if return_confusion:
        return acc, confusion_matrix(scores, labels, dataset.num_classes)
    return acc


def evaluate_with_spikes(
    model: Module,
    spiking_core: Module,
    dataset: ArrayDataset,
    batch_size: int = 32,
) -> Tuple[float, SpikeStatistics]:
    """Accuracy plus spiking statistics in a single pass.

    Parameters
    ----------
    model:
        The callable evaluated on batches (typically a ``TemporalRunner``).
    spiking_core:
        The module whose spiking layers should be monitored (typically the
        runner's wrapped model).
    """
    monitor = FiringRateMonitor(spiking_core)
    was_training = model.training
    model.eval()
    try:
        with monitor:
            scores, labels = _forward_batches(model, dataset, batch_size)
        stats = monitor.statistics()
    finally:
        model.train(was_training)
    predictions = scores.argmax(axis=1)
    acc = float((predictions == labels).mean()) if len(labels) else 0.0
    return acc, stats
