"""Training and evaluation harness shared by ANNs and SNNs.

The :class:`~repro.training.trainer.Trainer` drives any module that maps an
input batch to class logits; spiking networks are handled by wrapping them in
:class:`repro.snn.temporal.TemporalRunner` (done automatically by
:class:`~repro.training.snn_trainer.SNNTrainer`), so the same loop implements
both standard backprop and surrogate-gradient BPTT.
"""

from repro.training.callbacks import EarlyStopping, TrainingHistory
from repro.training.evaluation import evaluate_classifier, evaluate_with_spikes
from repro.training.trainer import Trainer, TrainingConfig
from repro.training.snn_trainer import SNNTrainer, SNNTrainingConfig
from repro.training.parallel import parallel_map

__all__ = [
    "EarlyStopping",
    "TrainingHistory",
    "evaluate_classifier",
    "evaluate_with_spikes",
    "Trainer",
    "TrainingConfig",
    "SNNTrainer",
    "SNNTrainingConfig",
    "parallel_map",
]
