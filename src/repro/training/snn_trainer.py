"""Trainer specialisation for spiking networks.

Wraps a stateful spiking model in a :class:`~repro.snn.temporal.TemporalRunner`
and reuses the generic :class:`~repro.training.trainer.Trainer` loop, so
training an SNN is surrogate-gradient backpropagation through time over the
chosen number of simulation steps.  Additionally exposes joint
accuracy + firing-rate evaluation, the two quantities reported in Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.data.loaders import ArrayDataset, DatasetSplits
from repro.nn.module import Module
from repro.snn.encoding import SpikeEncoder
from repro.snn.metrics import SpikeStatistics
from repro.snn.temporal import TemporalRunner
from repro.training.callbacks import TrainingHistory
from repro.training.evaluation import evaluate_with_spikes
from repro.training.trainer import Trainer, TrainingConfig


@dataclass
class SNNTrainingConfig(TrainingConfig):
    """Training configuration extended with simulation parameters."""

    num_steps: int = 8
    readout: str = "membrane_mean"
    truncation: Optional[int] = None


class SNNTrainer:
    """Trainer for stateful spiking models."""

    def __init__(self, config: Optional[SNNTrainingConfig] = None, encoder: Optional[SpikeEncoder] = None) -> None:
        self.config = config or SNNTrainingConfig()
        self.encoder = encoder
        self._trainer = Trainer(self.config)

    def make_runner(self, model: Module) -> TemporalRunner:
        """Wrap ``model`` in a temporal runner configured like this trainer."""
        return TemporalRunner(
            model,
            num_steps=self.config.num_steps,
            encoder=self.encoder,
            readout=self.config.readout,
            truncation=self.config.truncation,
        )

    def fit(
        self,
        model: Module,
        train_dataset: ArrayDataset,
        val_dataset: Optional[ArrayDataset] = None,
        loss_fn=None,
    ) -> TrainingHistory:
        """Train the spiking model with surrogate-gradient BPTT."""
        runner = self.make_runner(model)
        return self._trainer.fit(runner, train_dataset, val_dataset, loss_fn=loss_fn)

    def fit_splits(self, model: Module, splits: DatasetSplits, loss_fn=None) -> TrainingHistory:
        """Convenience: train on ``splits.train`` with validation on ``splits.val``."""
        return self.fit(model, splits.train, splits.val, loss_fn=loss_fn)

    def evaluate(self, model: Module, dataset: ArrayDataset) -> float:
        """Top-1 accuracy of the spiking model on ``dataset``."""
        runner = self.make_runner(model)
        return self._trainer.evaluate(runner, dataset)

    def evaluate_with_firing_rate(self, model: Module, dataset: ArrayDataset) -> Tuple[float, SpikeStatistics]:
        """Accuracy and spiking statistics (average firing rate) in one pass."""
        runner = self.make_runner(model)
        return evaluate_with_spikes(runner, model, dataset, batch_size=self.config.batch_size)
