"""Spiking-activity metrics: firing rates and spike statistics.

The paper reports the *average firing rate* of each SNN — "the rate at which a
block generates output signals" — both in the skip-connection analysis
(Fig. 1) and in the adaptation results (Table I).  The firing rate of a
spiking layer over a simulation window is the fraction of (neuron, time-step)
pairs that emitted a spike; the network-level number averages over all spiking
layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.nn.module import Module
from repro.snn.neurons import SpikingNeuron


@dataclass
class SpikeStatistics:
    """Aggregated spiking activity of one evaluation run."""

    #: mean firing probability per spiking layer, keyed by dotted module path
    per_layer_rate: Dict[str, float] = field(default_factory=dict)
    #: total number of spikes emitted per layer over the window
    per_layer_spikes: Dict[str, float] = field(default_factory=dict)
    #: number of simulation steps observed
    num_steps: int = 0

    @property
    def average_firing_rate(self) -> float:
        """Unweighted mean of the per-layer firing rates (as a fraction in [0, 1])."""
        if not self.per_layer_rate:
            return 0.0
        return float(np.mean(list(self.per_layer_rate.values())))

    @property
    def average_firing_rate_percent(self) -> float:
        """Average firing rate expressed in percent, as reported in the paper."""
        return 100.0 * self.average_firing_rate

    @property
    def total_spikes(self) -> float:
        """Total spike count across all layers."""
        return float(sum(self.per_layer_spikes.values()))

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"average firing rate: {self.average_firing_rate_percent:.2f}% over {self.num_steps} steps"]
        for name, rate in sorted(self.per_layer_rate.items()):
            lines.append(f"  {name or '<root>'}: {100.0 * rate:.2f}%")
        return "\n".join(lines)


class FiringRateMonitor:
    """Context manager recording spikes from every spiking layer of a model.

    Usage::

        monitor = FiringRateMonitor(model)
        with monitor:
            runner(batch)              # any number of forward passes
        stats = monitor.statistics()
        print(stats.average_firing_rate_percent)
    """

    def __init__(self, model: Module) -> None:
        self.model = model
        self._layers: Dict[str, SpikingNeuron] = {
            name: module for name, module in model.named_modules() if isinstance(module, SpikingNeuron)
        }
        self._previous_flags: Dict[str, bool] = {}

    def __enter__(self) -> "FiringRateMonitor":
        for name, layer in self._layers.items():
            self._previous_flags[name] = (layer.record_spikes, layer.record_history)
            layer.record_spikes = True
            # the monitor reads only the running sums, so it never pays the
            # O(num_steps) per-layer retention of the full spike history
            layer.record_history = False
            layer.clear_spike_record()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        for name, layer in self._layers.items():
            layer.record_spikes, layer.record_history = self._previous_flags.get(name, (False, True))
        return None

    def statistics(self) -> SpikeStatistics:
        """Build :class:`SpikeStatistics` from the layers' running spike sums.

        The per-layer rates and totals are maintained incrementally while
        recording (:meth:`~repro.snn.neurons.SpikingNeuron._record`), so this
        never re-reduces the full spike record.
        """
        stats = SpikeStatistics()
        max_steps = 0
        for name, layer in self._layers.items():
            steps = layer.recorded_steps()
            if not steps:
                stats.per_layer_rate[name] = 0.0
                stats.per_layer_spikes[name] = 0.0
                continue
            stats.per_layer_rate[name] = layer.firing_rate()
            stats.per_layer_spikes[name] = layer.recorded_spike_total()
            max_steps = max(max_steps, steps)
        stats.num_steps = max_steps
        return stats

    def clear(self) -> None:
        """Drop all recorded spikes (keeps recording enabled)."""
        for layer in self._layers.values():
            layer.clear_spike_record()


def average_firing_rate(model: Module) -> float:
    """Convenience: average firing rate (fraction) from currently recorded spikes.

    Assumes the model's spiking layers have ``record_spikes`` enabled (e.g. by
    a surrounding :class:`FiringRateMonitor`) and have run at least one
    sequence.  Reads the layers' running sums, so it works whether or not the
    full spike history was retained.
    """
    rates = []
    for module in model.modules():
        if isinstance(module, SpikingNeuron) and module.recorded_steps():
            rates.append(module.firing_rate())
    if not rates:
        return 0.0
    return float(np.mean(rates))
