"""Spike-based loss functions (snnTorch ``functional``-style).

The generic trainer uses plain cross-entropy on the aggregated readout, which
is what the paper's setup amounts to.  For users who want to train on spike
counts directly (the other common convention in the SNN literature) this
module provides the standard alternatives:

* :class:`SpikeCountCrossEntropy` — cross-entropy on the per-class spike
  counts accumulated over the simulation window (``ce_count_loss``);
* :class:`SpikeRateCrossEntropy` — the same on spike *rates* (counts divided
  by the number of steps), which is scale-independent (``ce_rate_loss``);
* :class:`SpikeCountMSE` — mean-squared error pushing the correct class
  towards a target number of spikes and the others towards a (lower) target
  (``mse_count_loss``);
* :class:`FiringRateRegularizer` — an auxiliary penalty keeping the average
  firing rate of hidden layers near a target sparsity, the standard tool for
  controlling the energy/accuracy trade-off the paper discusses.

All losses accept either the already-aggregated score tensor or the list of
per-step output tensors produced by :func:`repro.snn.temporal.run_temporal`'s
``step_callback``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.snn.metrics import SpikeStatistics
from repro.tensor import Tensor, ops

ScoresLike = Union[Tensor, Sequence[Tensor]]


def _aggregate_counts(scores: ScoresLike) -> Tensor:
    """Sum per-step outputs into counts; pass through already-aggregated tensors."""
    if isinstance(scores, Tensor):
        return scores
    outputs = list(scores)
    if not outputs:
        raise ValueError("no outputs to aggregate")
    stacked = ops.stack(outputs, axis=0)
    return stacked.sum(axis=0)


class SpikeCountCrossEntropy(Module):
    """Cross-entropy on accumulated spike counts."""

    def __init__(self, label_smoothing: float = 0.0) -> None:
        super().__init__()
        self._ce = CrossEntropyLoss(label_smoothing=label_smoothing)

    def forward(self, scores: ScoresLike, targets: np.ndarray) -> Tensor:
        return self._ce(_aggregate_counts(scores), targets)


class SpikeRateCrossEntropy(Module):
    """Cross-entropy on spike rates (counts normalised by the number of steps)."""

    def __init__(self, num_steps: int, label_smoothing: float = 0.0) -> None:
        super().__init__()
        if num_steps <= 0:
            raise ValueError(f"num_steps must be positive, got {num_steps}")
        self.num_steps = int(num_steps)
        self._ce = CrossEntropyLoss(label_smoothing=label_smoothing)

    def forward(self, scores: ScoresLike, targets: np.ndarray) -> Tensor:
        counts = _aggregate_counts(scores)
        return self._ce(counts / float(self.num_steps), targets)


class SpikeCountMSE(Module):
    """MSE between spike counts and class-dependent targets.

    The correct class is pushed towards ``correct_rate * num_steps`` spikes and
    every other class towards ``incorrect_rate * num_steps`` spikes — the
    ``mse_count_loss`` formulation popularised by snnTorch.
    """

    def __init__(self, num_steps: int, correct_rate: float = 0.8, incorrect_rate: float = 0.1) -> None:
        super().__init__()
        if num_steps <= 0:
            raise ValueError(f"num_steps must be positive, got {num_steps}")
        if not 0.0 <= incorrect_rate <= correct_rate <= 1.0:
            raise ValueError("rates must satisfy 0 <= incorrect_rate <= correct_rate <= 1")
        self.num_steps = int(num_steps)
        self.correct_rate = float(correct_rate)
        self.incorrect_rate = float(incorrect_rate)

    def forward(self, scores: ScoresLike, targets: np.ndarray) -> Tensor:
        counts = _aggregate_counts(scores)
        targets = np.asarray(targets).astype(int)
        n, num_classes = counts.shape
        target_counts = np.full((n, num_classes), self.incorrect_rate * self.num_steps)
        target_counts[np.arange(n), targets] = self.correct_rate * self.num_steps
        diff = counts - Tensor(target_counts)
        return (diff * diff).mean()


class FiringRateRegularizer:
    """Quadratic penalty keeping the measured firing rate near ``target_rate``.

    Applied to :class:`~repro.snn.metrics.SpikeStatistics` (or a raw float), it
    returns a plain float penalty that can be added to a scalar objective — it
    is *not* differentiated through (firing statistics are collected outside
    the autodiff graph), matching how the energy-aware search objective uses
    it.
    """

    def __init__(self, target_rate: float = 0.1, weight: float = 1.0) -> None:
        if not 0.0 <= target_rate <= 1.0:
            raise ValueError(f"target_rate must be in [0, 1], got {target_rate}")
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight}")
        self.target_rate = float(target_rate)
        self.weight = float(weight)

    def __call__(self, firing_rate: Union[float, SpikeStatistics]) -> float:
        rate = firing_rate.average_firing_rate if isinstance(firing_rate, SpikeStatistics) else float(firing_rate)
        return self.weight * (rate - self.target_rate) ** 2
