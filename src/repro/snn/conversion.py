"""Generic ANN-to-SNN module-tree conversion.

The paper adapts standard ANN architectures to SNNs by replacing the analog
activation functions with spiking neurons and unrolling the network in time
(the weights are kept; they are then fine-tuned with surrogate-gradient BPTT).
For the DAG-block models of :mod:`repro.models` the spiking variant is built
directly from the block specification, but this module provides the generic
tree-rewrite used for plain :class:`~repro.nn.module.Sequential` models and by
the quickstart example.
"""

from __future__ import annotations

import copy
from typing import Optional

from repro.nn.activations import LeakyReLU, ReLU
from repro.nn.module import Module
from repro.snn.neurons import LIFNeuron
from repro.snn.surrogate import SurrogateGradient


def convert_relu_to_lif(
    model: Module,
    beta: float = 0.9,
    threshold: float = 1.0,
    surrogate: SurrogateGradient | str = "fast_sigmoid",
    reset_mechanism: str = "subtract",
) -> int:
    """Replace every ReLU/LeakyReLU in ``model`` (in place) with a LIF neuron.

    Returns the number of activations replaced.  The converted model becomes
    stateful: wrap it in :class:`repro.snn.temporal.TemporalRunner` (or call
    :func:`repro.snn.temporal.reset_states` manually) before use.
    """
    replaced = 0
    for module in model.modules():
        for child_name, child in list(module._modules.items()):
            if isinstance(child, (ReLU, LeakyReLU)):
                neuron = LIFNeuron(
                    beta=beta,
                    threshold=threshold,
                    surrogate=surrogate,
                    reset_mechanism=reset_mechanism,
                )
                module._modules[child_name] = neuron
                object.__setattr__(module, child_name, neuron)
                # keep Sequential/ModuleList internal item lists consistent
                items = getattr(module, "_items", None)
                if items is not None:
                    for index, item in enumerate(items):
                        if item is child:
                            items[index] = neuron
                replaced += 1
    return replaced


def spiking_copy(
    model: Module,
    beta: float = 0.9,
    threshold: float = 1.0,
    surrogate: SurrogateGradient | str = "fast_sigmoid",
    reset_mechanism: str = "subtract",
) -> Module:
    """Return a deep copy of ``model`` with activations replaced by LIF neurons.

    The original model is left untouched; weights are shared by value (copied),
    matching the paper's adaptation procedure where the converted SNN starts
    from the trained ANN weights.
    """
    clone = copy.deepcopy(model)
    convert_relu_to_lif(
        clone,
        beta=beta,
        threshold=threshold,
        surrogate=surrogate,
        reset_mechanism=reset_mechanism,
    )
    return clone
