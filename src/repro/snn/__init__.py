"""Spiking neural network substrate (a from-scratch snnTorch equivalent).

The paper trains SNNs with surrogate-gradient backpropagation through time
using the snnTorch library.  This package reimplements the pieces the
experiments rely on:

* :mod:`repro.snn.surrogate` — smoothed derivatives of the Heaviside spike
  nonlinearity (fast sigmoid, arctan, triangular, straight-through);
* :mod:`repro.snn.neurons` — leaky integrate-and-fire neuron layers with
  configurable decay, threshold and reset mechanism, maintaining membrane
  state across simulation time steps;
* :mod:`repro.snn.encoding` — input encoders turning static images into spike
  trains (rate/Poisson, latency, direct/constant) and passing event frames
  through unchanged;
* :mod:`repro.snn.temporal` — the time-loop runner that unrolls a stateful
  spiking model over ``num_steps`` and accumulates the readout (BPTT happens
  automatically through the recorded autodiff graph);
* :mod:`repro.snn.fused_step` — fused temporal training kernels: one fused
  forward stashing minimal residuals plus one hand-written reverse-time
  adjoint, bit-identical to the recorded graph but without per-step graph
  construction (dispatched automatically by :class:`TemporalRunner`);
* :mod:`repro.snn.metrics` — firing-rate and spike-count monitors used for
  the energy analysis in Fig. 1 and Table I;
* :mod:`repro.snn.mac` — multiply-accumulate (MAC) and synaptic-operation
  estimators quantifying the DSC-vs-ASC energy trade-off;
* :mod:`repro.snn.conversion` — utilities converting an ANN module tree into
  its spiking counterpart (ReLU -> LIF).
"""

from repro.snn.surrogate import (
    ATanSurrogate,
    FastSigmoidSurrogate,
    StraightThroughSurrogate,
    SurrogateGradient,
    TriangularSurrogate,
    get_surrogate,
    spike_function,
)
from repro.snn.neurons import (
    ALIFNeuron,
    IFNeuron,
    LeakyIntegrator,
    LIFNeuron,
    SpikingNeuron,
    SynapticNeuron,
)
from repro.snn.encoding import (
    ConstantCurrentEncoder,
    LatencyEncoder,
    RateEncoder,
    RepeatEncoder,
    SpikeEncoder,
)
from repro.snn.temporal import TemporalRunner, reset_states, run_temporal
from repro.snn.fused_step import (
    aggregate_fused_counters,
    fused_counters,
    fused_dispatch,
    fused_mode,
    fused_training,
    merge_fused_counters,
    reset_fused_counters,
)
from repro.snn.metrics import FiringRateMonitor, SpikeStatistics, average_firing_rate
from repro.snn.mac import MACCounter, estimate_block_macs, estimate_energy, estimate_model_macs
from repro.snn.conversion import convert_relu_to_lif, spiking_copy
from repro.snn.losses import (
    FiringRateRegularizer,
    SpikeCountCrossEntropy,
    SpikeCountMSE,
    SpikeRateCrossEntropy,
)

__all__ = [
    "ATanSurrogate",
    "FastSigmoidSurrogate",
    "StraightThroughSurrogate",
    "SurrogateGradient",
    "TriangularSurrogate",
    "get_surrogate",
    "spike_function",
    "ALIFNeuron",
    "IFNeuron",
    "LeakyIntegrator",
    "LIFNeuron",
    "SpikingNeuron",
    "SynapticNeuron",
    "ConstantCurrentEncoder",
    "LatencyEncoder",
    "RateEncoder",
    "RepeatEncoder",
    "SpikeEncoder",
    "TemporalRunner",
    "reset_states",
    "run_temporal",
    "fused_training",
    "fused_dispatch",
    "fused_mode",
    "fused_counters",
    "reset_fused_counters",
    "aggregate_fused_counters",
    "merge_fused_counters",
    "FiringRateMonitor",
    "SpikeStatistics",
    "average_firing_rate",
    "MACCounter",
    "estimate_block_macs",
    "estimate_energy",
    "estimate_model_macs",
    "convert_relu_to_lif",
    "spiking_copy",
    "FiringRateRegularizer",
    "SpikeCountCrossEntropy",
    "SpikeCountMSE",
    "SpikeRateCrossEntropy",
]
