"""Spiking neuron layers.

All neurons follow the stateful one-step convention of snnTorch: calling the
module with the synaptic input for time step ``t`` updates the internal
membrane potential and returns the emitted spikes.  The temporal runner
(:mod:`repro.snn.temporal`) resets the state before each sequence and loops
over the time steps; BPTT falls out of the recorded autodiff graph because the
membrane state tensors stay connected across steps.

The discrete leaky integrate-and-fire (LIF) update implemented here is

    U[t] = beta * U[t-1] + I[t] - reset_term
    S[t] = H(U[t] - theta)

with either *soft reset* (subtract ``theta`` whenever a spike was emitted at
the previous step) or *hard reset* (zero the membrane), matching
``snntorch.Leaky(beta, threshold, reset_mechanism)``.
"""

from __future__ import annotations

from typing import Optional

from repro.nn.module import Module
from repro.tensor import Tensor
from repro.snn.surrogate import FastSigmoidSurrogate, SurrogateGradient, get_surrogate, spike_function


class SpikingNeuron(Module):
    """Base class for stateful spiking neuron layers.

    Subclasses implement :meth:`forward` and use :attr:`membrane` /
    :attr:`previous_spikes` to carry state between time steps.  The base class
    handles state reset, detachment (for truncated BPTT) and optional spike
    recording used by the firing-rate monitors.
    """

    def __init__(
        self,
        threshold: float = 1.0,
        surrogate: SurrogateGradient | str = "fast_sigmoid",
        reset_mechanism: str = "subtract",
    ) -> None:
        super().__init__()
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if reset_mechanism not in ("subtract", "zero", "none"):
            raise ValueError(f"reset_mechanism must be 'subtract', 'zero' or 'none', got {reset_mechanism!r}")
        self.threshold = float(threshold)
        self.surrogate = get_surrogate(surrogate)
        self.reset_mechanism = reset_mechanism
        self.membrane: Optional[Tensor] = None
        self.previous_spikes: Optional[Tensor] = None
        self.record_spikes = False
        self.spike_record: list = []

    # ------------------------------------------------------------------
    # state handling
    # ------------------------------------------------------------------
    def reset_state(self) -> None:
        """Clear the membrane potential and spike history (start of a sequence)."""
        self.membrane = None
        self.previous_spikes = None
        self.spike_record = []

    def detach_state(self) -> None:
        """Cut the state from the autodiff graph (truncated BPTT boundary)."""
        if self.membrane is not None:
            self.membrane = Tensor(self.membrane.data.copy(), requires_grad=False)
        if self.previous_spikes is not None:
            self.previous_spikes = Tensor(self.previous_spikes.data.copy(), requires_grad=False)

    def _apply_reset(self, membrane: Tensor) -> Tensor:
        """Apply the configured reset using the spikes from the previous step."""
        if self.previous_spikes is None or self.reset_mechanism == "none":
            return membrane
        if self.reset_mechanism == "subtract":
            return membrane - self.previous_spikes.detach() * self.threshold
        # hard reset: zero the membrane wherever the neuron fired
        return membrane * (1.0 - self.previous_spikes.detach())

    def _emit(self, membrane: Tensor) -> Tensor:
        """Emit spikes from ``membrane``, updating state and optional records."""
        spikes = spike_function(membrane, self.threshold, self.surrogate)
        self.membrane = membrane
        self.previous_spikes = spikes
        if self.record_spikes:
            self.spike_record.append(spikes.data.copy())
        return spikes

    def firing_rate(self) -> float:
        """Mean firing probability over the recorded steps (requires recording)."""
        if not self.spike_record:
            return 0.0
        total = sum(float(s.mean()) for s in self.spike_record)
        return total / len(self.spike_record)


class LIFNeuron(SpikingNeuron):
    """Leaky integrate-and-fire neuron (snnTorch ``Leaky`` equivalent).

    Parameters
    ----------
    beta:
        Membrane decay factor in (0, 1].  ``beta=1`` recovers the
        non-leaky integrate-and-fire neuron.
    threshold:
        Firing threshold ``theta``.
    surrogate:
        Surrogate gradient (name or instance), default fast sigmoid.
    reset_mechanism:
        ``"subtract"`` (soft reset, default), ``"zero"`` (hard reset) or
        ``"none"``.
    learn_beta:
        Reserved for future use (the paper keeps beta fixed); accepted for
        API compatibility but must be ``False``.
    """

    def __init__(
        self,
        beta: float = 0.9,
        threshold: float = 1.0,
        surrogate: SurrogateGradient | str = "fast_sigmoid",
        reset_mechanism: str = "subtract",
        learn_beta: bool = False,
    ) -> None:
        super().__init__(threshold=threshold, surrogate=surrogate, reset_mechanism=reset_mechanism)
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {beta}")
        if learn_beta:
            raise NotImplementedError("learnable beta is not supported in this reproduction")
        self.beta = float(beta)

    def forward(self, synaptic_input: Tensor) -> Tensor:
        if self.membrane is None:
            membrane = synaptic_input
        else:
            membrane = self._apply_reset(self.membrane) * self.beta + synaptic_input
        return self._emit(membrane)

    def extra_repr(self) -> str:
        return (
            f"beta={self.beta}, threshold={self.threshold}, "
            f"reset={self.reset_mechanism!r}, surrogate={self.surrogate.name!r}"
        )


class IFNeuron(SpikingNeuron):
    """Non-leaky integrate-and-fire neuron (``beta = 1``)."""

    def __init__(
        self,
        threshold: float = 1.0,
        surrogate: SurrogateGradient | str = "fast_sigmoid",
        reset_mechanism: str = "subtract",
    ) -> None:
        super().__init__(threshold=threshold, surrogate=surrogate, reset_mechanism=reset_mechanism)

    def forward(self, synaptic_input: Tensor) -> Tensor:
        if self.membrane is None:
            membrane = synaptic_input
        else:
            membrane = self._apply_reset(self.membrane) + synaptic_input
        return self._emit(membrane)

    def extra_repr(self) -> str:
        return f"threshold={self.threshold}, reset={self.reset_mechanism!r}"


class ALIFNeuron(SpikingNeuron):
    """Adaptive leaky integrate-and-fire neuron (threshold adaptation).

    On top of the LIF dynamics the firing threshold increases by ``adaptation``
    after every emitted spike and decays back towards the base threshold with
    factor ``adaptation_decay``:

        theta[t] = threshold + a[t]
        a[t]     = adaptation_decay * a[t-1] + adaptation * S[t-1]

    Threshold adaptation is the standard mechanism for keeping firing rates
    sparse without hand-tuning the static threshold — directly relevant to the
    energy/accuracy trade-off the paper discusses, and useful as a drop-in
    replacement for :class:`LIFNeuron` in the templates (pass a custom
    ``NeuronConfig``-like factory).
    """

    def __init__(
        self,
        beta: float = 0.9,
        threshold: float = 1.0,
        adaptation: float = 0.2,
        adaptation_decay: float = 0.9,
        surrogate: SurrogateGradient | str = "fast_sigmoid",
        reset_mechanism: str = "subtract",
    ) -> None:
        super().__init__(threshold=threshold, surrogate=surrogate, reset_mechanism=reset_mechanism)
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {beta}")
        if adaptation < 0:
            raise ValueError(f"adaptation must be non-negative, got {adaptation}")
        if not 0.0 <= adaptation_decay < 1.0:
            raise ValueError(f"adaptation_decay must be in [0, 1), got {adaptation_decay}")
        self.beta = float(beta)
        self.adaptation = float(adaptation)
        self.adaptation_decay = float(adaptation_decay)
        self._adaptive_component = None  # numpy array, not part of the autodiff graph

    def reset_state(self) -> None:
        super().reset_state()
        self._adaptive_component = None

    def forward(self, synaptic_input: Tensor) -> Tensor:
        import numpy as np

        if self.membrane is None:
            membrane = synaptic_input
        else:
            membrane = self._apply_reset(self.membrane) * self.beta + synaptic_input
        # update the (non-differentiable) threshold adaptation from past spikes
        if self._adaptive_component is None:
            self._adaptive_component = np.zeros_like(membrane.data)
        else:
            self._adaptive_component = self.adaptation_decay * self._adaptive_component
            if self.previous_spikes is not None:
                self._adaptive_component = self._adaptive_component + self.adaptation * self.previous_spikes.data
        # effective threshold shift is applied to the input of the spike function
        shifted = membrane - Tensor(self._adaptive_component)
        spikes = spike_function(shifted, self.threshold, self.surrogate)
        self.membrane = membrane
        self.previous_spikes = spikes
        if self.record_spikes:
            self.spike_record.append(spikes.data.copy())
        return spikes

    def extra_repr(self) -> str:
        return (
            f"beta={self.beta}, threshold={self.threshold}, adaptation={self.adaptation}, "
            f"adaptation_decay={self.adaptation_decay}"
        )


class SynapticNeuron(SpikingNeuron):
    """Second-order (synaptic conductance) LIF neuron (snnTorch ``Synaptic``).

    The synaptic current is itself a decaying state variable:

        I[t] = alpha * I[t-1] + X[t]
        U[t] = beta * U[t-1] + I[t] - reset_term

    which low-pass-filters the input spikes and produces smoother membrane
    trajectories — often easier to train on event data with sparse frames.
    """

    def __init__(
        self,
        alpha: float = 0.8,
        beta: float = 0.9,
        threshold: float = 1.0,
        surrogate: SurrogateGradient | str = "fast_sigmoid",
        reset_mechanism: str = "subtract",
    ) -> None:
        super().__init__(threshold=threshold, surrogate=surrogate, reset_mechanism=reset_mechanism)
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {beta}")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.current: Optional[Tensor] = None

    def reset_state(self) -> None:
        super().reset_state()
        self.current = None

    def detach_state(self) -> None:
        super().detach_state()
        if self.current is not None:
            self.current = Tensor(self.current.data.copy(), requires_grad=False)

    def forward(self, synaptic_input: Tensor) -> Tensor:
        if self.current is None:
            current = synaptic_input
        else:
            current = self.current * self.alpha + synaptic_input
        if self.membrane is None:
            membrane = current
        else:
            membrane = self._apply_reset(self.membrane) * self.beta + current
        self.current = current
        return self._emit(membrane)

    def extra_repr(self) -> str:
        return f"alpha={self.alpha}, beta={self.beta}, threshold={self.threshold}"


class LeakyIntegrator(Module):
    """Non-spiking leaky integrator used as the network readout.

    Accumulates the logits layer's output over time without thresholding,
    ``U[t] = beta * U[t-1] + I[t]``; classification uses the final (or
    time-averaged) membrane value.  This mirrors the common snnTorch practice
    of reading class scores from membrane potentials rather than spikes.
    """

    def __init__(self, beta: float = 0.9) -> None:
        super().__init__()
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {beta}")
        self.beta = float(beta)
        self.membrane: Optional[Tensor] = None

    def reset_state(self) -> None:
        """Clear the accumulated membrane potential."""
        self.membrane = None

    def detach_state(self) -> None:
        """Cut the membrane from the autodiff graph."""
        if self.membrane is not None:
            self.membrane = Tensor(self.membrane.data.copy(), requires_grad=False)

    def forward(self, synaptic_input: Tensor) -> Tensor:
        if self.membrane is None:
            self.membrane = synaptic_input
        else:
            self.membrane = self.membrane * self.beta + synaptic_input
        return self.membrane

    def extra_repr(self) -> str:
        return f"beta={self.beta}"
