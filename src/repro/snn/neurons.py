"""Spiking neuron layers.

All neurons follow the stateful one-step convention of snnTorch: calling the
module with the synaptic input for time step ``t`` updates the internal
membrane potential and returns the emitted spikes.  The temporal runner
(:mod:`repro.snn.temporal`) resets the state before each sequence and loops
over the time steps; BPTT falls out of the recorded autodiff graph because the
membrane state tensors stay connected across steps.

The discrete leaky integrate-and-fire (LIF) update implemented here is

    U[t] = beta * U[t-1] + I[t] - reset_term
    S[t] = H(U[t] - theta)

with either *soft reset* (subtract ``theta`` whenever a spike was emitted at
the previous step) or *hard reset* (zero the membrane), matching
``snntorch.Leaky(beta, threshold, reset_mechanism)``.

Inference fast path
-------------------

Under :func:`~repro.tensor.tensor.no_grad` every neuron dispatches to a fused
graph-free step: the decay, integration, reset and threshold comparison run as
a handful of in-place NumPy calls over **preallocated state buffers** that are
reused across time steps (and across batches of the same shape), instead of
one freshly allocated tensor per op per step.  The fused step performs exactly
the same elementwise operations in the same order as the autograd path, so
membrane trajectories and spike trains are bit-identical between the two paths
(pinned by ``tests/test_inference_fastpath.py``); training/BPTT behaviour is
untouched.  The state tensors (:attr:`SpikingNeuron.membrane`,
:attr:`SpikingNeuron.previous_spikes`) wrap the live buffers, so mixing
grad-mode and no-grad steps within one sequence stays consistent — but a
tensor returned by a fused step is only valid until the same neuron's next
step; consumers that retain per-step outputs must copy
(:meth:`repro.snn.temporal.run_temporal` does this where needed).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor
from repro.tensor.sparse import spike_events
from repro.tensor.tensor import graph_free, is_grad_enabled
from repro.trace import ops_span
from repro.snn.surrogate import FastSigmoidSurrogate, SurrogateGradient, get_surrogate, spike_function


class SpikingNeuron(Module):
    """Base class for stateful spiking neuron layers.

    Subclasses implement :meth:`forward` and use :attr:`membrane` /
    :attr:`previous_spikes` to carry state between time steps.  The base class
    handles state reset, detachment (for truncated BPTT), the fused inference
    buffers and the running spike-rate bookkeeping used by the firing-rate
    monitors (rates are maintained as running sums while recording, so a
    query never re-reduces the whole :attr:`spike_record`).
    """

    def __init__(
        self,
        threshold: float = 1.0,
        surrogate: SurrogateGradient | str = "fast_sigmoid",
        reset_mechanism: str = "subtract",
    ) -> None:
        super().__init__()
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if reset_mechanism not in ("subtract", "zero", "none"):
            raise ValueError(f"reset_mechanism must be 'subtract', 'zero' or 'none', got {reset_mechanism!r}")
        self.threshold = float(threshold)
        self.surrogate = get_surrogate(surrogate)
        self.reset_mechanism = reset_mechanism
        self.membrane: Optional[Tensor] = None
        self.previous_spikes: Optional[Tensor] = None
        self.record_spikes = False
        #: when recording, also retain the full per-step spike arrays in
        #: :attr:`spike_record`.  The firing-rate monitors disable this —
        #: they read only the running sums — so metering a long simulation
        #: window never holds ``num_steps`` feature-map-sized copies per layer
        self.record_history = True
        self.spike_record: list = []
        # running spike-rate bookkeeping (updated while recording)
        self._rate_sum = 0.0
        self._spike_sum = 0.0
        self._record_steps = 0
        # fused-inference buffers, reused across steps and same-shape batches
        self._fast: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # state handling
    # ------------------------------------------------------------------
    def reset_state(self) -> None:
        """Clear membrane potential and spike history (start of a sequence).

        The fused-inference buffers survive the reset — only the *state* is
        cleared — so back-to-back sequences of the same batch shape perform
        no allocations at all.
        """
        self.membrane = None
        self.previous_spikes = None
        self.clear_spike_record()

    def clear_spike_record(self) -> None:
        """Drop recorded spikes and the running spike-rate sums."""
        self.spike_record = []
        self._rate_sum = 0.0
        self._spike_sum = 0.0
        self._record_steps = 0

    def detach_state(self) -> None:
        """Cut the state from the autodiff graph (truncated BPTT boundary)."""
        if self.membrane is not None:
            self.membrane = Tensor(self.membrane.data.copy(), requires_grad=False)
        if self.previous_spikes is not None:
            self.previous_spikes = Tensor(self.previous_spikes.data.copy(), requires_grad=False)

    def _apply_reset(self, membrane: Tensor) -> Tensor:
        """Apply the configured reset using the spikes from the previous step."""
        if self.previous_spikes is None or self.reset_mechanism == "none":
            return membrane
        if self.reset_mechanism == "subtract":
            return membrane - self.previous_spikes.detach() * self.threshold
        # hard reset: zero the membrane wherever the neuron fired
        return membrane * (1.0 - self.previous_spikes.detach())

    def _record(self, spikes_data: np.ndarray) -> None:
        """Record one step: update the running sums, optionally keep the array."""
        if self.record_history:
            self.spike_record.append(spikes_data.copy())
        self._rate_sum += float(spikes_data.mean())
        self._spike_sum += float(spikes_data.sum())
        self._record_steps += 1

    def _emit(self, membrane: Tensor) -> Tensor:
        """Emit spikes from ``membrane``, updating state and optional records."""
        spikes = spike_function(membrane, self.threshold, self.surrogate)
        self.membrane = membrane
        self.previous_spikes = spikes
        if self.record_spikes:
            self._record(spikes.data)
        return spikes

    def firing_rate(self) -> float:
        """Mean firing probability over the recorded steps (requires recording)."""
        if not self._record_steps:
            return 0.0
        return self._rate_sum / self._record_steps

    def recorded_spike_total(self) -> float:
        """Total number of spikes over the recorded steps."""
        return self._spike_sum

    def recorded_steps(self) -> int:
        """Number of steps currently recorded."""
        return self._record_steps

    # ------------------------------------------------------------------
    # fused inference machinery
    # ------------------------------------------------------------------
    def _fast_buffer(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """Lazily (re)allocate one named state buffer for the fused step."""
        buf = self._fast.get(name)
        if buf is None or buf.shape != tuple(shape) or buf.dtype != np.dtype(dtype):
            buf = np.empty(shape, dtype=dtype)
            self._fast[name] = buf
        return buf

    def _state_into(self, buffer: np.ndarray, state: Optional[Tensor]) -> None:
        """Copy carried state into ``buffer`` unless it already lives there."""
        if state is not None and state.data is not buffer:
            np.copyto(buffer, state.data)

    def _membrane_update_inference(
        self, mem: np.ndarray, drive: np.ndarray, scratch: np.ndarray, decay: Optional[float]
    ) -> None:
        """Fused ``mem <- reset(mem) * decay + drive`` (in place).

        Performs the same elementwise operations in the same order as
        :meth:`_apply_reset` followed by the decay/integrate ops, so the
        result is bit-identical to the autograd path.
        """
        previous = self.previous_spikes
        if previous is not None and self.reset_mechanism == "subtract":
            np.multiply(previous.data, self.threshold, out=scratch)
            np.subtract(mem, scratch, out=mem)
        elif previous is not None and self.reset_mechanism == "zero":
            np.subtract(1.0, previous.data, out=scratch)
            np.multiply(mem, scratch, out=mem)
        if decay is not None:
            np.multiply(mem, decay, out=mem)
        np.add(mem, drive, out=mem)

    def _emit_inference(self, mem: np.ndarray, shifted: np.ndarray) -> Tensor:
        """Threshold ``shifted`` (membrane minus threshold shift) into spikes."""
        with ops_span("op.neuron_step") as op:
            spk = self._fast_buffer("spikes", mem.shape, mem.dtype)
            spike_bool = self._fast_buffer("spike_bool", mem.shape, bool)
            np.greater_equal(shifted, 0.0, out=spike_bool)
            np.copyto(spk, spike_bool, casting="unsafe")
            self.membrane = graph_free(mem)
            spikes = graph_free(spk)
            self.previous_spikes = spikes
            # under sparse inference, low-activity steps ship their nonzero index
            # list with the spike tensor (fresh flatnonzero output, never scratch)
            events = spike_events(spike_bool, spk.dtype)
            if events is not None:
                spikes._events = events
            if self.record_spikes:
                self._record(spk)
            if op:
                op.set(
                    kind=type(self).__name__,
                    size=int(mem.size),
                    route="sparse" if events is not None else "dense",
                )
            # repro-lint: disable=buffer-escape (intentional alias: the fast path hands out the persistent spike buffer; run_temporal copies at every retention boundary — see tests/test_inference_fastpath.py)
            return spikes


class LIFNeuron(SpikingNeuron):
    """Leaky integrate-and-fire neuron (snnTorch ``Leaky`` equivalent).

    Parameters
    ----------
    beta:
        Membrane decay factor in (0, 1].  ``beta=1`` recovers the
        non-leaky integrate-and-fire neuron.
    threshold:
        Firing threshold ``theta``.
    surrogate:
        Surrogate gradient (name or instance), default fast sigmoid.
    reset_mechanism:
        ``"subtract"`` (soft reset, default), ``"zero"`` (hard reset) or
        ``"none"``.
    learn_beta:
        Reserved for future use (the paper keeps beta fixed); accepted for
        API compatibility but must be ``False``.
    """

    def __init__(
        self,
        beta: float = 0.9,
        threshold: float = 1.0,
        surrogate: SurrogateGradient | str = "fast_sigmoid",
        reset_mechanism: str = "subtract",
        learn_beta: bool = False,
    ) -> None:
        super().__init__(threshold=threshold, surrogate=surrogate, reset_mechanism=reset_mechanism)
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {beta}")
        if learn_beta:
            raise NotImplementedError("learnable beta is not supported in this reproduction")
        self.beta = float(beta)

    def forward(self, synaptic_input: Tensor) -> Tensor:
        if not is_grad_enabled():
            return self._forward_inference(synaptic_input)
        if self.membrane is None:
            membrane = synaptic_input
        else:
            membrane = self._apply_reset(self.membrane) * self.beta + synaptic_input
        return self._emit(membrane)

    def _forward_inference(self, synaptic_input: Tensor) -> Tensor:
        data = synaptic_input.data
        mem = self._fast_buffer("membrane", data.shape, data.dtype)
        scratch = self._fast_buffer("scratch", data.shape, data.dtype)
        if self.membrane is None:
            np.copyto(mem, data)
        else:
            self._state_into(mem, self.membrane)
            self._membrane_update_inference(mem, data, scratch, self.beta)
        np.subtract(mem, self.threshold, out=scratch)
        return self._emit_inference(mem, scratch)

    def extra_repr(self) -> str:
        return (
            f"beta={self.beta}, threshold={self.threshold}, "
            f"reset={self.reset_mechanism!r}, surrogate={self.surrogate.name!r}"
        )


class IFNeuron(SpikingNeuron):
    """Non-leaky integrate-and-fire neuron (``beta = 1``)."""

    def __init__(
        self,
        threshold: float = 1.0,
        surrogate: SurrogateGradient | str = "fast_sigmoid",
        reset_mechanism: str = "subtract",
    ) -> None:
        super().__init__(threshold=threshold, surrogate=surrogate, reset_mechanism=reset_mechanism)

    def forward(self, synaptic_input: Tensor) -> Tensor:
        if not is_grad_enabled():
            return self._forward_inference(synaptic_input)
        if self.membrane is None:
            membrane = synaptic_input
        else:
            membrane = self._apply_reset(self.membrane) + synaptic_input
        return self._emit(membrane)

    def _forward_inference(self, synaptic_input: Tensor) -> Tensor:
        data = synaptic_input.data
        mem = self._fast_buffer("membrane", data.shape, data.dtype)
        scratch = self._fast_buffer("scratch", data.shape, data.dtype)
        if self.membrane is None:
            np.copyto(mem, data)
        else:
            self._state_into(mem, self.membrane)
            self._membrane_update_inference(mem, data, scratch, decay=None)
        np.subtract(mem, self.threshold, out=scratch)
        return self._emit_inference(mem, scratch)

    def extra_repr(self) -> str:
        return f"threshold={self.threshold}, reset={self.reset_mechanism!r}"


class ALIFNeuron(SpikingNeuron):
    """Adaptive leaky integrate-and-fire neuron (threshold adaptation).

    On top of the LIF dynamics the firing threshold increases by ``adaptation``
    after every emitted spike and decays back towards the base threshold with
    factor ``adaptation_decay``:

        theta[t] = threshold + a[t]
        a[t]     = adaptation_decay * a[t-1] + adaptation * S[t-1]

    Threshold adaptation is the standard mechanism for keeping firing rates
    sparse without hand-tuning the static threshold — directly relevant to the
    energy/accuracy trade-off the paper discusses, and useful as a drop-in
    replacement for :class:`LIFNeuron` in the templates (pass a custom
    ``NeuronConfig``-like factory).
    """

    def __init__(
        self,
        beta: float = 0.9,
        threshold: float = 1.0,
        adaptation: float = 0.2,
        adaptation_decay: float = 0.9,
        surrogate: SurrogateGradient | str = "fast_sigmoid",
        reset_mechanism: str = "subtract",
    ) -> None:
        super().__init__(threshold=threshold, surrogate=surrogate, reset_mechanism=reset_mechanism)
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {beta}")
        if adaptation < 0:
            raise ValueError(f"adaptation must be non-negative, got {adaptation}")
        if not 0.0 <= adaptation_decay < 1.0:
            raise ValueError(f"adaptation_decay must be in [0, 1), got {adaptation_decay}")
        self.beta = float(beta)
        self.adaptation = float(adaptation)
        self.adaptation_decay = float(adaptation_decay)
        self._adaptive_component = None  # numpy array, not part of the autodiff graph

    def reset_state(self) -> None:
        super().reset_state()
        self._adaptive_component = None

    def forward(self, synaptic_input: Tensor) -> Tensor:
        if not is_grad_enabled():
            return self._forward_inference(synaptic_input)
        if self.membrane is None:
            membrane = synaptic_input
        else:
            membrane = self._apply_reset(self.membrane) * self.beta + synaptic_input
        # update the (non-differentiable) threshold adaptation from past spikes
        if self._adaptive_component is None:
            self._adaptive_component = np.zeros_like(membrane.data)
        else:
            self._adaptive_component = self.adaptation_decay * self._adaptive_component
            if self.previous_spikes is not None:
                self._adaptive_component = self._adaptive_component + self.adaptation * self.previous_spikes.data
        # effective threshold shift is applied to the input of the spike function
        shifted = membrane - Tensor(self._adaptive_component)
        spikes = spike_function(shifted, self.threshold, self.surrogate)
        self.membrane = membrane
        self.previous_spikes = spikes
        if self.record_spikes:
            self._record(spikes.data)
        return spikes

    def _forward_inference(self, synaptic_input: Tensor) -> Tensor:
        data = synaptic_input.data
        mem = self._fast_buffer("membrane", data.shape, data.dtype)
        scratch = self._fast_buffer("scratch", data.shape, data.dtype)
        if self.membrane is None:
            np.copyto(mem, data)
        else:
            self._state_into(mem, self.membrane)
            self._membrane_update_inference(mem, data, scratch, self.beta)
        adaptive = self._fast_buffer("adaptive", data.shape, data.dtype)
        if self._adaptive_component is None:
            adaptive[...] = 0.0
        else:
            if self._adaptive_component is not adaptive:
                np.copyto(adaptive, self._adaptive_component)
            np.multiply(adaptive, self.adaptation_decay, out=adaptive)
            if self.previous_spikes is not None:
                np.multiply(self.previous_spikes.data, self.adaptation, out=scratch)
                np.add(adaptive, scratch, out=adaptive)
        self._adaptive_component = adaptive
        np.subtract(mem, adaptive, out=scratch)
        np.subtract(scratch, self.threshold, out=scratch)
        return self._emit_inference(mem, scratch)

    def extra_repr(self) -> str:
        return (
            f"beta={self.beta}, threshold={self.threshold}, adaptation={self.adaptation}, "
            f"adaptation_decay={self.adaptation_decay}"
        )


class SynapticNeuron(SpikingNeuron):
    """Second-order (synaptic conductance) LIF neuron (snnTorch ``Synaptic``).

    The synaptic current is itself a decaying state variable:

        I[t] = alpha * I[t-1] + X[t]
        U[t] = beta * U[t-1] + I[t] - reset_term

    which low-pass-filters the input spikes and produces smoother membrane
    trajectories — often easier to train on event data with sparse frames.
    """

    def __init__(
        self,
        alpha: float = 0.8,
        beta: float = 0.9,
        threshold: float = 1.0,
        surrogate: SurrogateGradient | str = "fast_sigmoid",
        reset_mechanism: str = "subtract",
    ) -> None:
        super().__init__(threshold=threshold, surrogate=surrogate, reset_mechanism=reset_mechanism)
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {beta}")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.current: Optional[Tensor] = None

    def reset_state(self) -> None:
        super().reset_state()
        self.current = None

    def detach_state(self) -> None:
        super().detach_state()
        if self.current is not None:
            self.current = Tensor(self.current.data.copy(), requires_grad=False)

    def forward(self, synaptic_input: Tensor) -> Tensor:
        if not is_grad_enabled():
            return self._forward_inference(synaptic_input)
        if self.current is None:
            current = synaptic_input
        else:
            current = self.current * self.alpha + synaptic_input
        if self.membrane is None:
            membrane = current
        else:
            membrane = self._apply_reset(self.membrane) * self.beta + current
        self.current = current
        return self._emit(membrane)

    def _forward_inference(self, synaptic_input: Tensor) -> Tensor:
        data = synaptic_input.data
        current = self._fast_buffer("current", data.shape, data.dtype)
        mem = self._fast_buffer("membrane", data.shape, data.dtype)
        scratch = self._fast_buffer("scratch", data.shape, data.dtype)
        if self.current is None:
            np.copyto(current, data)
        else:
            self._state_into(current, self.current)
            np.multiply(current, self.alpha, out=current)
            np.add(current, data, out=current)
        if self.membrane is None:
            np.copyto(mem, current)
        else:
            self._state_into(mem, self.membrane)
            self._membrane_update_inference(mem, current, scratch, self.beta)
        self.current = graph_free(current)
        np.subtract(mem, self.threshold, out=scratch)
        return self._emit_inference(mem, scratch)

    def extra_repr(self) -> str:
        return f"alpha={self.alpha}, beta={self.beta}, threshold={self.threshold}"


class LeakyIntegrator(Module):
    """Non-spiking leaky integrator used as the network readout.

    Accumulates the logits layer's output over time without thresholding,
    ``U[t] = beta * U[t-1] + I[t]``; classification uses the final (or
    time-averaged) membrane value.  This mirrors the common snnTorch practice
    of reading class scores from membrane potentials rather than spikes.

    Under :func:`~repro.tensor.tensor.no_grad` the update runs in place on a
    preallocated buffer; the returned tensor is a view of that buffer, valid
    until the next step (the temporal runner copies where a longer lifetime
    is needed).
    """

    def __init__(self, beta: float = 0.9) -> None:
        super().__init__()
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {beta}")
        self.beta = float(beta)
        self.membrane: Optional[Tensor] = None
        self._fast: Dict[str, np.ndarray] = {}

    def reset_state(self) -> None:
        """Clear the accumulated membrane potential."""
        self.membrane = None

    def detach_state(self) -> None:
        """Cut the membrane from the autodiff graph."""
        if self.membrane is not None:
            self.membrane = Tensor(self.membrane.data.copy(), requires_grad=False)

    def forward(self, synaptic_input: Tensor) -> Tensor:
        if not is_grad_enabled():
            data = synaptic_input.data
            mem = self._fast.get("membrane")
            if mem is None or mem.shape != data.shape or mem.dtype != data.dtype:
                mem = np.empty_like(data)
                self._fast["membrane"] = mem
            if self.membrane is None:
                np.copyto(mem, data)
            else:
                if self.membrane.data is not mem:
                    np.copyto(mem, self.membrane.data)
                np.multiply(mem, self.beta, out=mem)
                np.add(mem, data, out=mem)
            self.membrane = graph_free(mem)
            return self.membrane
        if self.membrane is None:
            self.membrane = synaptic_input
        else:
            self.membrane = self.membrane * self.beta + synaptic_input
        return self.membrane

    def extra_repr(self) -> str:
        return f"beta={self.beta}"
