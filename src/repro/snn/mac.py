"""Multiply-accumulate (MAC) counting and energy estimation.

The paper's analysis of DenseNet-like (DSC) versus addition-type (ASC) skip
connections hinges on a compute/energy trade-off:

* DSC *concatenates* previous feature maps, enlarging the input of the next
  layer and therefore its MAC count, but it keeps firing rates lower;
* ASC *adds* feature maps, keeping MAC counts unchanged but summing spike
  trains, which raises the firing rate.

This module provides

* :class:`MACCounter` — counts MACs of a model by tracing an actual forward
  pass (so concatenation-induced channel growth is measured, not guessed);
* :func:`estimate_block_macs` — closed-form MACs of a skip-block described by
  an adjacency matrix (used for search-space statistics without building the
  model);
* :func:`estimate_energy` — converts ANN MACs / SNN synaptic operations to
  energy using the standard 45 nm CMOS figures (Horowitz, ISSCC 2014):
  4.6 pJ per MAC (multiply-accumulate) and 0.9 pJ per AC (accumulate).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module
from repro.tensor import Tensor, no_grad

#: energy per 32-bit multiply-accumulate in picojoules (Horowitz, ISSCC 2014)
ENERGY_PER_MAC_PJ = 4.6
#: energy per 32-bit accumulate in picojoules (spike-driven synaptic op)
ENERGY_PER_AC_PJ = 0.9


@dataclass
class MACReport:
    """MAC count broken down per layer."""

    per_layer: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Total MAC count across all traced layers."""
        return float(sum(self.per_layer.values()))

    def summary(self) -> str:
        """Human-readable per-layer breakdown."""
        lines = [f"total MACs: {self.total:,.0f}"]
        for name, macs in sorted(self.per_layer.items()):
            lines.append(f"  {name or '<root>'}: {macs:,.0f}")
        return "\n".join(lines)


def conv2d_macs(
    in_channels: int,
    out_channels: int,
    kernel_size: Tuple[int, int],
    out_height: int,
    out_width: int,
    groups: int = 1,
) -> float:
    """MACs of one convolution applied to one sample."""
    kh, kw = kernel_size
    return float(out_height * out_width * out_channels * (in_channels // groups) * kh * kw)


def linear_macs(in_features: int, out_features: int) -> float:
    """MACs of one fully connected layer applied to one sample."""
    return float(in_features * out_features)


class MACCounter:
    """Count per-sample MACs by tracing a forward pass of a model.

    The counter temporarily wraps :class:`repro.nn.layers.Conv2d` and
    :class:`repro.nn.layers.Linear` ``forward`` methods at the *class* level,
    records the geometry seen by each instance, then restores the originals.
    Tracing a real forward pass means channel growth caused by DenseNet-style
    concatenation is accounted for exactly.
    """

    def __init__(self, model: Module) -> None:
        self.model = model
        self._names: Dict[int, str] = {
            id(module): name for name, module in model.named_modules()
        }

    @contextlib.contextmanager
    def _patched(self, report: MACReport):
        original_conv_forward = Conv2d.forward
        original_linear_forward = Linear.forward
        names = self._names

        def conv_forward(layer: Conv2d, x: Tensor) -> Tensor:
            out = original_conv_forward(layer, x)
            key = names.get(id(layer), f"conv@{id(layer):x}")
            _, _, out_h, out_w = out.shape
            macs = conv2d_macs(
                layer.in_channels, layer.out_channels, layer.kernel_size, out_h, out_w, layer.groups
            )
            report.per_layer[key] = report.per_layer.get(key, 0.0) + macs
            return out

        def linear_forward(layer: Linear, x: Tensor) -> Tensor:
            out = original_linear_forward(layer, x)
            key = names.get(id(layer), f"linear@{id(layer):x}")
            macs = linear_macs(layer.in_features, layer.out_features)
            report.per_layer[key] = report.per_layer.get(key, 0.0) + macs
            return out

        Conv2d.forward = conv_forward
        Linear.forward = linear_forward
        try:
            yield
        finally:
            Conv2d.forward = original_conv_forward
            Linear.forward = original_linear_forward

    def count(self, example_input: np.ndarray) -> MACReport:
        """Trace one forward pass on ``example_input`` (batch size 1 recommended).

        For stateful spiking models the counter reports MACs of a *single*
        simulation step; multiply by ``num_steps`` for the full window.
        """
        report = MACReport()
        batch = np.asarray(example_input, dtype=np.float64)
        if batch.shape[0] == 0:
            raise ValueError("example_input must contain at least one sample")
        # stateful spiking models may hold membrane state from a previous batch
        # of a different size; clear it so the traced forward is self-contained
        from repro.snn.temporal import reset_states

        reset_states(self.model)
        with self._patched(report), no_grad():
            self.model(Tensor(batch))
        reset_states(self.model)
        return report


def estimate_model_macs(model: Module, example_input: np.ndarray) -> float:
    """Convenience wrapper returning the total MACs of one forward pass."""
    return MACCounter(model).count(example_input).total


def estimate_block_macs(
    adjacency,
    channels: int,
    height: int,
    width: int,
    kernel_size: int = 3,
) -> float:
    """Closed-form MAC count of a skip-block described by an adjacency matrix.

    ``adjacency`` is a :class:`repro.core.adjacency.BlockAdjacency` or its
    ``(depth+1, depth+1)`` node matrix: node 0 is the block input and node
    ``k`` the output of layer ``k``.  An entry of ``1`` (DSC) routes the
    source node into the destination layer by concatenation — growing that
    layer's input channels — while ``2`` (ASC) routes it by addition, leaving
    the input channels unchanged.  Every layer additionally receives its
    sequential predecessor.  All layers are modelled as ``kernel_size``
    convolutions with ``channels`` output channels on a ``height x width``
    feature map, matching the single-block analysis model of Fig. 1.
    """
    matrix = np.asarray(getattr(adjacency, "matrix", adjacency))
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1] or matrix.shape[0] < 2:
        raise ValueError(f"adjacency must be a square (depth+1, depth+1) matrix, got shape {matrix.shape}")
    depth = matrix.shape[0] - 1
    total = 0.0
    for layer in range(depth):
        destination = layer + 1
        in_channels = channels  # sequential predecessor (or block input)
        dsc_sources = int(np.sum(matrix[: max(destination - 1, 0), destination] == 1))
        in_channels += dsc_sources * channels
        total += conv2d_macs(in_channels, channels, (kernel_size, kernel_size), height, width)
    return total


@dataclass
class EnergyEstimate:
    """Energy estimate of one inference, in nanojoules."""

    ann_energy_nj: float
    snn_energy_nj: float

    @property
    def snn_to_ann_ratio(self) -> float:
        """SNN energy as a fraction of the ANN energy (< 1 means SNN wins)."""
        if self.ann_energy_nj == 0:
            return float("inf")
        return self.snn_energy_nj / self.ann_energy_nj


def energy_metrics(macs_per_step: float, firing_rate: float, num_steps: int) -> Dict[str, float]:
    """Per-objective metric fields derived from one traced architecture.

    The flat dict consumed by the multi-objective search layer
    (:mod:`repro.core.multi_objective`) and persisted on evaluation rows:
    ``macs`` (per simulation step), ``energy_nj`` / ``ann_energy_nj``
    (Horowitz figures via :func:`estimate_energy`) and ``latency_steps``
    (the simulation window — the SNN's inference latency in time steps).
    """
    estimate = estimate_energy(macs_per_step, firing_rate, num_steps)
    return {
        "macs": float(macs_per_step),
        "energy_nj": estimate.snn_energy_nj,
        "ann_energy_nj": estimate.ann_energy_nj,
        "latency_steps": float(num_steps),
    }


def estimate_energy(
    macs_per_step: float,
    firing_rate: float,
    num_steps: int,
    energy_per_mac_pj: float = ENERGY_PER_MAC_PJ,
    energy_per_ac_pj: float = ENERGY_PER_AC_PJ,
) -> EnergyEstimate:
    """Estimate ANN vs SNN inference energy.

    The ANN executes ``macs_per_step`` multiply-accumulates once.  The SNN
    executes the same synaptic operations at every time step, but each
    operation is a cheap accumulate and only fires with probability
    ``firing_rate`` (event-driven computation).
    """
    if not 0.0 <= firing_rate <= 1.0:
        raise ValueError(f"firing_rate must be in [0, 1], got {firing_rate}")
    if num_steps <= 0:
        raise ValueError(f"num_steps must be positive, got {num_steps}")
    ann_energy_pj = macs_per_step * energy_per_mac_pj
    snn_energy_pj = macs_per_step * firing_rate * num_steps * energy_per_ac_pj
    return EnergyEstimate(ann_energy_nj=ann_energy_pj / 1000.0, snn_energy_nj=snn_energy_pj / 1000.0)
