"""Temporal unrolling of stateful spiking models.

A spiking model built from :class:`repro.snn.neurons.SpikingNeuron` layers is
*stateful*: each call advances it by one simulation step.  The
:class:`TemporalRunner` turns such a model into a plain batch-to-logits
function by

1. encoding the input batch into a ``num_steps``-long sequence,
2. resetting every neuron's state,
3. looping over the steps and feeding each frame through the model,
4. aggregating the per-step outputs into class scores (spike counts, mean
   membrane, or last membrane).

Because membrane states are ordinary autodiff tensors, calling ``backward()``
on a loss computed from the aggregated output performs full backpropagation
through time (BPTT).  ``truncation`` optionally detaches the state every k
steps, giving truncated BPTT for long sequences.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.nn.module import Module
from repro.snn.encoding import SpikeEncoder, encode_batch
from repro.tensor import Tensor, ops
from repro.tensor.sparse import annotate_frame
from repro.tensor.tensor import graph_free, is_grad_enabled

#: valid values for the ``readout`` argument
READOUTS = ("membrane_mean", "membrane_last", "spike_count", "spike_rate")


def reset_states(model: Module) -> None:
    """Reset the temporal state of every stateful submodule of ``model``."""
    for module in model.modules():
        reset = getattr(module, "reset_state", None)
        if callable(reset):
            reset()


def detach_states(model: Module) -> None:
    """Detach every stateful submodule's state from the autodiff graph."""
    for module in model.modules():
        detach = getattr(module, "detach_state", None)
        if callable(detach):
            detach()


def aggregate_outputs(outputs: Sequence[Tensor], readout: str) -> Tensor:
    """Combine per-step model outputs into a single score tensor."""
    if readout not in READOUTS:
        raise ValueError(f"readout must be one of {READOUTS}, got {readout!r}")
    if not outputs:
        raise ValueError("no outputs to aggregate")
    if readout == "membrane_last":
        return outputs[-1]
    stacked = ops.stack(list(outputs), axis=0)
    if readout in ("membrane_mean", "spike_rate"):
        return stacked.mean(axis=0)
    # spike_count
    return stacked.sum(axis=0)


def run_temporal(
    model: Module,
    batch: np.ndarray,
    num_steps: int,
    encoder: Optional[SpikeEncoder] = None,
    readout: str = "membrane_mean",
    truncation: Optional[int] = None,
    step_callback: Optional[Callable[[int, Tensor], None]] = None,
) -> Tensor:
    """Run ``model`` over ``num_steps`` and return aggregated class scores.

    Parameters
    ----------
    model:
        A stateful spiking model mapping a single-frame tensor to per-class
        outputs (spikes or membrane values).
    batch:
        Static batch ``(N, C, H, W)`` or temporal batch ``(N, T, C, H, W)``.
    num_steps:
        Number of simulation steps (the paper uses 25).
    encoder:
        Optional input encoder; chosen automatically when ``None``.
    readout:
        How to aggregate per-step outputs (see :data:`READOUTS`).
    truncation:
        If given, detach all neuron states every ``truncation`` steps
        (truncated BPTT).
    step_callback:
        Optional hook called with ``(step_index, step_output)`` — used by the
        spike-based losses (which retain the per-step outputs) and by
        visualisation examples.  The tensor handed to the callback is always
        safe to retain: under :func:`~repro.tensor.tensor.no_grad` the raw
        model output may be a view of a reused neuron buffer, so the runner
        hands the callback a copy instead (model outputs are readout-sized,
        so the per-step cost is negligible and only paid when a callback is
        installed).

    The per-step outputs are folded into a **running sum** as the loop
    advances (for the ``count``/``mean``/``rate`` readouts) instead of being
    retained and stacked at the end, so peak memory of a long-horizon run is
    one output tensor rather than ``num_steps`` of them.  The sequential
    accumulation is performed identically in grad mode and under ``no_grad``,
    so the two paths return bit-identical scores.
    """
    if readout not in READOUTS:
        raise ValueError(f"readout must be one of {READOUTS}, got {readout!r}")
    steps = encode_batch(batch, encoder, num_steps)
    if not steps:
        raise ValueError("no outputs to aggregate")
    reset_states(model)
    grad_mode = is_grad_enabled()
    total: Optional[Tensor] = None
    accumulator: Optional[np.ndarray] = None
    out: Optional[Tensor] = None
    for t, frame in enumerate(steps):
        if not grad_mode:
            # under sparse inference, hand binary low-activity encoder frames
            # to the first layer with their event list attached (no-op when
            # sparse mode is off or the frame is dense/non-binary)
            annotate_frame(frame)
        out = model(frame)
        if step_callback is not None:
            if grad_mode:
                step_callback(t, out)
            else:
                # the raw output may alias a reused neuron buffer; callbacks
                # (e.g. the spike-based losses) are documented to retain
                # their per-step outputs, so hand them an owning copy
                step_callback(t, graph_free(np.array(out.data, copy=True)))
        if readout != "membrane_last":
            if grad_mode:
                total = out if total is None else total + out
            elif accumulator is None:
                # fresh accumulator per call: the step output may alias a
                # neuron buffer that later steps (or the next batch) overwrite
                # (dtype preserved — the float32 substrate aggregates in
                # float32; the tolerance contract covers the difference)
                accumulator = np.array(out.data, copy=True)
            else:
                accumulator += out.data
        if truncation and (t + 1) % truncation == 0 and t + 1 < len(steps):
            detach_states(model)
    if readout == "membrane_last":
        if grad_mode:
            return out
        return graph_free(np.array(out.data, copy=True))
    if readout == "spike_count":
        return total if grad_mode else graph_free(accumulator)
    # membrane_mean / spike_rate
    if grad_mode:
        return total / float(len(steps))
    accumulator /= float(len(steps))
    return graph_free(accumulator)


class TemporalRunner(Module):
    """Module wrapper exposing a stateful spiking model as ``batch -> logits``.

    This is the object handed to the generic trainer: it hides the time loop
    so that the same training code drives ANNs and SNNs.
    """

    def __init__(
        self,
        model: Module,
        num_steps: int,
        encoder: Optional[SpikeEncoder] = None,
        readout: str = "membrane_mean",
        truncation: Optional[int] = None,
    ) -> None:
        super().__init__()
        if num_steps <= 0:
            raise ValueError(f"num_steps must be positive, got {num_steps}")
        if readout not in READOUTS:
            raise ValueError(f"readout must be one of {READOUTS}, got {readout!r}")
        self.model = model
        self.num_steps = int(num_steps)
        self.encoder = encoder
        self.readout = readout
        self.truncation = truncation

    def forward(self, batch) -> Tensor:
        data = batch.data if isinstance(batch, Tensor) else batch
        if is_grad_enabled():
            # fused BPTT fast path: one hand-written adjoint over the whole
            # unrolled step instead of a recorded graph (local import — the
            # kernel module pulls in the model zoo, which this module must not)
            from repro.snn.fused_step import fused_dispatch

            fused = fused_dispatch(self, data)
            if fused is not None:
                return fused
        return run_temporal(
            self.model,
            data,
            num_steps=self.num_steps,
            encoder=self.encoder,
            readout=self.readout,
            truncation=self.truncation,
        )

    def extra_repr(self) -> str:
        return f"num_steps={self.num_steps}, readout={self.readout!r}"
