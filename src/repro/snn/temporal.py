"""Temporal unrolling of stateful spiking models.

A spiking model built from :class:`repro.snn.neurons.SpikingNeuron` layers is
*stateful*: each call advances it by one simulation step.  The
:class:`TemporalRunner` turns such a model into a plain batch-to-logits
function by

1. encoding the input batch into a ``num_steps``-long sequence,
2. resetting every neuron's state,
3. looping over the steps and feeding each frame through the model,
4. aggregating the per-step outputs into class scores (spike counts, mean
   membrane, or last membrane).

Because membrane states are ordinary autodiff tensors, calling ``backward()``
on a loss computed from the aggregated output performs full backpropagation
through time (BPTT).  ``truncation`` optionally detaches the state every k
steps, giving truncated BPTT for long sequences.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.nn.module import Module
from repro.snn.encoding import SpikeEncoder, encode_batch
from repro.tensor import Tensor, ops

#: valid values for the ``readout`` argument
READOUTS = ("membrane_mean", "membrane_last", "spike_count", "spike_rate")


def reset_states(model: Module) -> None:
    """Reset the temporal state of every stateful submodule of ``model``."""
    for module in model.modules():
        reset = getattr(module, "reset_state", None)
        if callable(reset):
            reset()


def detach_states(model: Module) -> None:
    """Detach every stateful submodule's state from the autodiff graph."""
    for module in model.modules():
        detach = getattr(module, "detach_state", None)
        if callable(detach):
            detach()


def aggregate_outputs(outputs: Sequence[Tensor], readout: str) -> Tensor:
    """Combine per-step model outputs into a single score tensor."""
    if readout not in READOUTS:
        raise ValueError(f"readout must be one of {READOUTS}, got {readout!r}")
    if not outputs:
        raise ValueError("no outputs to aggregate")
    if readout == "membrane_last":
        return outputs[-1]
    stacked = ops.stack(list(outputs), axis=0)
    if readout in ("membrane_mean", "spike_rate"):
        return stacked.mean(axis=0)
    # spike_count
    return stacked.sum(axis=0)


def run_temporal(
    model: Module,
    batch: np.ndarray,
    num_steps: int,
    encoder: Optional[SpikeEncoder] = None,
    readout: str = "membrane_mean",
    truncation: Optional[int] = None,
    step_callback: Optional[Callable[[int, Tensor], None]] = None,
) -> Tensor:
    """Run ``model`` over ``num_steps`` and return aggregated class scores.

    Parameters
    ----------
    model:
        A stateful spiking model mapping a single-frame tensor to per-class
        outputs (spikes or membrane values).
    batch:
        Static batch ``(N, C, H, W)`` or temporal batch ``(N, T, C, H, W)``.
    num_steps:
        Number of simulation steps (the paper uses 25).
    encoder:
        Optional input encoder; chosen automatically when ``None``.
    readout:
        How to aggregate per-step outputs (see :data:`READOUTS`).
    truncation:
        If given, detach all neuron states every ``truncation`` steps
        (truncated BPTT).
    step_callback:
        Optional hook called with ``(step_index, step_output)`` — used by the
        firing-rate monitors and by visualisation examples.
    """
    steps = encode_batch(batch, encoder, num_steps)
    reset_states(model)
    outputs: List[Tensor] = []
    for t, frame in enumerate(steps):
        out = model(frame)
        outputs.append(out)
        if step_callback is not None:
            step_callback(t, out)
        if truncation and (t + 1) % truncation == 0 and t + 1 < len(steps):
            detach_states(model)
    return aggregate_outputs(outputs, readout)


class TemporalRunner(Module):
    """Module wrapper exposing a stateful spiking model as ``batch -> logits``.

    This is the object handed to the generic trainer: it hides the time loop
    so that the same training code drives ANNs and SNNs.
    """

    def __init__(
        self,
        model: Module,
        num_steps: int,
        encoder: Optional[SpikeEncoder] = None,
        readout: str = "membrane_mean",
        truncation: Optional[int] = None,
    ) -> None:
        super().__init__()
        if num_steps <= 0:
            raise ValueError(f"num_steps must be positive, got {num_steps}")
        if readout not in READOUTS:
            raise ValueError(f"readout must be one of {READOUTS}, got {readout!r}")
        self.model = model
        self.num_steps = int(num_steps)
        self.encoder = encoder
        self.readout = readout
        self.truncation = truncation

    def forward(self, batch) -> Tensor:
        data = batch.data if isinstance(batch, Tensor) else batch
        return run_temporal(
            self.model,
            data,
            num_steps=self.num_steps,
            encoder=self.encoder,
            readout=self.readout,
            truncation=self.truncation,
        )

    def extra_repr(self) -> str:
        return f"num_steps={self.num_steps}, readout={self.readout!r}"
