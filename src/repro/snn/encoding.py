"""Input encoders converting data into per-time-step tensors for the SNN.

Static image datasets (CIFAR-10) must be turned into a temporal sequence
before a spiking network can consume them.  The paper (via snnTorch) uses rate
coding with ``num_steps = 25``; we additionally provide latency coding,
constant-current (direct) coding and plain repetition, plus a pass-through
path for data that is already temporal (the DVS event-frame datasets).

All encoders map an input batch of shape ``(N, C, H, W)`` (or ``(N, F)``) to a
sequence ``[x_1, ..., x_T]`` of tensors with the same shape, consumed one step
at a time by :class:`repro.snn.temporal.TemporalRunner`.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.tensor import Tensor
from repro.tensor.random import default_rng


def _as_float_batch(batch) -> np.ndarray:
    """Coerce a batch to a float array, preserving an existing float dtype.

    float32 inputs stay float32 (the substrate is dtype-parametrised end to
    end); everything else — ints, bools, lists — lands on float64 as before.
    """
    batch = np.asarray(batch)
    if batch.dtype.kind != "f":
        batch = batch.astype(np.float64)
    return batch


class SpikeEncoder:
    """Base encoder interface."""

    def __init__(self, num_steps: int) -> None:
        if num_steps <= 0:
            raise ValueError(f"num_steps must be positive, got {num_steps}")
        self.num_steps = int(num_steps)

    def encode(self, batch: np.ndarray) -> List[np.ndarray]:
        """Return a list of ``num_steps`` arrays, one per simulation step."""
        raise NotImplementedError

    def __call__(self, batch: np.ndarray) -> List[Tensor]:
        return [Tensor(step) for step in self.encode(_as_float_batch(batch))]


class RateEncoder(SpikeEncoder):
    """Poisson/Bernoulli rate coding.

    Each pixel intensity in ``[0, 1]`` is treated as a per-step firing
    probability; the encoder draws independent Bernoulli spikes at every step.
    This is ``snntorch.spikegen.rate``.
    """

    def __init__(self, num_steps: int, gain: float = 1.0, rng=None) -> None:
        super().__init__(num_steps)
        if gain <= 0:
            raise ValueError(f"gain must be positive, got {gain}")
        self.gain = float(gain)
        self._rng = default_rng(rng)

    def encode(self, batch: np.ndarray) -> List[np.ndarray]:
        probabilities = np.clip(batch * self.gain, 0.0, 1.0)
        return [
            (self._rng.random(probabilities.shape) < probabilities).astype(batch.dtype)
            for _ in range(self.num_steps)
        ]


class LatencyEncoder(SpikeEncoder):
    """Latency (time-to-first-spike) coding.

    Brighter pixels spike earlier; each input location emits exactly one spike
    during the window (or none if its intensity is below ``threshold``).
    """

    def __init__(self, num_steps: int, threshold: float = 0.01) -> None:
        super().__init__(num_steps)
        self.threshold = float(threshold)

    def encode(self, batch: np.ndarray) -> List[np.ndarray]:
        clipped = np.clip(batch, 0.0, 1.0)
        # Map intensity 1 -> step 0, intensity ~0 -> last step.
        spike_times = np.round((1.0 - clipped) * (self.num_steps - 1)).astype(int)
        silent = clipped < self.threshold
        steps = []
        for t in range(self.num_steps):
            frame = ((spike_times == t) & ~silent).astype(batch.dtype)
            steps.append(frame)
        return steps


class ConstantCurrentEncoder(SpikeEncoder):
    """Direct (constant-current) coding: the analog input is injected at every step.

    The first spiking layer then performs the actual analog-to-spike
    conversion.  This is the highest-accuracy encoding for static data and is
    what modern directly-trained deep SNNs typically use.
    """

    def encode(self, batch: np.ndarray) -> List[np.ndarray]:
        return [batch for _ in range(self.num_steps)]


class RepeatEncoder(ConstantCurrentEncoder):
    """Alias of :class:`ConstantCurrentEncoder` kept for snnTorch naming parity."""


class EventFrameEncoder(SpikeEncoder):
    """Pass-through for data that is already a temporal sequence of frames.

    Expects input of shape ``(N, T, C, H, W)`` and slices it along the time
    axis.  If the provided sequence is longer than ``num_steps`` it is
    truncated; if shorter, the last frame is repeated.
    """

    def encode(self, batch: np.ndarray) -> List[np.ndarray]:
        if batch.ndim < 3:
            raise ValueError(f"event-frame input must have a time axis, got shape {batch.shape}")
        available = batch.shape[1]
        steps = []
        for t in range(self.num_steps):
            index = min(t, available - 1)
            steps.append(np.ascontiguousarray(batch[:, index]))
        return steps


def encode_batch(batch: np.ndarray, encoder: Optional[SpikeEncoder], num_steps: int) -> List[Tensor]:
    """Encode ``batch`` with ``encoder``; default to constant-current coding.

    Temporal batches (ndim >= 5, i.e. ``(N, T, C, H, W)``) are passed through
    :class:`EventFrameEncoder` automatically when no encoder is given.
    """
    batch = _as_float_batch(batch)
    if encoder is None:
        if batch.ndim >= 5:
            encoder = EventFrameEncoder(num_steps)
        else:
            encoder = ConstantCurrentEncoder(num_steps)
    return encoder(batch)
