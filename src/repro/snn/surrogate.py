"""Surrogate gradients for the non-differentiable spiking nonlinearity.

A spiking neuron emits ``S = H(U - theta)`` where ``H`` is the Heaviside step
function of the membrane potential ``U`` and threshold ``theta``.  ``H`` has a
zero derivative almost everywhere, so plain backpropagation cannot train the
network.  The standard fix (Neftci et al., 2019 — reference [4] of the paper)
is to keep the Heaviside forward pass but substitute a smooth *surrogate*
derivative in the backward pass.  This module provides the common choices and
the :func:`spike_function` autodiff primitive that applies them.
"""

from __future__ import annotations

from typing import Dict, Type

import numpy as np

from repro.tensor import Tensor
from repro.tensor.primitives import Primitive, apply as _apply, register
from repro.tensor.tensor import ensure_tensor, graph_free, is_grad_enabled


class SurrogateGradient:
    """Base class: maps membrane-minus-threshold values to pseudo-derivatives."""

    #: registry name used by :func:`get_surrogate`
    name = "base"

    def derivative(self, shifted_membrane: np.ndarray) -> np.ndarray:
        """Return d(spike)/d(membrane) evaluated at ``membrane - threshold``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(f"{k}={v}" for k, v in vars(self).items())
        return f"{type(self).__name__}({params})"


class FastSigmoidSurrogate(SurrogateGradient):
    """SuperSpike / fast-sigmoid surrogate (Zenke & Ganguli, 2018).

    ``d = 1 / (slope * |x| + 1)^2`` — the snnTorch default, and the default
    of this reproduction.
    """

    name = "fast_sigmoid"

    def __init__(self, slope: float = 25.0) -> None:
        if slope <= 0:
            raise ValueError(f"slope must be positive, got {slope}")
        self.slope = float(slope)

    def derivative(self, shifted_membrane: np.ndarray) -> np.ndarray:
        return 1.0 / (self.slope * np.abs(shifted_membrane) + 1.0) ** 2


class ATanSurrogate(SurrogateGradient):
    """Arctangent surrogate (used by SpikingJelly / SEW-ResNet).

    ``d = alpha / (2 * (1 + (pi/2 * alpha * x)^2))``.
    """

    name = "atan"

    def __init__(self, alpha: float = 2.0) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = float(alpha)

    def derivative(self, shifted_membrane: np.ndarray) -> np.ndarray:
        scaled = (np.pi / 2.0) * self.alpha * shifted_membrane
        return (self.alpha / 2.0) / (1.0 + scaled ** 2)


class TriangularSurrogate(SurrogateGradient):
    """Triangular (piecewise-linear) surrogate: ``max(0, 1 - |x| / width)``."""

    name = "triangular"

    def __init__(self, width: float = 1.0) -> None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self.width = float(width)

    def derivative(self, shifted_membrane: np.ndarray) -> np.ndarray:
        return np.maximum(0.0, 1.0 - np.abs(shifted_membrane) / self.width) / self.width


class StraightThroughSurrogate(SurrogateGradient):
    """Straight-through estimator: gradient 1 inside a window around threshold."""

    name = "straight_through"

    def __init__(self, window: float = 0.5) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = float(window)

    def derivative(self, shifted_membrane: np.ndarray) -> np.ndarray:
        return (np.abs(shifted_membrane) <= self.window).astype(np.float64)


_REGISTRY: Dict[str, Type[SurrogateGradient]] = {
    cls.name: cls
    for cls in (FastSigmoidSurrogate, ATanSurrogate, TriangularSurrogate, StraightThroughSurrogate)
}


def get_surrogate(name_or_instance, **kwargs) -> SurrogateGradient:
    """Resolve a surrogate by name (``"fast_sigmoid"``, ``"atan"``, ...) or pass through an instance."""
    if isinstance(name_or_instance, SurrogateGradient):
        return name_or_instance
    name = str(name_or_instance)
    if name not in _REGISTRY:
        raise KeyError(f"unknown surrogate gradient {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[name](**kwargs)


def _spike_fwd(membrane, want_ctx=False, *, threshold, surrogate):
    shifted = membrane - threshold
    spikes = (shifted >= 0.0).astype(membrane.dtype)
    if not want_ctx:
        return spikes, None
    return spikes, (surrogate.derivative(shifted),)


def _spike_vjp(ctx, g, needs, *, threshold, surrogate):
    (pseudo_derivative,) = ctx
    return ((g * pseudo_derivative) if needs[0] else None,)


def _spike_jvp(ctx, tangents, *, threshold, surrogate):
    (pseudo_derivative,) = ctx
    return pseudo_derivative * tangents[0]


def _spike_sample(rng, dtype):
    return (rng.standard_normal((3, 4)).astype(dtype, copy=False) + 1.0,), {
        "threshold": 1.0,
        "surrogate": FastSigmoidSurrogate(),
    }


#: the surrogate spike is *deliberately* not the true derivative of its
#: Heaviside forward (that derivative is zero a.e.), so finite differences
#: must not be checked against it — only jvp/vjp mutual consistency.
SPIKE = register(
    Primitive(
        "spike",
        forward=_spike_fwd,
        vjp=_spike_vjp,
        jvp=_spike_jvp,
        samples=[_spike_sample],
        fd_exempt=True,
    )
)


def spike_function(membrane, threshold: float, surrogate: SurrogateGradient) -> Tensor:
    """Heaviside spike with a surrogate derivative.

    Forward: ``S = (membrane >= threshold)`` as floats in {0, 1}.
    Backward: ``dL/d(membrane) = dL/dS * surrogate.derivative(membrane - threshold)``.
    """
    membrane = ensure_tensor(membrane)
    if not (is_grad_enabled() and membrane.requires_grad):
        return graph_free((membrane.data - threshold >= 0.0).astype(membrane.data.dtype))
    return _apply(SPIKE, (membrane,), threshold=threshold, surrogate=surrogate)
