"""Fused temporal training kernels: one hand-written adjoint per BPTT step.

Graph autograd records one node per elementwise op per layer per time step —
for an unrolled SNN that is tens of thousands of closures, intermediate
tensors and ``O(T x layers)`` allocations per training step.  This module
replaces the whole unrolled step for the architectures the experiments
actually train (:class:`~repro.models.template.SkipConnectionNetwork` built
from stem / DAG blocks / transitions / classifier head with LIF-family
neurons) by

* one **fused forward** that walks the time loop with plain NumPy calls,
  stashing only the *minimal residuals* the backward pass needs (padded conv
  inputs, batch-norm centred activations and inverse-std terms, surrogate
  pseudo-derivatives, pooled head features) into per-thread workspace pools
  (:mod:`repro.tensor.workspace`) reused across steps, and
* one **hand-written adjoint** that walks the time steps in reverse, reusing
  those buffers — no per-step graph construction, no per-intermediate
  allocation beyond the gradients themselves.

Bit-equality contract
---------------------

The fused path is **bit-identical** to graph autograd (pinned by
``tests/test_fused_step.py`` and asserted before every timing run in
``benchmarks/bench_substrate.py``): every forward expression replicates the
layer forwards verbatim (including the dtype-matched scalar promotion of
:func:`repro.tensor.ops._ensure_pair` and the batch-norm running-statistics
updates), and every adjoint expression replicates the registered primitive
vjps (:mod:`repro.tensor.primitives`) — the conv and pooling adjoints *call*
the registered vjp functions directly on contexts rebuilt from the stashed
residuals.  Gradient accumulation follows the exact order of the graph's
reverse topological sweep: strictly reverse time, and within one step the
reverse creation order of the layer ops (differences limited to IEEE signed
zeros, which compare equal and cannot affect parameter updates).  The float32
substrate follows the same expressions and is covered by the pinned tolerance
contract (:mod:`repro.tensor.tolerance`).

Dispatch
--------

:func:`fused_dispatch` mirrors the event-driven inference dispatch
(:mod:`repro.tensor.sparse`): a thread-local mode (``"auto"`` by default —
fuse whenever the model qualifies), a :func:`fused_training` context manager
to force it ``"on"`` (raising with the reason when fusion is impossible) or
``"off"``, per-thread ``fused_steps``/``fallback_steps`` tallies and
process-wide aggregates that worker processes merge back into their parent
(see :class:`repro.core.async_eval.AsyncEvaluationExecutor`).  Anything the
kernel does not cover — non-:class:`SkipConnectionNetwork` models, synaptic
(second-order) neurons, truncated BPTT, eval-mode batch norm, active spike
recording — falls back to the recorded-graph path, which stays the reference.

Aliasing: the residual stash lives in workspace pools, so nothing that
escapes a step may alias it — module states written back after a fused
forward (membrane, previous spikes, adaptation, readout membrane) are the
freshly allocated update arrays, never pooled storage, and the returned score
tensor owns its data.  One kernel instance serves one runner on one thread at
a time; a second fused forward before ``backward()`` invalidates the first
step's residuals and the stale adjoint raises instead of silently reusing
overwritten buffers.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.snn.encoding import encode_batch
from repro.tensor.conv import (
    _avg_pool2d_fwd,
    _avg_pool2d_vjp,
    _conv2d_infer,
    _conv2d_vjp,
    _im2col_view,
    _pair,
    conv_output_shape,
)
from repro.tensor.tensor import Tensor, _unbroadcast, graph_free, is_grad_enabled
from repro.tensor.workspace import workspace
from repro.trace import span

# ---------------------------------------------------------------------------
# dispatch state and counters
# ---------------------------------------------------------------------------

_MODES = ("auto", "on", "off")


class _FusedState(threading.local):
    """Per-thread dispatch mode and routing tallies."""

    def __init__(self) -> None:
        self.mode = "auto"
        self.fused_steps = 0
        self.fallback_steps = 0


_STATE = _FusedState()

#: process-wide routing aggregates (never reset by tests/workloads) exported
#: as monotonic counters; training running in worker processes folds its
#: delta back into the parent via the result telemetry channel, exactly like
#: the sparse-inference tallies.
_AGGREGATE_LOCK = threading.Lock()
_AGGREGATE: Dict[str, int] = {"fused_steps": 0, "fallback_steps": 0}

_PLAN_IDS = itertools.count()


def _normalise_mode(mode) -> str:
    if mode is True:
        return "on"
    if mode is False:
        return "off"
    if mode not in _MODES:
        raise ValueError(f"fused mode must be one of {_MODES}, got {mode!r}")
    return mode


@contextlib.contextmanager
def fused_training(mode: str = "auto"):
    """Select the fused-BPTT dispatch mode inside the ``with`` block.

    ``"auto"`` (the default, also the ambient mode outside any context) fuses
    whenever the model qualifies and falls back to graph autograd otherwise;
    ``"on"`` raises :class:`RuntimeError` with the disqualifying reason
    instead of falling back; ``"off"`` always uses the recorded graph.
    Nested uses restore the previous mode on exit.
    """
    mode = _normalise_mode(mode)
    previous = _STATE.mode
    _STATE.mode = mode
    try:
        yield
    finally:
        _STATE.mode = previous


def fused_mode() -> str:
    """The fused-BPTT dispatch mode active on this thread."""
    return _STATE.mode


def fused_counters() -> Dict[str, int]:
    """Per-thread routing tallies since the last reset.

    ``fused_steps`` counts temporal training steps served by the fused
    kernel, ``fallback_steps`` those that used graph autograd (including
    steps taken with the mode ``"off"``).
    """
    return {"fused_steps": _STATE.fused_steps, "fallback_steps": _STATE.fallback_steps}


def reset_fused_counters() -> None:
    """Zero the per-thread routing tallies."""
    _STATE.fused_steps = 0
    _STATE.fallback_steps = 0


def aggregate_fused_counters() -> Dict[str, int]:
    """Process-wide snapshot of the routing tallies (all threads, no reset)."""
    with _AGGREGATE_LOCK:
        return dict(_AGGREGATE)


def merge_fused_counters(delta: Dict[str, int]) -> None:
    """Fold a worker process's routing-tally delta into this process's totals."""
    if not delta:
        return
    with _AGGREGATE_LOCK:
        for key in _AGGREGATE:
            _AGGREGATE[key] += int(delta.get(key, 0))


def _count(name: str) -> None:
    setattr(_STATE, name, getattr(_STATE, name) + 1)
    with _AGGREGATE_LOCK:
        _AGGREGATE[name] += 1


# ---------------------------------------------------------------------------
# compiled plan structures
# ---------------------------------------------------------------------------


class _ConvOp:
    """One convolution (layer or ASC projection) with its static geometry."""

    __slots__ = ("conv", "key", "kh", "kw", "sh", "sw", "ph", "pw", "groups")

    def __init__(self, conv, index: int) -> None:
        self.conv = conv
        self.key = f"c{index}"
        self.kh, self.kw = _pair(conv.kernel_size)
        self.sh, self.sw = _pair(conv.stride)
        self.ph, self.pw = _pair(conv.padding)
        self.groups = int(conv.groups)


class _CBN:
    """A conv -> batch-norm -> spiking-neuron pipeline (stem/layer/transition)."""

    __slots__ = ("op", "norm", "neuron", "index", "decay", "adaptive", "reset")

    def __init__(self, op: _ConvOp, norm, neuron, index: int, decay, adaptive: bool) -> None:
        self.op = op
        self.norm = norm
        self.neuron = neuron
        self.index = index
        #: membrane decay factor (``None`` for the non-leaky IF neuron)
        self.decay = decay
        self.adaptive = adaptive
        self.reset = neuron.reset_mechanism


class _BlockLayer:
    """One DAG-block layer: skip wiring + its conv/norm/neuron pipeline."""

    __slots__ = ("cbn", "asc", "concat", "seq_channels")

    def __init__(self, cbn: _CBN, asc, concat, seq_channels: int) -> None:
        self.cbn = cbn
        #: ASC sources in forward encounter order: ``(node, projection or None)``
        self.asc = tuple(asc)
        #: DSC sources in forward encounter order: ``(node, channels)``
        self.concat = tuple(concat)
        #: channels of the pre-concat (sequential + ASC) input
        self.seq_channels = seq_channels


class _Unit:
    """One trunk stage: the stem, a DAG block, or a transition layer."""

    __slots__ = ("kind", "cbn", "layers", "pool_kernel", "pool_stride", "pool_padding", "pool_key")

    def __init__(self, kind: str, cbn=None, layers=None, pool=None, pool_key: str = "") -> None:
        self.kind = kind
        self.cbn = cbn
        self.layers = layers
        if pool is not None:
            self.pool_kernel, self.pool_stride, self.pool_padding = pool
        self.pool_key = pool_key


class _FusedPlan:
    """Everything the kernel needs, resolved once per (model, runner) pair."""

    def __init__(self, model, units, cbns, fc, integrator, readout: str) -> None:
        self.model = model
        self.units = units
        self.cbns = cbns
        self.fc = fc
        self.integrator = integrator
        self.readout = readout
        self.key = f"fused.{next(_PLAN_IDS)}"
        self.kernel = _FusedKernel(self)

    def runtime_blocker(self) -> Optional[str]:
        """Per-call disqualifiers that cheap structural compilation can't see."""
        for cbn in self.cbns:
            if not cbn.norm.training:
                return "a BatchNorm2d module is in eval mode (training-mode statistics are fused)"
            if cbn.neuron.record_spikes:
                return "spike recording is enabled on a neuron"
        return None


# ---------------------------------------------------------------------------
# qualification / compilation
# ---------------------------------------------------------------------------


def _compile(runner):
    """Compile ``runner`` into a :class:`_FusedPlan`, or a rejection reason string."""
    from repro.core.adjacency import ASC, DSC
    from repro.models.blocks import ClassifierHead, DAGBlock, Stem, TransitionLayer, _DAGLayer
    from repro.models.template import SkipConnectionNetwork
    from repro.nn.layers import AvgPool2d, BatchNorm2d, Conv2d, Linear
    from repro.snn.neurons import ALIFNeuron, IFNeuron, LeakyIntegrator, LIFNeuron

    model = runner.model
    if runner.truncation:
        return "truncated BPTT (truncation detach points) is not supported"
    if type(model) is not SkipConnectionNetwork:
        return f"model type {type(model).__name__} is not a SkipConnectionNetwork"
    if not model.spiking:
        return "model is not spiking (graph autograd handles ANN training)"

    conv_ids = itertools.count()
    cbns: List[_CBN] = []

    def conv_op(conv, context: str) -> Optional[_ConvOp]:
        if type(conv) is not Conv2d:
            return None
        if conv.bias is not None:
            return None
        return _ConvOp(conv, next(conv_ids))

    def make_cbn(holder, context: str):
        op = conv_op(holder.conv, context)
        if op is None:
            return f"{context}: unsupported convolution (exact Conv2d without bias required)"
        if type(holder.norm) is not BatchNorm2d:
            return f"{context}: norm is not BatchNorm2d"
        neuron = holder.activation
        kind = type(neuron)
        if kind is IFNeuron:
            decay, adaptive = None, False
        elif kind is LIFNeuron:
            decay, adaptive = neuron.beta, False
        elif kind is ALIFNeuron:
            decay, adaptive = neuron.beta, True
        else:
            return f"{context}: activation {kind.__name__} is not a fused neuron type"
        cbn = _CBN(op, holder.norm, neuron, len(cbns), decay, adaptive)
        cbns.append(cbn)
        return cbn

    units: List[_Unit] = []

    if type(model.stem) is not Stem:
        return "stem is not a Stem module"
    stem_cbn = make_cbn(model.stem, "stem")
    if isinstance(stem_cbn, str):
        return stem_cbn
    units.append(_Unit("stem", cbn=stem_cbn))

    for block_index, block in enumerate(model.blocks):
        if type(block) is not DAGBlock:
            return f"block {block_index} is not a DAGBlock"
        node_channels = block.spec.node_channels()
        layers: List[_BlockLayer] = []
        for layer_index, layer in enumerate(block.layers):
            if type(layer) is not _DAGLayer:
                return f"block {block_index} layer {layer_index} is not a plain DAG layer"
            cbn = make_cbn(layer, f"block {block_index} layer {layer_index}")
            if isinstance(cbn, str):
                return cbn
            destination = layer_index + 1
            asc = []
            concat = []
            for source, code in block.adjacency.sources_of(layer_index):
                if code == ASC:
                    projection = None
                    proj_index = block._projection_index.get((source, destination))
                    if proj_index is not None:
                        projection = conv_op(block.projections[proj_index], "projection")
                        if projection is None:
                            return (
                                f"block {block_index} projection ({source}->{destination}) "
                                "is not a plain bias-free Conv2d"
                            )
                    asc.append((source, projection))
                elif code == DSC:
                    concat.append((source, node_channels[source]))
                else:
                    return f"block {block_index} has an unknown connection code {code!r}"
            layers.append(_BlockLayer(cbn, asc, concat, node_channels[layer_index]))
        units.append(_Unit("block", layers=layers))

        transition_index = model._transition_map[block_index]
        if transition_index is not None:
            transition = model.transitions[transition_index]
            if type(transition) is not TransitionLayer:
                return f"transition {transition_index} is not a TransitionLayer"
            cbn = make_cbn(transition, f"transition {transition_index}")
            if isinstance(cbn, str):
                return cbn
            pool = transition.pool
            if type(pool) is not AvgPool2d:
                return f"transition {transition_index} pool is not AvgPool2d"
            kernel = _pair(pool.kernel_size)
            stride = kernel if pool.stride is None else _pair(pool.stride)
            padding = _pair(pool.padding)
            units.append(
                _Unit(
                    "transition",
                    cbn=cbn,
                    pool=(kernel, stride, padding),
                    pool_key=f"pool{transition_index}",
                )
            )

    head = model.head
    if type(head) is not ClassifierHead:
        return "head is not a ClassifierHead"
    if type(head.fc) is not Linear:
        return "head classifier is not a plain Linear layer"
    if head.readout is not None and type(head.readout) is not LeakyIntegrator:
        return "head readout is not a LeakyIntegrator"

    return _FusedPlan(model, units, cbns, head.fc, head.readout, runner.readout)


def _plan_for(runner):
    signature = (id(runner.model), runner.num_steps, runner.readout, runner.truncation)
    cached = getattr(runner, "_fused_plan", None)
    if cached is not None and cached[0] == signature:
        return cached[1]
    plan = _compile(runner)
    runner._fused_plan = (signature, plan)
    return plan


def fused_dispatch(runner, batch) -> Optional[Tensor]:
    """Run one fused BPTT step for ``runner`` if possible.

    Returns the aggregated score tensor (a graph leaf whose ``_backward``
    runs the hand-written adjoint), or ``None`` to fall back to the recorded
    graph.  With the mode forced ``"on"``, a step that cannot fuse raises
    :class:`RuntimeError` naming the reason instead of silently degrading.
    """
    mode = _STATE.mode
    if not is_grad_enabled():
        return None
    if mode == "off":
        _count("fallback_steps")
        return None
    plan = _plan_for(runner)
    reason = plan if isinstance(plan, str) else plan.runtime_blocker()
    if reason is not None:
        if mode == "on":
            raise RuntimeError(f"fused_training(mode='on') but the step cannot fuse: {reason}")
        _count("fallback_steps")
        return None
    data = batch.data if isinstance(batch, Tensor) else batch
    frames = encode_batch(data, runner.encoder, runner.num_steps)
    if not frames:
        raise ValueError("no outputs to aggregate")
    with span("train.fused_forward", num_steps=len(frames)) as fwd_span:
        score = plan.kernel.forward(frames)
        if fwd_span:
            fwd_span.set(batch=int(score.shape[0]))
    _count("fused_steps")
    return score


# ---------------------------------------------------------------------------
# the kernel
# ---------------------------------------------------------------------------


class _FusedKernel:
    """Fused forward + hand-written reverse-time adjoint for one plan.

    Residuals are stashed with :meth:`stash`/:meth:`stashed` into per-thread
    workspace buffers of shape ``(num_steps, *per_step_shape)`` — the lint
    rule ``primitive-coverage`` checks that everything a fused forward
    stashes, its adjoint actually reads.
    """

    def __init__(self, plan: _FusedPlan) -> None:
        self.plan = plan
        self.generation = 0

    # -- residual stash -------------------------------------------------
    def stash(self, name: str, shape, dtype=np.float64, fill=None, cmajor=False) -> np.ndarray:
        """Borrow (once per forward) the pooled ``(T, *shape)`` residual buffer.

        With ``cmajor`` the per-step slots are channel-major ``(N, C, H, W)``
        views (storage order ``(T, C, N, H, W)``), mirroring the layout the
        graph path would hold for the same residual — see :meth:`_cm_scratch`
        for why layout decides bit-equality.
        """
        buf = self._residuals.get(name)
        if buf is None:
            dtype = np.dtype(dtype)
            shape = tuple(int(dim) for dim in shape)
            if cmajor:
                shape = (shape[1], shape[0]) + shape[2:]
                self._cmajor.add(name)
            full = (self._num_steps,) + shape
            signature = (full, dtype.str, fill, cmajor)
            buf, matched = workspace(f"{self.plan.key}.{name}", full, dtype, signature=signature)
            if fill is not None and not matched:
                buf[...] = fill
            self._residuals[name] = buf
        # repro-lint: disable=buffer-escape (stash() is the fused kernel's residual provider: callers write per-step slots the adjoint reads back within the same step's backward; the generation guard invalidates the tape before any later forward reuses the pool)
        return buf

    def stashed(self, name: str, t: int) -> np.ndarray:
        """The residual stashed under ``name`` at time step ``t``."""
        view = self._residuals[name][t]
        if name in self._cmajor:
            view = view.transpose(1, 0, 2, 3)
        return view

    def _cm_scratch(self, key: str, shape, dtype=np.float64) -> np.ndarray:
        """A pooled channel-major ``(N, C, H, W)`` scratch view.

        Graph autograd's gradient buffers are ``np.zeros_like`` of the conv
        outputs, which are channel-major views — and NumPy's pairwise-summed
        reductions walk memory order, so sums over a C-contiguous array are
        NOT bit-identical to sums over the same values channel-major.  Every
        fused array that feeds a reduction (batch-norm statistics and their
        ``_unbroadcast`` sums) is therefore materialised into one of these
        scratches first.  Views are cached per forward (the hot loops request
        the same scratch once per layer per time step).
        """
        cached = self._scratches.get(key)
        if cached is not None and cached.shape == shape:
            return cached
        n, c, h, w = shape
        buf, _ = workspace(f"{self.plan.key}.{key}", (c, n, h, w), np.dtype(dtype))
        view = buf.transpose(1, 0, 2, 3)
        self._scratches[key] = view
        # repro-lint: disable=buffer-escape (_cm_scratch() is a provider: scratch holds transient per-layer values; anything escaping the kernel — returned grads, write-back states — is copied at the boundary, pinned by test_fused_step.py interleaving tests)
        return view

    # -- forward --------------------------------------------------------
    def forward(self, frames) -> Tensor:
        from repro.snn.temporal import reset_states

        plan = self.plan
        reset_states(plan.model)
        self.generation += 1
        generation = self.generation
        self._num_steps = len(frames)
        self._residuals: Dict[str, np.ndarray] = {}
        self._cmajor: set = set()
        self._scratches: Dict[str, np.ndarray] = {}
        self._geom: Dict[str, tuple] = {}
        # per-neuron temporal state: membrane, spikes, adaptation, scalar arrays
        self._nstate = [
            {"m": None, "s": None, "a": None, "beta": None, "thr": None, "one": None}
            for _ in plan.cbns
        ]
        self._fc_wt = np.transpose(plan.fc.weight.data)
        self._int_beta = None
        self._score_dtype = None

        integrator_state = None
        total = None
        out = None
        for t, frame in enumerate(frames):
            x = frame.data if isinstance(frame, Tensor) else frame
            for unit in plan.units:
                if unit.kind == "stem" or unit.kind == "transition":
                    x = self._cbn_forward(unit.cbn, t, x)
                    if unit.kind == "transition":
                        x = self._pool_forward(unit, t, x)
                else:
                    x = self._block_forward(unit, t, x)
            # classifier head: global average pool + linear (+ integrator)
            if t == 0:
                self._geom["head"] = x.shape
            pooled = x.mean(axis=(2, 3))
            pooled_buf = self.stash("head.pooled", pooled.shape, pooled.dtype)
            pooled_buf[t] = pooled
            logits = pooled @ self._fc_wt
            if plan.fc.bias is not None:
                logits = logits + plan.fc.bias.data
            if plan.integrator is not None:
                if integrator_state is None:
                    out = logits
                else:
                    if self._int_beta is None:
                        self._int_beta = np.asarray(plan.integrator.beta, dtype=logits.dtype)
                    out = integrator_state * self._int_beta + logits
                integrator_state = out
            else:
                out = logits
            if plan.readout != "membrane_last":
                total = out if total is None else total + out
        if self._int_beta is None and plan.integrator is not None:
            self._int_beta = np.asarray(plan.integrator.beta, dtype=out.dtype)

        if plan.readout == "membrane_last":
            score_data = out
        elif plan.readout == "spike_count":
            score_data = total
        else:  # membrane_mean / spike_rate
            score_data = total / np.asarray(float(self._num_steps), dtype=total.dtype)
        self._score_dtype = score_data.dtype

        self._write_back_states(integrator_state)

        score = Tensor(score_data, requires_grad=True)
        kernel = self

        def _run_adjoint() -> None:
            if score.grad is None:
                return
            if kernel.generation != generation:
                raise RuntimeError(
                    "fused BPTT residuals were overwritten by a newer fused forward; "
                    "run backward() before taking the next training step"
                )
            with span("train.fused_backward", num_steps=kernel._num_steps):
                kernel.adjoint(score.grad)

        score._backward = _run_adjoint
        return score

    def _write_back_states(self, integrator_state) -> None:
        """Publish final temporal states exactly like the graph path would.

        Everything handed out is an owning array (the last update's fresh
        result), never a slice of the pooled residual stash — escaping
        workspace storage would break the aliasing contract.
        """
        for cbn, state in zip(self.plan.cbns, self._nstate):
            neuron = cbn.neuron
            neuron.membrane = graph_free(state["m"])
            neuron.previous_spikes = graph_free(state["s"])
            if cbn.adaptive:
                neuron._adaptive_component = state["a"]
        if self.plan.integrator is not None and integrator_state is not None:
            self.plan.integrator.membrane = graph_free(integrator_state)

    # -- per-stage forwards ---------------------------------------------
    def _conv_forward(self, op: _ConvOp, t: int, x: np.ndarray) -> np.ndarray:
        geom = self._geom.get(op.key)
        if geom is None:
            n, c, h, w = x.shape
            oh, ow = conv_output_shape(h, w, (op.kh, op.kw), (op.sh, op.sw), (op.ph, op.pw))
            # a padding-free conv hands its input to im2col as-is, so the
            # stash must mirror the input's own layout (channel-major for
            # spike activations) for the adjoint's weight-grad einsum to see
            # the graph path's exact strides; padded convs copy through
            # np.pad either way, which is always C-order
            pad_cm = not (op.ph or op.pw) and not x.flags["C_CONTIGUOUS"]
            geom = (n, c, h, w, oh, ow, pad_cm)
            self._geom[op.key] = geom
        n, c, h, w, oh, ow, pad_cm = geom
        self.stash(
            op.key + ".pad",
            (n, c, h + 2 * op.ph, w + 2 * op.pw),
            x.dtype,
            fill=0.0 if (op.ph or op.pw) else None,
            cmajor=pad_cm,
        )
        slot = self.stashed(op.key + ".pad", t)
        if op.ph or op.pw:
            slot[:, :, op.ph : op.ph + h, op.pw : op.pw + w] = x
        else:
            slot[...] = x
        # padding is already applied into the stashed buffer; the GEMM output
        # is returned as the same channel-major (C, N, H, W)-backed view the
        # graph path's einsum produces, so downstream reductions (batch-norm
        # statistics) walk memory in the identical order — bit-identical sums
        return _conv2d_infer(slot, op.conv.weight.data, None, op.groups, op.sh, op.sw, 0, 0, oh, ow)

    def _bn_forward(self, cbn: _CBN, t: int, x: np.ndarray) -> np.ndarray:
        norm = cbn.norm
        features = norm.num_features
        count = x.shape[0] * x.shape[2] * x.shape[3]
        # open-coded np.mean — same add.reduce + in-place divide the ufunc
        # machinery performs, minus the per-call wrapper overhead
        mean = np.add.reduce(x, axis=(0, 2, 3), keepdims=True)
        mean /= count
        xc_buf = self.stash(f"b{cbn.index}.xc", x.shape, x.dtype)
        xc = xc_buf[t]
        np.subtract(x, mean, out=xc)
        sq = self._cm_scratch(f"b{cbn.index}.sq", x.shape, x.dtype)
        np.multiply(xc, xc, out=sq)
        var = np.add.reduce(sq, axis=(0, 2, 3), keepdims=True)
        var /= count
        new_mean = (1 - norm.momentum) * norm.running_mean + norm.momentum * mean.reshape(-1)
        new_var = (1 - norm.momentum) * norm.running_var + norm.momentum * var.reshape(-1)
        norm.update_buffer("running_mean", new_mean)
        norm.update_buffer("running_var", new_var)
        p = var + norm.eps
        p_buf = self.stash(f"b{cbn.index}.p", p.shape, p.dtype)
        p_buf[t] = p
        denom = p ** 0.5
        denom_buf = self.stash(f"b{cbn.index}.denom", denom.shape, denom.dtype)
        denom_buf[t] = denom
        normalized = xc / denom
        scale = norm.weight.data.reshape(1, features, 1, 1)
        shift = norm.bias.data.reshape(1, features, 1, 1)
        # fresh (not pooled — it escapes as membrane state at t=0) output in
        # the conv output's channel-major order, like the graph's ufunc chain
        out = np.empty_like(x)
        np.multiply(normalized, scale, out=out)
        np.add(out, shift, out=out)
        return out

    def _neuron_forward(self, cbn: _CBN, t: int, drive: np.ndarray) -> np.ndarray:
        neuron = cbn.neuron
        state = self._nstate[cbn.index]
        m_prev, s_prev = state["m"], state["s"]
        if m_prev is None:
            membrane = drive
        else:
            if s_prev is None or cbn.reset == "none":
                inner = m_prev
            elif cbn.reset == "subtract":
                if state["thr"] is None:
                    state["thr"] = np.asarray(neuron.threshold, dtype=s_prev.dtype)
                inner = m_prev - s_prev * state["thr"]
            else:  # zero (hard reset)
                if state["one"] is None:
                    state["one"] = np.asarray(1.0, dtype=s_prev.dtype)
                inner = m_prev * (state["one"] - s_prev)
            if cbn.decay is None:
                membrane = inner + drive
            else:
                if state["beta"] is None:
                    state["beta"] = np.asarray(cbn.decay, dtype=inner.dtype)
                membrane = inner * state["beta"] + drive
        if cbn.adaptive:
            adaptation = state["a"]
            if adaptation is None:
                adaptation = np.zeros_like(membrane)
            else:
                adaptation = neuron.adaptation_decay * adaptation
                if s_prev is not None:
                    adaptation = adaptation + neuron.adaptation * s_prev
            state["a"] = adaptation
            shifted = (membrane - adaptation) - neuron.threshold
        else:
            shifted = membrane - neuron.threshold
        spikes = (shifted >= 0.0).astype(membrane.dtype)
        pseudo = neuron.surrogate.derivative(shifted)
        pseudo_buf = self.stash(f"n{cbn.index}.pseudo", pseudo.shape, pseudo.dtype)
        pseudo_buf[t] = pseudo
        if cbn.reset == "zero":
            spikes_buf = self.stash(f"n{cbn.index}.spikes", spikes.shape, spikes.dtype)
            spikes_buf[t] = spikes
        state["m"] = membrane
        state["s"] = spikes
        return spikes

    def _cbn_forward(self, cbn: _CBN, t: int, x: np.ndarray) -> np.ndarray:
        x = self._conv_forward(cbn.op, t, x)
        x = self._bn_forward(cbn, t, x)
        return self._neuron_forward(cbn, t, x)

    def _pool_forward(self, unit: _Unit, t: int, x: np.ndarray) -> np.ndarray:
        out, ctx = _avg_pool2d_fwd(
            x,
            want_ctx=True,
            kernel=unit.pool_kernel,
            stride=unit.pool_stride,
            padding=unit.pool_padding,
        )
        self._geom[unit.pool_key] = ctx
        return out

    def _block_forward(self, unit: _Unit, t: int, x: np.ndarray) -> np.ndarray:
        node_outputs = [x]
        for layer in unit.layers:
            combined = node_outputs[-1]
            for source, projection in layer.asc:
                source_output = node_outputs[source]
                if projection is not None:
                    source_output = self._conv_forward(projection, t, source_output)
                combined = combined + source_output
            if layer.concat:
                combined = np.concatenate(
                    [combined] + [node_outputs[source] for source, _ in layer.concat], axis=1
                )
            node_outputs.append(self._cbn_forward(layer.cbn, t, combined))
        return node_outputs[-1]

    # -- adjoint ---------------------------------------------------------
    def adjoint(self, g_score: np.ndarray) -> None:
        """Reverse-time sweep accumulating parameter gradients.

        Expression-for-expression this replicates the registered primitive
        vjps over the graph the fused forward *would* have recorded, in the
        exact accumulation order of the reverse topological sweep (strictly
        reverse time; reverse creation order within a step).
        """
        plan = self.plan
        num_steps = self._num_steps
        readout = plan.readout
        if readout == "membrane_last":
            seed = None
        elif readout == "spike_count":
            seed = g_score
        else:  # membrane_mean / spike_rate: score = total / num_steps
            seed = g_score / np.asarray(float(num_steps), dtype=self._score_dtype)
        self._ncarry: List[Optional[np.ndarray]] = [None] * len(plan.cbns)
        carry_out = None

        head_shape = self._geom["head"]
        n, channels, height, width = head_shape
        pool_count = height * width

        for t in range(num_steps - 1, -1, -1):
            # ---- head: integrator -> linear -> global average pool
            if readout == "membrane_last":
                g_out = g_score if t == num_steps - 1 else carry_out
            else:
                g_out = seed if carry_out is None else carry_out + seed
            if plan.integrator is not None and t > 0:
                carry_out = g_out * self._int_beta
            g_logits = g_out
            if plan.fc.bias is not None:
                plan.fc.bias.accumulate_grad(_unbroadcast(g_logits, plan.fc.bias.data.shape))
            pooled = self.stashed("head.pooled", t)
            plan.fc.weight.accumulate_grad(
                np.transpose(_unbroadcast(np.swapaxes(pooled, -1, -2) @ g_logits, self._fc_wt.shape))
            )
            g_pooled = _unbroadcast(g_logits @ np.swapaxes(self._fc_wt, -1, -2), pooled.shape)
            grad = g_pooled / pool_count
            g_x = np.broadcast_to(np.expand_dims(grad, axis=(2, 3)), head_shape).astype(np.float64)

            # ---- trunk, reversed
            for unit in reversed(plan.units):
                if unit.kind == "transition":
                    g_x = _avg_pool2d_vjp(
                        self._geom[unit.pool_key],
                        g_x,
                        (True,),
                        kernel=unit.pool_kernel,
                        stride=unit.pool_stride,
                        padding=unit.pool_padding,
                    )[0]
                    g_x = self._neuron_backward(unit.cbn, t, g_x)
                    g_x = self._bn_backward(unit.cbn, t, g_x)
                    g_x = self._conv_backward(unit.cbn.op, t, g_x, need_input=True)
                elif unit.kind == "block":
                    g_x = self._block_backward(unit, t, g_x)
                else:  # stem: the encoded frame needs no gradient
                    g_x = self._neuron_backward(unit.cbn, t, g_x)
                    g_x = self._bn_backward(unit.cbn, t, g_x)
                    self._conv_backward(unit.cbn.op, t, g_x, need_input=False)
                    g_x = None

    def _neuron_backward(self, cbn: _CBN, t: int, g_spikes: np.ndarray) -> np.ndarray:
        # spike vjp: dL/dm = dL/dS * surrogate pseudo-derivative; the carried
        # membrane gradient from step t+1 lands first, as in the graph sweep
        # (IEEE addition is commutative, so local-then-carry is bit-equal).
        # The result is materialised channel-major like the graph's membrane
        # grad buffer — batch norm sums it next, and sum order is layout order
        g_membrane = self._cm_scratch(f"n{cbn.index}.gm", g_spikes.shape)
        np.multiply(g_spikes, self.stashed(f"n{cbn.index}.pseudo", t), out=g_membrane)
        carry = self._ncarry[cbn.index]
        if carry is not None:
            g_membrane += carry
        if t > 0:
            state = self._nstate[cbn.index]
            if cbn.decay is None:
                # integrate is a plain add, so the carry is the membrane grad
                # itself — copied, because the scratch is rewritten at t - 1
                g_inner = g_membrane.copy()
            else:
                g_inner = g_membrane * state["beta"]
            if cbn.reset == "zero":
                g_inner = g_inner * (state["one"] - self.stashed(f"n{cbn.index}.spikes", t - 1))
            # reset terms are detached, so the subtract reset carries unchanged
            self._ncarry[cbn.index] = g_inner
        else:
            self._ncarry[cbn.index] = None
        # at t=0 the membrane *is* the synaptic input; otherwise the integrate
        # add passes the gradient through unchanged either way
        return g_membrane

    def _bn_backward(self, cbn: _CBN, t: int, g_out: np.ndarray) -> np.ndarray:
        norm = cbn.norm
        features = norm.num_features
        xc = self.stashed(f"b{cbn.index}.xc", t)
        denom = self.stashed(f"b{cbn.index}.denom", t)
        p = self.stashed(f"b{cbn.index}.p", t)
        shape = xc.shape
        count = shape[0] * shape[2] * shape[3]
        reduced = (1, features, 1, 1)
        scale = norm.weight.data.reshape(reduced)
        # every array a sum runs over is staged channel-major first, matching
        # the layout of the graph's zeros_like grad buffers (see _cm_scratch)
        prod = self._cm_scratch(f"b{cbn.index}.prod", shape)
        # reductions over the batch axes are open-coded sums: _unbroadcast on a
        # (N,C,H,W) -> (1,C,1,1) grad is exactly sum(axis=(0,2,3), keepdims)
        norm.bias.accumulate_grad(
            g_out.sum(axis=(0, 2, 3), keepdims=True).reshape(norm.bias.data.shape)
        )
        np.divide(xc, denom, out=prod)  # normalized, recomputed bit-identically
        np.multiply(g_out, prod, out=prod)
        norm.weight.accumulate_grad(
            prod.sum(axis=(0, 2, 3), keepdims=True).reshape(norm.weight.data.shape)
        )
        g_norm = g_out * scale
        # div vjp: a-side g / b, b-side -g * a / b**2 reduced over broadcast axes
        g_centered = self._cm_scratch(f"b{cbn.index}.gc", shape)
        np.divide(g_norm, denom, out=g_centered)
        np.negative(g_norm, out=prod)
        prod *= xc
        prod /= denom ** 2
        g_denom = prod.sum(axis=(0, 2, 3), keepdims=True)
        # power vjp for denom = p ** 0.5, then the eps-add passes through
        g_var = g_denom * 0.5 * p ** (0.5 - 1)
        # mean vjp (keepdims): fan the variance gradient back over the batch;
        # centered * centered contributes the same term through both factor
        # slots (the broadcast happens inside the ufunc — elementwise values
        # are layout-free, and prod is done carrying the g_denom operand)
        np.multiply((g_var / count).astype(np.float64), xc, out=prod)
        g_centered += prod
        g_centered += prod
        # centered = x - mean: identity into x plus the mean's fan-out; the
        # add lands in the scratch, which the conv vjp consumes (and copies
        # through its own C-order reshape) before this layer's next borrow
        np.negative(g_centered, out=prod)
        g_mean = prod.sum(axis=(0, 2, 3), keepdims=True)
        np.add(g_centered, (g_mean / count).astype(np.float64), out=g_centered)
        return g_centered

    def _conv_backward(
        self, op: _ConvOp, t: int, g: np.ndarray, need_input: bool
    ) -> Optional[np.ndarray]:
        n, c, h, w, oh, ow, _pad_cm = self._geom[op.key]
        pad = self.stashed(op.key + ".pad", t)
        weight = op.conv.weight.data
        col = _im2col_view(pad, op.kh, op.kw, op.sh, op.sw, oh, ow)
        col_g = col.reshape(n, op.groups, c // op.groups, op.kh, op.kw, oh, ow)
        w_g = weight.reshape(op.groups, weight.shape[0] // op.groups, c // op.groups, op.kh, op.kw)
        geometry = (
            n, c, h, w, op.kh, op.kw, op.sh, op.sw, op.ph, op.pw, oh, ow,
            weight.shape[0], weight.shape,
        )
        grads = _conv2d_vjp(
            (col_g, w_g, geometry),
            g,
            (need_input, True),
            stride=(op.sh, op.sw),
            padding=(op.ph, op.pw),
            groups=op.groups,
        )
        op.conv.weight.accumulate_grad(grads[1])
        return grads[0]

    def _block_backward(self, unit: _Unit, t: int, g_out: np.ndarray) -> np.ndarray:
        layers = unit.layers
        node_grads: List[Optional[np.ndarray]] = [None] * (len(layers) + 1)
        node_grads[-1] = g_out
        for layer_index in range(len(layers) - 1, -1, -1):
            layer = layers[layer_index]
            g = node_grads[layer_index + 1]
            g = self._neuron_backward(layer.cbn, t, g)
            g = self._bn_backward(layer.cbn, t, g)
            g = self._conv_backward(layer.cbn.op, t, g, need_input=True)
            if layer.concat:
                g_seq = g[:, : layer.seq_channels]
                offset = layer.seq_channels
                for source, source_channels in layer.concat:
                    piece = g[:, offset : offset + source_channels]
                    offset += source_channels
                    node_grads[source] = (
                        piece if node_grads[source] is None else node_grads[source] + piece
                    )
            else:
                g_seq = g
            for source, projection in reversed(layer.asc):
                g_source = g_seq
                if projection is not None:
                    g_source = self._conv_backward(projection, t, g_seq, need_input=True)
                node_grads[source] = (
                    g_source if node_grads[source] is None else node_grads[source] + g_source
                )
            node_grads[layer_index] = (
                g_seq if node_grads[layer_index] is None else node_grads[layer_index] + g_seq
            )
        return node_grads[0]
