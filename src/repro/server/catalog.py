"""Read view over every evaluation store in one cache directory.

``repro serve`` answers ``/pareto`` and ``/recommend`` from the evaluation
rows the cache directory has accumulated — across however many fingerprinted
stores past searches (and currently running jobs) have created.  Re-opening
and re-parsing every store per request would dominate the request cost, so
the catalog holds one long-lived :class:`~repro.core.cache.ShardedEvaluationStore`
read view per base file and relies on
:meth:`~repro.core.cache.PersistentEvaluationStore.refresh` — a cheap
(path, mtime, size) signature check — to reload a store only when one of its
backing files actually changed.  A fully-cached request therefore touches no
JSONL parsing at all.

The sharded store class is used for *every* base file because it reads both
layouts: a legacy single ``<name>.jsonl`` plus any per-writer shards under
``<name>.shards/``.  The catalog never writes: running jobs append through
their own store instances, and the catalog picks the rows up on the next
signature change.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.cache import ShardedEvaluationStore


class StoreCatalog:
    """Lazily discovered, signature-refreshed read views of a cache directory."""

    def __init__(self, cache_dir) -> None:
        self.cache_dir = Path(cache_dir)
        self._lock = threading.Lock()
        self._stores: Dict[str, ShardedEvaluationStore] = {}

    # ------------------------------------------------------------------
    def _discover(self) -> List[str]:
        """Store base names present on disk (base files and/or shard dirs)."""
        if not self.cache_dir.is_dir():
            return []
        names = {path.stem for path in self.cache_dir.glob("*.jsonl")}
        for shard_dir in self.cache_dir.glob(f"*{ShardedEvaluationStore.SHARD_SUFFIX}"):
            if shard_dir.is_dir() and any(shard_dir.glob("*.jsonl")):
                names.add(shard_dir.name[: -len(ShardedEvaluationStore.SHARD_SUFFIX)])
        return sorted(names)

    def refresh(self) -> int:
        """Discover new stores and refresh stale ones; returns the store count."""
        with self._lock:
            for name in self._discover():
                if name not in self._stores:
                    self._stores[name] = ShardedEvaluationStore(self.cache_dir / f"{name}.jsonl")
            for store in self._stores.values():
                store.refresh()
            return len(self._stores)

    def store_names(self) -> List[str]:
        with self._lock:
            return sorted(self._stores)

    def get(self, name: str) -> Optional[ShardedEvaluationStore]:
        with self._lock:
            return self._stores.get(name)

    # ------------------------------------------------------------------
    def iter_rows(self, store: Optional[str] = None) -> Iterator[Tuple[str, dict]]:
        """Yield ``(store name, row)`` over the merged view of every store.

        ``store`` filters to base names containing the given substring (the
        fingerprint suffix makes exact names unwieldy for operators).
        Callers must :meth:`refresh` first; iteration itself takes no lock
        beyond snapshotting the store list, because each store's row dict is
        replaced wholesale on reload, never mutated in place.
        """
        with self._lock:
            stores = sorted(self._stores.items())
        for name, view in stores:
            if store is not None and store not in name:
                continue
            for row in view.rows():
                yield name, row

    def total_rows(self, refresh: bool = True) -> int:
        """Distinct evaluation rows across every store (refreshing by default)."""
        if refresh:
            self.refresh()
        with self._lock:
            return sum(len(store) for store in self._stores.values())
