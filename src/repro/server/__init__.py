"""Search-as-a-service: an HTTP layer over the search and cache subsystems.

The engine built by the earlier subsystems — incremental GP search, the
sharded evaluation store, the async executor, the multi-objective Pareto
layer — runs here as a long-lived service instead of a batch CLI run:

* ``POST /jobs`` submits a search job (single- or multi-objective) executed
  on a background thread over the async executor and the shared cache
  directory; ``GET /jobs/<id>`` reports progress and ``GET /jobs/<id>/events``
  streams it (per-completion records, hypervolume trace) as ndjson;
* ``GET /pareto`` returns the current non-dominated front of the merged
  evaluation store, and ``GET /recommend?energy_budget=..`` answers "which
  architecture fits this budget?" instantly from cached metrics rows —
  never triggering a fresh evaluation;
* ``GET /healthz`` and the Prometheus-text ``GET /metrics`` make the service
  operable; SIGTERM drains in-flight evaluations before exiting.

Start it with ``python -m repro.cli serve --cache-dir <dir>`` or embed it::

    from repro.server import ReproServer, ServerConfig

    with ReproServer(ServerConfig(cache_dir="results/cache", port=0)) as server:
        print(server.url)
        ...

Operator documentation (endpoint catalog, metrics reference, shutdown
semantics, multi-worker deployment) lives in ``docs/server.md``.
"""

from repro.server.app import ReproServer, ServerConfig
from repro.server.catalog import StoreCatalog
from repro.server.health import HealthMonitor
from repro.server.jobs import Job, JobManager, JobValidationError
from repro.server.metrics import Counter, Gauge, Histogram, MetricsRegistry, get_registry

__all__ = [
    "ReproServer",
    "ServerConfig",
    "StoreCatalog",
    "HealthMonitor",
    "Job",
    "JobManager",
    "JobValidationError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
]
