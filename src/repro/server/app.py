"""The HTTP server: stdlib ``ThreadingHTTPServer`` wiring for the serving layer.

:class:`ReproServer` binds the subsystems together — the
:class:`~repro.server.catalog.StoreCatalog` read view of the cache directory,
the :class:`~repro.server.jobs.JobManager` running searches in background
threads, the :class:`~repro.server.metrics.MetricsRegistry` and the
:class:`~repro.server.health.HealthMonitor` — behind the route table of
:mod:`repro.server.routes`.  Each request runs on its own thread (the stdlib
threading mixin), is timed into a per-endpoint latency histogram and counted
per (endpoint, method, status).

Graceful shutdown (:meth:`ReproServer.stop`, triggered by SIGTERM/SIGINT in
``repro serve``) is ordered so no completed evaluation is lost:

1. the health status flips to ``shutting-down`` (``/healthz`` turns 503, so
   load balancers stop routing) and new job submissions are rejected;
2. every running job is asked to stop; each drains its in-flight evaluations
   through the async executor's waiting close, records a partial result and
   ends in state ``stopped`` — evaluation rows are appended synchronously by
   whichever process evaluated them, so the writer shards on disk already
   hold every completed evaluation (nothing is buffered in memory);
3. the HTTP listener is shut down and the catalog takes a final refresh, so
   the last log line reports the true row count.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro.core.cache import store_counters
from repro.server.catalog import StoreCatalog
from repro.server.health import HealthMonitor
from repro.server.jobs import JobManager
from repro.server.metrics import MetricsRegistry
from repro.server.routes import (
    HTTPError,
    JSONResponse,
    Request,
    StreamResponse,
    TextResponse,
    resolve,
)
from repro.tensor.sparse import aggregate_sparse_counters


def _store_lookup_hit_rate() -> float:
    """Fraction of process-wide evaluation-store lookups answered from a store."""
    counters = store_counters()
    total = counters["hits"] + counters["misses"]
    return counters["hits"] / total if total else 0.0


@dataclass
class ServerConfig:
    """Everything ``repro serve`` exposes as flags."""

    cache_dir: str
    host: str = "127.0.0.1"
    port: int = 8000
    #: default experiment scale for submitted jobs (None = get_scale default)
    scale: Optional[str] = None
    #: default worker processes per job (0 = serial evaluation in the job thread)
    async_workers: int = 0
    #: jobs write per-writer shards so several server processes (or external
    #: searches) can share one cache directory without write contention
    sharded_cache: bool = True
    #: per-job join timeout during shutdown (None waits for a full drain)
    shutdown_timeout: Optional[float] = None


class _Handler(BaseHTTPRequestHandler):
    """Parses requests, dispatches through the route table, writes responses."""

    protocol_version = "HTTP/1.1"
    #: maximum accepted request body (a job submission is a few hundred bytes)
    max_body_bytes = 1 << 20

    def log_message(self, format, *args):  # stdlib signature shadows `format`
        pass  # request logging is served by /metrics, not stderr noise

    @property
    def app(self) -> "ReproServer":
        return self.server.app  # type: ignore[attr-defined]

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.max_body_bytes:
            raise HTTPError(413, f"request body exceeds {self.max_body_bytes} bytes")
        return self.rfile.read(length) if length else b""

    def _dispatch(self, method: str) -> None:
        started = time.perf_counter()
        split = urlsplit(self.path)
        endpoint = split.path
        status = 500
        observed = False
        try:
            try:
                try:
                    endpoint, handler, params = resolve(method, split.path)
                except HTTPError:
                    # unknown paths share one metrics label: client typos must
                    # not mint unbounded label cardinality
                    endpoint = "<unmatched>"
                    raise
                request = Request(
                    server=self.app,
                    method=method,
                    path=split.path,
                    query=parse_qs(split.query),
                    path_params=params,
                    body=self._read_body(),
                )
                response = handler(request)
            except HTTPError as error:
                response = JSONResponse({"error": error.message}, status=error.status)
            except Exception as error:  # a handler bug must answer, not hang
                response = JSONResponse(
                    {"error": f"internal error: {type(error).__name__}: {error}"}, status=500
                )
            status = response.status
            # record BEFORE flushing the body: a client that has received its
            # response must find the request in an immediately following
            # /metrics scrape (recording after the flush races that scrape)
            self.app.observe_request(endpoint, method, status, time.perf_counter() - started)
            observed = True
            self._write_response(response)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            status = 499  # client went away mid-response (nginx's convention)
        finally:
            if not observed:  # pragma: no cover - client died before dispatch finished
                self.app.observe_request(endpoint, method, status, time.perf_counter() - started)

    def _write_response(self, response) -> None:
        if isinstance(response, JSONResponse):
            body = (json.dumps(response.payload, indent=2) + "\n").encode("utf-8")
            self._write_fixed(response.status, "application/json; charset=utf-8", body)
        elif isinstance(response, TextResponse):
            self._write_fixed(response.status, response.content_type, response.text.encode("utf-8"))
        elif isinstance(response, StreamResponse):
            self._write_chunked(response)
        else:  # pragma: no cover - handler contract violation
            raise TypeError(f"handler returned {type(response).__name__}")

    def _write_fixed(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _write_chunked(self, response: StreamResponse) -> None:
        """HTTP/1.1 chunked transfer encoding, flushed per chunk.

        Each event line reaches the client as its own chunk the moment the
        job emits it; the zero-length terminal chunk ends the stream when the
        handler's iterator is exhausted (job terminal, or ``follow=0``).
        """
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        for chunk in response.chunks:
            data = chunk.encode("utf-8")
            if not data:
                continue
            self.wfile.write(f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n")
            self.wfile.flush()
        self.wfile.write(b"0\r\n\r\n")

    def do_GET(self) -> None:  # stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # stdlib naming
        self._dispatch("POST")


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True  # event-stream readers must not block process exit
    app: "ReproServer"


class ReproServer:
    """The serving layer: subsystems plus a bound (but not yet serving) socket.

    Construction binds the socket (so ``port=0`` resolves to the real
    ephemeral port immediately — see :attr:`port`); :meth:`start` begins
    serving on a background thread, :meth:`stop` performs the graceful
    shutdown described in the module docstring.  Usable as a context manager.
    """

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        Path(config.cache_dir).mkdir(parents=True, exist_ok=True)
        self.registry = MetricsRegistry()
        self.catalog = StoreCatalog(config.cache_dir)
        self.jobs = JobManager(
            config.cache_dir,
            default_scale=config.scale,
            default_async_workers=config.async_workers,
            sharded_cache=config.sharded_cache,
            registry=self.registry,
        )
        self.health = HealthMonitor(self.catalog, self.jobs)
        self._requests = self.registry.counter(
            "repro_http_requests_total",
            "HTTP requests served",
            labelnames=("endpoint", "method", "status"),
        )
        self._latency = self.registry.histogram(
            "repro_http_request_seconds",
            "Wall-clock request latency per endpoint",
            labelnames=("endpoint",),
        )
        self._recommend_hits = self.registry.counter(
            "repro_recommend_cache_hits_total",
            "Recommendations answered from the evaluation store",
        )
        self._recommend_misses = self.registry.counter(
            "repro_recommend_cache_misses_total",
            "Recommendation requests no cached evaluation could satisfy",
        )
        self.registry.gauge(
            "repro_cache_hit_rate", "Fraction of /recommend lookups answered from cache"
        ).set_function(lambda: self.health.recommend_hit_rate)
        self.registry.gauge(
            "repro_store_rows", "Distinct evaluation rows across the cache directory's stores"
        ).set_function(lambda: self.catalog.total_rows())
        self.registry.gauge(
            "repro_jobs_running", "Search jobs currently running"
        ).set_function(lambda: self.jobs.running_count())
        self.registry.gauge(
            "repro_evals_in_flight", "Evaluations currently executing across all jobs"
        ).set_function(lambda: self.jobs.evals_in_flight())
        self.registry.gauge(
            "repro_worker_occupancy",
            "Fraction of running jobs' evaluation-worker capacity currently busy",
        ).set_function(lambda: self.jobs.worker_occupancy())
        self.registry.counter(
            "repro_job_events_dropped_total",
            "Events dropped from bounded per-job event logs",
        ).set_function(lambda: float(self.jobs.events_dropped_total()))
        # process-wide substrate/store tallies (worker-process deltas are merged
        # back by the async executor, so these cover pool evaluations too)
        self.registry.counter(
            "repro_sparse_steps_total",
            "Inference dispatches routed through the event-driven sparse kernels",
        ).set_function(lambda: float(aggregate_sparse_counters()["sparse_steps"]))
        self.registry.counter(
            "repro_dense_steps_total",
            "Inference dispatches that fell back to the dense kernels while sparse mode was active",
        ).set_function(lambda: float(aggregate_sparse_counters()["dense_steps"]))
        self.registry.counter(
            "repro_sparse_probe_failures_total",
            "Per-shape GEMM certification probes that rejected the sparse path",
        ).set_function(lambda: float(aggregate_sparse_counters()["probe_failures"]))
        self.registry.counter(
            "repro_store_lookup_hits_total",
            "Evaluation-store lookups answered from a store (process-wide)",
        ).set_function(lambda: float(store_counters()["hits"]))
        self.registry.counter(
            "repro_store_lookup_misses_total",
            "Evaluation-store lookups that missed every store (process-wide)",
        ).set_function(lambda: float(store_counters()["misses"]))
        self.registry.gauge(
            "repro_store_lookup_hit_rate",
            "Fraction of process-wide evaluation-store lookups answered from a store",
        ).set_function(_store_lookup_hit_rate)
        self._http = _HTTPServer((config.host, config.port), _Handler)
        self._http.app = self
        self._thread: Optional[threading.Thread] = None
        self._stopped = False

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def observe_request(self, endpoint: str, method: str, status: int, seconds: float) -> None:
        self._requests.labels(endpoint=endpoint, method=method, status=str(status)).inc()
        self._latency.labels(endpoint=endpoint).observe(seconds)

    def observe_recommend(self, hit: bool) -> None:
        self.health.record_recommend(hit)
        (self._recommend_hits if hit else self._recommend_misses).inc()

    # ------------------------------------------------------------------
    def start(self) -> "ReproServer":
        """Serve on a background thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self.catalog.refresh()
        self._thread = threading.Thread(
            target=self._http.serve_forever, daemon=True, name=f"repro-serve:{self.port}"
        )
        self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = None) -> None:
        """Graceful shutdown: drain jobs, then stop the listener (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        self.health.shutting_down = True
        self.jobs.shutdown(timeout if timeout is not None else self.config.shutdown_timeout)
        self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
        self.catalog.refresh()

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
