"""Prometheus-text metrics registry for the serving layer.

The server's operational surface is a ``GET /metrics`` endpoint emitting the
Prometheus exposition format (text version 0.0.4) — counters, gauges and
histograms — without depending on ``prometheus_client`` (the repo carries no
runtime dependencies beyond numpy).  Only the subset the serving layer needs
is implemented:

* :class:`Counter` — monotonically increasing, with optional labels
  (request counts per endpoint/method/status, recommend cache hits/misses);
* :class:`Gauge` — settable, or backed by a callback evaluated at render
  time (store row count, evaluations in flight, jobs running);
* :class:`Histogram` — cumulative buckets plus ``_sum``/``_count``
  (per-endpoint request latency).

All metric types are thread-safe: the HTTP server handles each request on
its own thread, so increments and observations race freely with renders.

The module-level registry is lazily initialised (:func:`get_registry`) so
importing the package never allocates server state; each
:class:`~repro.server.app.ReproServer` instead owns a private
:class:`MetricsRegistry`, keeping concurrently running servers (and tests)
isolated from each other.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: default latency buckets (seconds) — sub-millisecond cache answers up to
#: multi-second search-job submissions
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


def _format_value(value: float) -> str:
    """Prometheus sample value: integers render bare, floats as-is."""
    if value == int(value):
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Tuple[Tuple[str, str], ...], extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    escaped = ",".join(f'{key}="{_escape(value)}"' for key, value in pairs)
    return "{" + escaped + "}"


def _escape(value: str) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


class _Metric:
    """Shared bookkeeping: name, help text, label names, child map."""

    type_name = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[Tuple[str, str], ...], object] = {}

    def labels(self, **labelvalues: str):
        """The child metric for one label combination (created on first use)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {sorted(self.labelnames)}, "
                f"got {sorted(labelvalues)}"
            )
        key = tuple((name, str(labelvalues[name])) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _unlabelled(self):
        """The single child of a label-less metric."""
        if self.labelnames:
            raise ValueError(f"metric {self.name!r} requires labels {sorted(self.labelnames)}")
        return self.labels()

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def _samples(self) -> Iterable[Tuple[str, Tuple[Tuple[str, str], ...], float]]:
        """Yield (suffix, label pairs, value) for every child sample."""
        raise NotImplementedError

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help_text}", f"# TYPE {self.name} {self.type_name}"]
        with self._lock:
            samples = list(self._samples())
        for suffix, labels, value in samples:
            lines.append(f"{self.name}{suffix}{labels} {_format_value(value)}")
        return lines


class _CounterChild:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._function: Optional[Callable[[], float]] = None
        #: last callback failure, kept so a NaN sample is diagnosable
        self.last_error: Optional[str] = None

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            if self._function is not None:
                raise ValueError("counter is callback-backed; it cannot also be incremented")
            self._value += amount

    def set_function(self, function: Callable[[], float]) -> None:
        with self._lock:
            self._function = function

    def get(self) -> float:
        with self._lock:
            function = self._function
            value = self._value
        if function is not None:
            try:
                result = float(function())
            except Exception as error:  # pragma: no cover - callback failure
                # a failing callback must not break the whole /metrics page,
                # but the failure must stay visible somewhere
                with self._lock:
                    self.last_error = f"{type(error).__name__}: {error}"
                return float("nan")
            with self._lock:
                self.last_error = None
            return result
        return value


class Counter(_Metric):
    """Monotonically increasing counter, optionally labelled.

    A counter can alternatively be *callback-backed* (:meth:`set_function`):
    the callback — which must itself be monotone, e.g. a snapshot of a
    process-wide tally — is evaluated at render time, mirroring the
    callback-backed :class:`Gauge`.  A callback-backed counter rejects
    :meth:`inc`; the two sourcing modes cannot be mixed.
    """

    type_name = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._unlabelled().inc(amount)

    def set_function(self, function: Callable[[], float]) -> None:
        """Evaluate ``function`` at render time instead of storing a value."""
        self._unlabelled().set_function(function)

    @property
    def value(self) -> float:
        """Sum over every label combination (convenience for tests/health)."""
        with self._lock:
            children = list(self._children.values())
        return sum(child.get() for child in children)

    def _samples(self):
        for labels, child in sorted(self._children.items()):
            yield "", _format_labels(labels), child.get()


class _GaugeChild:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._function: Optional[Callable[[], float]] = None
        #: last callback failure, kept so a NaN sample is diagnosable
        self.last_error: Optional[str] = None

    def set(self, value: float) -> None:
        with self._lock:
            self._function = None
            self._value = float(value)

    def set_function(self, function: Callable[[], float]) -> None:
        with self._lock:
            self._function = function

    def get(self) -> float:
        with self._lock:
            function = self._function
            value = self._value
        if function is not None:
            try:
                result = float(function())
            except Exception as error:  # pragma: no cover - callback failure
                # a failing callback must not break the whole /metrics page,
                # but the failure must stay visible somewhere
                with self._lock:
                    self.last_error = f"{type(error).__name__}: {error}"
                return float("nan")
            with self._lock:
                self.last_error = None
            return result
        return value


class Gauge(_Metric):
    """Settable (or callback-backed) instantaneous value."""

    type_name = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._unlabelled().set(value)

    def set_function(self, function: Callable[[], float]) -> None:
        """Evaluate ``function`` at render time instead of storing a value."""
        self._unlabelled().set_function(function)

    def get(self) -> float:
        return self._unlabelled().get()

    def _samples(self):
        for labels, child in sorted(self._children.items()):
            yield "", _format_labels(labels), child.get()


class _HistogramChild:
    def __init__(self, buckets: Sequence[float]) -> None:
        self._lock = threading.Lock()
        self.buckets = tuple(buckets)
        self.bucket_counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            # per-bin storage: only the first bucket that fits is incremented;
            # render-time accumulation produces the cumulative `le` counts the
            # exposition format requires (incrementing every qualifying bucket
            # here AND accumulating at render double-counts and breaks
            # monotonicity against le="+Inf")
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[index] += 1
                    break


class Histogram(_Metric):
    """Cumulative-bucket histogram (the Prometheus native layout)."""

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._unlabelled().observe(value)

    def _samples(self):
        for labels, child in sorted(self._children.items()):
            cumulative = 0
            for bound, count in zip(child.buckets, child.bucket_counts):
                cumulative += count
                yield "_bucket", _format_labels(labels, [("le", _format_value(bound))]), cumulative
            yield "_bucket", _format_labels(labels, [("le", "+Inf")]), child.count
            yield "_sum", _format_labels(labels), child.sum
            yield "_count", _format_labels(labels), child.count


class MetricsRegistry:
    """Named collection of metrics rendered as one Prometheus text page.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice for
    the same name returns the same metric (and raises if the second request
    asks for a different metric type), so wiring code never has to thread
    metric handles around.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help_text: str, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help_text, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.type_name}"
                )
            return metric

    def counter(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames=labelnames)

    def gauge(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames=labelnames)

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labelnames=labelnames, buckets=buckets
        )

    def render(self) -> str:
        """The full exposition page (trailing newline included)."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


_REGISTRY: Optional[MetricsRegistry] = None
_REGISTRY_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The lazily-initialised process-wide registry.

    Servers create their own registries; this shared one exists for ad-hoc
    instrumentation (scripts, notebooks) that wants a single sink without
    owning a server instance.
    """
    global _REGISTRY
    with _REGISTRY_LOCK:
        if _REGISTRY is None:
            _REGISTRY = MetricsRegistry()
        return _REGISTRY
