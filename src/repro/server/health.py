"""Health reporting for the serving layer.

``GET /healthz`` answers from a :class:`HealthMonitor` snapshot: process
liveness (trivially true if the request was answered), uptime, the job
manager's state counts, the catalog's store/row counts and the recommend
cache-hit accounting.  The endpoint is cheap by design — a load balancer or
readiness probe may hit it every few seconds — so the only potentially
non-trivial work is the catalog's signature check, which touches one ``stat``
per backing file.

During graceful shutdown the status flips to ``"shutting-down"`` (and the
HTTP code to 503) so orchestrators stop routing new traffic while in-flight
evaluations drain.
"""

from __future__ import annotations

import threading
import time
from typing import Dict

from repro.server.catalog import StoreCatalog
from repro.server.jobs import JobManager


class HealthMonitor:
    """Aggregates liveness facts about one running server.

    Recommend-cache counters are bumped from concurrent request threads, so
    they live behind a lock; ``+=`` on a bare int would lose increments under
    interleaving.
    """

    def __init__(self, catalog: StoreCatalog, jobs: JobManager) -> None:
        self.catalog = catalog
        self.jobs = jobs
        self.started_at = time.time()
        self.shutting_down = False
        self._lock = threading.Lock()
        self.recommend_hits = 0
        self.recommend_misses = 0

    @property
    def status(self) -> str:
        return "shutting-down" if self.shutting_down else "ok"

    @property
    def recommend_hit_rate(self) -> float:
        hits, misses = self._recommend_counts()
        total = hits + misses
        return hits / total if total else 0.0

    def _recommend_counts(self) -> tuple:
        with self._lock:
            return self.recommend_hits, self.recommend_misses

    def record_recommend(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.recommend_hits += 1
            else:
                self.recommend_misses += 1

    def snapshot(self) -> Dict[str, object]:
        """The ``/healthz`` payload."""
        hits, misses = self._recommend_counts()
        total = hits + misses
        return {
            "status": self.status,
            "uptime_seconds": time.time() - self.started_at,
            "jobs": self.jobs.counts(),
            "evals_in_flight": self.jobs.evals_in_flight(),
            "store": {
                "stores": self.catalog.refresh(),
                "rows": self.catalog.total_rows(refresh=False),
            },
            "recommend": {
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / total if total else 0.0,
            },
        }
