"""Background search jobs for the serving layer.

``POST /jobs`` turns a search request into a :class:`Job`: a daemon thread
driving the existing engine — :func:`~repro.experiments.pareto_front.run_pareto_front`
for multi-objective requests, a scalar
:class:`~repro.core.bayes_opt.BayesianOptimizer` run for single-objective
(accuracy) requests — with the async executor and the sharded evaluation
store underneath, against the server's shared cache directory.  Each absorbed
evaluation is appended to the job's event log (sequence-numbered, so
``GET /jobs/<id>/events`` can stream and resume), and terminal states are
broadcast through the same log.

Cooperative shutdown: every job carries a stop event polled by the engine's
``should_stop`` hook at each absorption boundary.  :meth:`JobManager.shutdown`
sets all of them and joins the threads — in-flight evaluations are drained by
the executor (their rows were already appended by the evaluating process), a
partial result is recorded, and the job ends in state ``stopped``.
"""

from __future__ import annotations

import threading
import time
import traceback
import uuid
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.bayes_opt import BayesianOptimizer
from repro.trace import FlightRecorder, tracing
from repro.core.cache import (
    CachedObjective,
    dataset_fingerprint_fields,
    evaluation_store_for,
    snapshot_store_for,
)
from repro.core.multi_objective import get_objective_spec
from repro.core.objectives import AccuracyDropObjective
from repro.core.weight_sharing import WeightStore
from repro.data import available_datasets, load_dataset
from repro.experiments.config import dataset_kwargs, get_scale, model_kwargs
from repro.experiments.io import pareto_to_dict
from repro.experiments.pareto_front import SearchStopped, _training_config, run_pareto_front
from repro.models import available_models, get_template

#: job states; the last three are terminal
QUEUED, RUNNING, COMPLETED, FAILED, STOPPED = (
    "queued",
    "running",
    "completed",
    "failed",
    "stopped",
)
TERMINAL_STATES = frozenset({COMPLETED, FAILED, STOPPED})

#: events kept per job; older ones are dropped (and counted) so a very long
#: search cannot grow server memory without bound
MAX_EVENTS_PER_JOB = 10_000

#: spans kept in a job's flight-recorder ring; older spans fall off the ring
#: (still mirrored to the trace JSONL next to the evaluation store) so a very
#: long search cannot grow server memory without bound
MAX_TRACE_SPANS_PER_JOB = 16_384


class JobValidationError(ValueError):
    """A job request that cannot be turned into a search (HTTP 400)."""


class Job:
    """One background search: parameters, state machine and event log."""

    def __init__(self, job_id: str, kind: str, params: Dict[str, object]) -> None:
        self.id = job_id
        self.kind = kind
        self.params = params
        self.state = QUEUED
        self.created_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.error: Optional[str] = None
        self.result: Optional[Dict[str, object]] = None
        self.evals_completed = 0
        self.evals_total = int(params["iterations"])
        self.workers = int(params["async_workers"])
        self.stop_event = threading.Event()
        self.events: List[Dict[str, object]] = []
        self.events_dropped = 0
        #: per-job flight recorder; attached by the manager when the job runs
        self.recorder: Optional[FlightRecorder] = None
        self._next_seq = 0
        self._condition = threading.Condition()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @property
    def terminal(self) -> bool:
        # the Condition's RLock is re-entrant, so callers already holding it
        # (events_since, to_dict) can use this property safely
        with self._condition:
            return self.state in TERMINAL_STATES

    @property
    def evals_in_flight(self) -> int:
        """Evaluations currently executing (derived from completion accounting).

        The engine keeps up to ``async_workers`` (at least one) evaluations
        running until the budget is spent, so the in-flight count is the
        remaining budget clamped by the worker count while the job runs.
        """
        with self._condition:
            if self.state != RUNNING:
                return 0
            remaining = max(self.evals_total - self.evals_completed, 0)
        return min(max(self.workers, 1), remaining)

    def note_evaluation(self) -> None:
        """Count one completed evaluation (called from the job thread)."""
        with self._condition:
            self.evals_completed += 1

    def request_stop(self) -> None:
        self.stop_event.set()
        with self._condition:
            self._condition.notify_all()

    # ------------------------------------------------------------------
    def emit(self, event: Dict[str, object]) -> None:
        """Append one sequence-numbered event and wake streaming readers."""
        with self._condition:
            event = {"seq": self._next_seq, "time": time.time(), **event}
            self._next_seq += 1
            self.events.append(event)
            if len(self.events) > MAX_EVENTS_PER_JOB:
                self.events.pop(0)
                self.events_dropped += 1
            self._condition.notify_all()

    def set_state(self, state: str, error: Optional[str] = None) -> None:
        with self._condition:
            self.state = state
            if state == RUNNING:
                self.started_at = time.time()
            if state in TERMINAL_STATES:
                self.finished_at = time.time()
            self.error = error
        event: Dict[str, object] = {"type": "state", "state": state}
        if error is not None:
            event["error"] = error
        self.emit(event)

    def events_since(
        self, since: int, wait: bool = False, timeout: float = 0.5
    ) -> Tuple[List[Dict[str, object]], bool]:
        """Events with ``seq >= since`` plus whether the job is terminal.

        With ``wait`` set and nothing new buffered, blocks up to ``timeout``
        seconds for the next event — the building block of the streaming
        endpoint's poll loop.
        """
        with self._condition:
            def pending() -> List[Dict[str, object]]:
                return [event for event in self.events if event["seq"] >= since]

            events = pending()
            if not events and wait and not self.terminal:
                self._condition.wait(timeout)
                events = pending()
            return events, self.terminal

    # ------------------------------------------------------------------
    def to_dict(self, include_result: bool = True) -> Dict[str, object]:
        # a consistent snapshot: request threads serialise jobs while the job
        # thread mutates them, so read every guarded field under the lock
        with self._condition:
            payload: Dict[str, object] = {
                "id": self.id,
                "kind": self.kind,
                "state": self.state,
                "params": dict(self.params),
                "created_at": self.created_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "evals_completed": self.evals_completed,
                "evals_total": self.evals_total,
                "evals_in_flight": self.evals_in_flight,
                "num_events": self._next_seq,
                "events_dropped": self.events_dropped,
                "error": self.error,
            }
            if include_result:
                payload["result"] = self.result
        return payload


def _normalise_objectives(raw) -> List[str]:
    if raw is None:
        return ["accuracy", "energy"]
    if isinstance(raw, str):
        names = [name.strip() for name in raw.split(",") if name.strip()]
    elif isinstance(raw, (list, tuple)):
        names = [str(name).strip() for name in raw if str(name).strip()]
    else:
        raise JobValidationError(f"objectives must be a list or comma-separated string, got {raw!r}")
    if not names:
        raise JobValidationError("objectives must name at least one objective")
    for name in names:
        try:
            get_objective_spec(name)
        except KeyError as error:
            raise JobValidationError(str(error)) from error
    return names


class JobManager:
    """Creates, tracks and cooperatively shuts down background search jobs."""

    def __init__(
        self,
        cache_dir,
        default_scale: Optional[str] = None,
        default_async_workers: int = 0,
        sharded_cache: bool = True,
        registry=None,
    ) -> None:
        self.cache_dir = str(cache_dir)
        self.default_scale = default_scale
        self.default_async_workers = int(default_async_workers)
        self.sharded_cache = bool(sharded_cache)
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._shutting_down = False
        self._evals_counter = (
            registry.counter(
                "repro_evaluations_completed_total",
                "Search evaluations absorbed by background jobs",
            )
            if registry is not None
            else None
        )

    # ------------------------------------------------------------------
    def validate(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Normalise and validate a job request; raises :class:`JobValidationError`."""
        if not isinstance(payload, dict):
            raise JobValidationError("job request body must be a JSON object")
        dataset = str(payload.get("dataset", "cifar10-dvs"))
        if dataset not in available_datasets():
            raise JobValidationError(
                f"unknown dataset {dataset!r}; available: {available_datasets()}"
            )
        model = str(payload.get("model", "resnet18"))
        if model not in available_models():
            raise JobValidationError(f"unknown model {model!r}; available: {available_models()}")
        objectives = _normalise_objectives(payload.get("objectives"))
        if len(objectives) == 1 and objectives[0] != "accuracy":
            raise JobValidationError(
                "single-objective jobs optimise accuracy; request two or more "
                "objectives (e.g. ['accuracy', 'energy']) to trade off others"
            )
        scale_name = payload.get("scale", self.default_scale)
        try:
            scale = get_scale(scale_name if scale_name is None else str(scale_name))
        except KeyError as error:
            raise JobValidationError(str(error)) from error
        iterations = payload.get("iterations")
        iterations = int(iterations) if iterations is not None else scale.search_iterations
        if iterations < 1:
            raise JobValidationError("iterations must be >= 1")
        energy_budget = payload.get("energy_budget")
        return {
            "dataset": dataset,
            "model": model,
            "objectives": objectives,
            "scale": scale.name,
            "iterations": iterations,
            "seed": int(payload.get("seed", 0)),
            "async_workers": int(payload.get("async_workers", self.default_async_workers)),
            "energy_budget": float(energy_budget) if energy_budget is not None else None,
        }

    def submit(self, payload: Dict[str, object]) -> Job:
        params = self.validate(payload)
        with self._lock:
            if self._shutting_down:
                raise JobValidationError("server is shutting down; not accepting jobs")
            kind = "pareto" if len(params["objectives"]) >= 2 else "search"
            job = Job(f"job-{uuid.uuid4().hex[:8]}", kind, params)
            self._jobs[job.id] = job
        thread = threading.Thread(target=self._run, args=(job,), daemon=True, name=job.id)
        job._thread = thread
        thread.start()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.created_at)

    # ------------------------------------------------------------------
    def running_count(self) -> int:
        return sum(1 for job in self.jobs() if job.state == RUNNING)

    def evals_in_flight(self) -> int:
        return sum(job.evals_in_flight for job in self.jobs())

    def worker_occupancy(self) -> float:
        """Fraction of the running jobs' worker capacity currently busy.

        Capacity counts at least one evaluation slot per running job (serial
        jobs evaluate in the job thread); ``0.0`` with nothing running.
        """
        capacity = in_flight = 0
        for job in self.jobs():
            if job.state == RUNNING:
                capacity += max(job.workers, 1)
                in_flight += job.evals_in_flight
        return in_flight / capacity if capacity else 0.0

    def events_dropped_total(self) -> int:
        """Events dropped from bounded per-job logs, summed over all jobs."""
        total = 0
        for job in self.jobs():
            with job._condition:
                total += job.events_dropped
        return total

    def counts(self) -> Dict[str, int]:
        counts = {state: 0 for state in (QUEUED, RUNNING, COMPLETED, FAILED, STOPPED)}
        for job in self.jobs():
            counts[job.state] += 1
        return counts

    # ------------------------------------------------------------------
    def _progress(self, job: Job, event: Dict[str, object]) -> None:
        job.note_evaluation()
        if self._evals_counter is not None:
            self._evals_counter.inc()
        job.emit(event)

    def _run(self, job: Job) -> None:
        job.set_state(RUNNING)
        # every job is traced into its own bounded flight recorder (thread-local
        # scope: concurrent jobs never see each other's spans), mirrored to a
        # JSONL file next to the evaluation store for post-mortem inspection
        job.recorder = FlightRecorder(
            capacity=MAX_TRACE_SPANS_PER_JOB,
            jsonl_path=Path(self.cache_dir) / "traces" / f"{job.id}.jsonl",
        )
        try:
            with tracing(recorder=job.recorder, trace_id=f"t-{job.id}"):
                if job.kind == "pareto":
                    stopped, result = self._run_pareto(job)
                else:
                    stopped, result = self._run_single_objective(job)
            job.result = result
            job.set_state(STOPPED if stopped else COMPLETED)
        except Exception as error:  # a failing search must not kill the server
            # preserve the full failure, not just str(exc): the traceback is
            # only reachable here, and a FAILED job with a one-line error is
            # undebuggable from the API
            job.emit({"type": "traceback", "traceback": traceback.format_exc()})
            job.set_state(FAILED, error=f"{type(error).__name__}: {error}")
        finally:
            job.recorder.close()  # ring stays readable by /jobs/<id>/trace

    def _run_pareto(self, job: Job) -> Tuple[bool, Dict[str, object]]:
        params = job.params
        result = run_pareto_front(
            scale=get_scale(params["scale"]),
            dataset=params["dataset"],
            model=params["model"],
            objectives=params["objectives"],
            energy_budget=params["energy_budget"],
            iterations=params["iterations"],
            seed=params["seed"],
            cache_dir=self.cache_dir,
            cache_sharded=self.sharded_cache,
            async_workers=params["async_workers"],
            progress=lambda event: self._progress(job, event),
            should_stop=job.stop_event.is_set,
        )
        return result.stopped, pareto_to_dict(result)

    def _run_single_objective(self, job: Job) -> Tuple[bool, Dict[str, object]]:
        """Scalar accuracy search mirroring the pareto harness's wiring."""
        params = job.params
        scale = get_scale(params["scale"])
        seed = params["seed"]
        iterations = params["iterations"]
        splits = load_dataset(params["dataset"], **dataset_kwargs(scale, params["dataset"]))
        input_channels = splits.sample_shape[1] if splits.is_temporal else splits.sample_shape[0]
        template = get_template(
            params["model"],
            **model_kwargs(
                scale, params["model"], input_channels=input_channels, num_classes=splits.num_classes
            ),
        )
        training = _training_config(scale, seed)
        objective = AccuracyDropObjective(
            template=template,
            splits=splits,
            training_config=training,
            weight_store=WeightStore(),
            measure_energy=True,
            build_seed=seed,
        )
        store = evaluation_store_for(
            self.cache_dir,
            ["search", splits.name, template.name],
            sharded=self.sharded_cache,
            seed=seed,
            training=asdict(training),
            **dataset_fingerprint_fields(splits),
        )
        known_keys = set(store.keys())
        initial = min(scale.bo_initial_points, max(1, iterations // 3))
        search_objective = CachedObjective(
            objective,
            store=store,
            snapshots=snapshot_store_for(store, keep_best=max(iterations, 1)),
        )
        optimizer = BayesianOptimizer(
            template.search_space(),
            search_objective,
            initial_points=initial,
            batch_size=1,
            candidate_pool_size=48,
            async_workers=params["async_workers"],
            rng=seed,
        )
        absorbed = 0

        def callback(iteration, history) -> None:
            nonlocal absorbed
            for record in history.records[absorbed:]:
                absorbed += 1
                self._progress(
                    job,
                    {
                        "type": "evaluation",
                        "iteration": int(iteration),
                        "completed": absorbed,
                        "encoding": [int(v) for v in record.spec.encode()],
                        "objective_value": float(record.objective_value),
                        "accuracy": float(record.accuracy),
                        "incumbent": float(history.best().objective_value),
                    },
                )
            if job.stop_event.is_set():
                raise SearchStopped

        stopped = False
        try:
            optimizer.optimize(max(iterations - initial, 0), callback=callback)
        except SearchStopped:
            stopped = True
        history = optimizer.history
        store.reload()
        best = history.best() if len(history) else None
        result: Dict[str, object] = {
            "objective": "accuracy",
            "num_evaluations": len(history),
            "fresh_evaluations": len(set(store.keys()) - known_keys),
            "incumbent_curve": [float(v) for v in history.incumbent_values()],
        }
        if best is not None:
            result["best"] = {
                "encoding": [int(v) for v in best.spec.encode()],
                "objective_value": float(best.objective_value),
                "accuracy": float(best.accuracy),
                "metrics": {str(k): float(v) for k, v in best.metrics.items()},
            }
        return stopped, result

    # ------------------------------------------------------------------
    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Stop accepting jobs, request every running job to stop, join threads.

        Jobs observe the stop request at their next absorption boundary,
        drain in-flight evaluations through the executor's waiting close and
        record a partial result; no completed evaluation's store row is lost.
        ``timeout`` bounds the join per job (None waits indefinitely).
        """
        with self._lock:
            self._shutting_down = True
            jobs = list(self._jobs.values())
        for job in jobs:
            job.request_stop()
        for job in jobs:
            thread = job._thread
            if thread is not None and thread.is_alive():
                thread.join(timeout)
