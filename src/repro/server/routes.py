"""Endpoint handlers and the route table of the serving layer.

Routing is a flat table of ``(method, pattern, handler)`` entries; patterns
use ``{name}`` placeholders for single path segments.  Handlers receive a
:class:`Request` (query/body access plus the owning server's subsystems) and
return a :class:`JSONResponse`, :class:`TextResponse` or — for the event
stream — a :class:`StreamResponse` whose iterator is written out chunk by
chunk as the job progresses.  Raising :class:`HTTPError` maps to a JSON error
body with the given status.

The endpoint catalog (request/response shapes, examples, error semantics) is
documented for operators in ``docs/server.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.experiments.io import pareto_to_dict
from repro.experiments.pareto_front import pareto_front_from_rows

#: budget query parameters accepted by ``/recommend``, mapped to the metrics
#: row key each one constrains (all are upper bounds on minimised metrics)
RECOMMEND_BUDGETS: Dict[str, str] = {
    "energy_budget": "energy_nj",
    "latency_budget": "latency_ms",
    "latency_steps_budget": "latency_steps",
    "macs_budget": "macs",
    "firing_rate_budget": "firing_rate",
}


class HTTPError(Exception):
    """An error response: ``status`` plus a human-readable message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request plus the server state handlers act on."""

    server: object
    method: str
    path: str
    query: Dict[str, List[str]]
    path_params: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Dict[str, object]:
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HTTPError(400, f"request body is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise HTTPError(400, "request body must be a JSON object")
        return payload

    def param(self, name: str, default: Optional[str] = None) -> Optional[str]:
        values = self.query.get(name)
        return values[0] if values else default

    def float_param(self, name: str) -> Optional[float]:
        raw = self.param(name)
        if raw is None:
            return None
        try:
            return float(raw)
        except ValueError as error:
            raise HTTPError(400, f"query parameter {name!r} must be a number, got {raw!r}") from error

    def int_param(self, name: str, default: int) -> int:
        raw = self.param(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError as error:
            raise HTTPError(400, f"query parameter {name!r} must be an integer, got {raw!r}") from error

    def bool_param(self, name: str, default: bool) -> bool:
        raw = self.param(name)
        if raw is None:
            return default
        return raw.lower() not in ("0", "false", "no", "off")


@dataclass
class JSONResponse:
    payload: Dict[str, object]
    status: int = 200


@dataclass
class TextResponse:
    text: str
    status: int = 200
    content_type: str = "text/plain; charset=utf-8"


@dataclass
class StreamResponse:
    """A chunked body produced lazily (the ndjson event stream)."""

    chunks: Iterator[str]
    status: int = 200
    content_type: str = "application/x-ndjson"


# ---------------------------------------------------------------------------
# handlers
# ---------------------------------------------------------------------------

def handle_healthz(request: Request) -> JSONResponse:
    snapshot = request.server.health.snapshot()
    status = 200 if snapshot["status"] == "ok" else 503
    return JSONResponse(snapshot, status=status)


def handle_metrics(request: Request) -> TextResponse:
    return TextResponse(
        request.server.registry.render(),
        content_type="text/plain; version=0.0.4; charset=utf-8",
    )


def handle_submit_job(request: Request) -> JSONResponse:
    from repro.server.jobs import JobValidationError

    try:
        job = request.server.jobs.submit(request.json())
    except JobValidationError as error:
        raise HTTPError(400, str(error)) from error
    return JSONResponse(job.to_dict(include_result=False), status=202)


def handle_list_jobs(request: Request) -> JSONResponse:
    jobs = request.server.jobs.jobs()
    return JSONResponse({"jobs": [job.to_dict(include_result=False) for job in jobs]})


def _get_job(request: Request):
    job = request.server.jobs.get(request.path_params["id"])
    if job is None:
        raise HTTPError(404, f"unknown job {request.path_params['id']!r}")
    return job


def handle_get_job(request: Request) -> JSONResponse:
    return JSONResponse(_get_job(request).to_dict())


def handle_job_events(request: Request) -> StreamResponse:
    """Stream a job's event log as newline-delimited JSON.

    ``?since=N`` resumes from sequence number ``N`` (events are numbered from
    0); ``?follow=0`` returns the currently buffered events and closes
    instead of following the job to a terminal state.  The stream always ends
    once the job is terminal and the log is drained, so a plain
    ``urllib.request.urlopen(...).read()`` on a finished job returns
    immediately.
    """
    job = _get_job(request)
    since = request.int_param("since", 0)
    follow = request.bool_param("follow", True)

    def stream() -> Iterator[str]:
        next_seq = since
        while True:
            events, terminal = job.events_since(next_seq, wait=follow)
            for event in events:
                next_seq = int(event["seq"]) + 1
                yield json.dumps(event, separators=(",", ":")) + "\n"
            if not follow or (terminal and not events):
                return

    return StreamResponse(stream())


def handle_job_trace(request: Request) -> JSONResponse:
    """The job's flight-recorder spans (``?format=chrome`` for chrome://tracing).

    ``?format=summary`` returns the per-phase breakdown / critical path
    computed by :func:`repro.trace.summarize` — the same analysis ``repro
    trace`` renders offline from the trace JSONL.  A job that has not started
    running yet answers with an empty span list, not an error.
    """
    from repro.trace import chrome_trace, summarize

    job = _get_job(request)
    recorder = job.recorder
    spans = recorder.spans() if recorder is not None else []
    fmt = (request.param("format", "spans") or "spans").lower()
    if fmt == "chrome":
        return JSONResponse(chrome_trace(spans))
    if fmt == "summary":
        return JSONResponse({"job_id": job.id, **summarize(spans)})
    if fmt != "spans":
        raise HTTPError(400, f"unknown trace format {fmt!r} (use 'spans', 'summary' or 'chrome')")
    return JSONResponse(
        {
            "job_id": job.id,
            "span_count": len(spans),
            "dropped": recorder.dropped if recorder is not None else 0,
            "jsonl_path": str(recorder.jsonl_path) if recorder is not None else None,
            "spans": spans,
        }
    )


def handle_pareto(request: Request) -> JSONResponse:
    """The current non-dominated front of the merged evaluation store."""
    objectives = [
        name.strip()
        for name in (request.param("objectives", "accuracy,energy") or "").split(",")
        if name.strip()
    ]
    store_filter = request.param("store")
    catalog = request.server.catalog
    catalog.refresh()
    rows = [row for _, row in catalog.iter_rows(store_filter)]
    try:
        result = pareto_front_from_rows(rows, objectives=objectives, source="store")
    except (KeyError, ValueError) as error:
        raise HTTPError(400, str(error)) from error
    payload = pareto_to_dict(result)
    payload["stores"] = catalog.store_names()
    payload["rows_considered"] = result.num_evaluations
    return JSONResponse(payload)


def handle_recommend(request: Request) -> JSONResponse:
    """Best cached architecture under the requested metric budgets.

    Answered entirely from the accumulated evaluation store — no evaluation
    is ever triggered.  A row qualifies when it records every constrained
    metric within budget (plus ``val_accuracy`` to rank by); the winner is
    the highest-accuracy qualifier, ties broken by lower energy.  With no
    qualifying row the response is a 404 whose body explains how many rows
    were considered, so "no architecture fits this budget" is distinguishable
    from "the store is empty".
    """
    budgets: Dict[str, Tuple[str, float]] = {}
    for param, metric in RECOMMEND_BUDGETS.items():
        value = request.float_param(param)
        if value is not None:
            budgets[param] = (metric, value)
    catalog = request.server.catalog
    catalog.refresh()
    store_filter = request.param("store")
    rows_considered = 0
    candidates = 0
    best: Optional[Dict[str, object]] = None
    best_rank: Optional[Tuple[float, float]] = None
    from repro.core.cache import row_metrics

    for store_name, row in catalog.iter_rows(store_filter):
        rows_considered += 1
        metrics = row_metrics(row)
        if "val_accuracy" not in metrics:
            continue
        if any(
            metric not in metrics or metrics[metric] > bound
            for metric, bound in budgets.values()
        ):
            continue
        candidates += 1
        # rank: highest accuracy, then lowest energy (rows without an energy
        # measurement rank behind measured ones at equal accuracy)
        rank = (-metrics["val_accuracy"], metrics.get("energy_nj", float("inf")))
        if best_rank is None or rank < best_rank:
            best_rank = rank
            best = {
                "store": store_name,
                "key": row.get("key"),
                "encoding": [int(v) for v in row.get("encoding", [])],
                "metrics": metrics,
            }
    constraints = {param: bound for param, (_, bound) in budgets.items()}
    hit = best is not None
    request.server.observe_recommend(hit)
    payload: Dict[str, object] = {
        "found": hit,
        "constraints": constraints,
        "rows_considered": rows_considered,
        "candidates": candidates,
    }
    if not hit:
        payload["reason"] = (
            "evaluation store is empty" if rows_considered == 0 else "no cached evaluation satisfies the budgets"
        )
        return JSONResponse(payload, status=404)
    payload["recommendation"] = best
    return JSONResponse(payload)


#: (method, pattern, handler) — patterns match whole paths, ``{name}``
#: captures one segment into ``request.path_params``
ROUTES: List[Tuple[str, str, Callable[[Request], object]]] = [
    ("GET", "/healthz", handle_healthz),
    ("GET", "/metrics", handle_metrics),
    ("POST", "/jobs", handle_submit_job),
    ("GET", "/jobs", handle_list_jobs),
    ("GET", "/jobs/{id}", handle_get_job),
    ("GET", "/jobs/{id}/events", handle_job_events),
    ("GET", "/jobs/{id}/trace", handle_job_trace),
    ("GET", "/pareto", handle_pareto),
    ("GET", "/recommend", handle_recommend),
]


def resolve(method: str, path: str):
    """Match one request; returns ``(pattern, handler, path_params)``.

    Raises :class:`HTTPError` 404 for an unknown path and 405 when the path
    exists under a different method (the distinction matters to clients).
    """
    path_segments = [segment for segment in path.split("/") if segment != ""]
    path_exists = False
    for route_method, pattern, handler in ROUTES:
        pattern_segments = [segment for segment in pattern.split("/") if segment != ""]
        if len(pattern_segments) != len(path_segments):
            continue
        params: Dict[str, str] = {}
        for expected, actual in zip(pattern_segments, path_segments):
            if expected.startswith("{") and expected.endswith("}"):
                params[expected[1:-1]] = actual
            elif expected != actual:
                break
        else:
            path_exists = True
            if route_method == method:
                return pattern, handler, params
    if path_exists:
        raise HTTPError(405, f"method {method} not allowed for {path}")
    raise HTTPError(404, f"no such endpoint: {path}")
