"""Trace analysis and export: summaries, critical path, Chrome trace events.

Consumes the span dicts the flight recorder stores (JSONL file or in-memory
snapshot) and produces:

* :func:`summarize` — per-phase (span-name) time breakdown with self-time,
  the critical path through the longest root span, and the slowest
  ``evaluate`` spans — what ``repro trace`` prints;
* :func:`chrome_trace` — Chrome trace-event JSON (``chrome://tracing`` /
  Perfetto ``X`` complete events), one track per (pid, thread).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union


def load_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read spans from a flight-recorder JSONL file (or a JSON array/object).

    Accepts the three shapes this repo produces: JSONL (one span per line),
    a JSON array of spans, or a JSON object with a ``"spans"`` key (the
    ``GET /jobs/<id>/trace`` response saved to disk).
    """
    text = Path(path).read_text(encoding="utf-8").strip()
    if not text:
        return []
    if text[0] in "[{":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None
        if isinstance(payload, list):
            return payload
        if isinstance(payload, dict) and isinstance(payload.get("spans"), list):
            return payload["spans"]
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(json.loads(line))
    return spans


def _duration_ms(span: Dict[str, Any]) -> float:
    if "duration_ms" in span:
        return float(span["duration_ms"])
    return (float(span.get("end", 0.0)) - float(span.get("start", 0.0))) * 1e3


def _children_index(spans: Sequence[Dict[str, Any]]) -> Dict[Optional[str], List[Dict[str, Any]]]:
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    ids = {span.get("span_id") for span in spans}
    for span in spans:
        parent = span.get("parent_id")
        if parent not in ids:
            parent = None  # roots: no parent, or parent outside this capture
        children.setdefault(parent, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda item: float(item.get("start", 0.0)))
    return children


def critical_path(spans: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The chain of spans dominating wall-clock time.

    Starting from the longest root, repeatedly descend into the longest
    child; each step reports the span and how much of its parent it covers.
    """
    if not spans:
        return []
    children = _children_index(spans)
    roots = children.get(None, [])
    if not roots:
        return []
    node = max(roots, key=_duration_ms)
    path = []
    while node is not None:
        path.append(
            {
                "name": node.get("name", "?"),
                "span_id": node.get("span_id"),
                "duration_ms": _duration_ms(node),
                "pid": node.get("pid"),
            }
        )
        kids = children.get(node.get("span_id"), [])
        node = max(kids, key=_duration_ms) if kids else None
    return path


def summarize(spans: Sequence[Dict[str, Any]], top: int = 5) -> Dict[str, Any]:
    """Aggregate a span list into the ``repro trace`` report payload."""
    children = _children_index(spans)
    phases: Dict[str, Dict[str, float]] = {}
    for span in spans:
        total = _duration_ms(span)
        child_total = sum(_duration_ms(c) for c in children.get(span.get("span_id"), []))
        row = phases.setdefault(
            span.get("name", "?"), {"count": 0, "total_ms": 0.0, "self_ms": 0.0, "max_ms": 0.0}
        )
        row["count"] += 1
        row["total_ms"] += total
        row["self_ms"] += max(total - child_total, 0.0)
        row["max_ms"] = max(row["max_ms"], total)
    phase_rows = [
        {"name": name, **{k: (v if k == "count" else float(v)) for k, v in row.items()}}
        for name, row in phases.items()
    ]
    phase_rows.sort(key=lambda row: row["self_ms"], reverse=True)

    evaluations = [span for span in spans if span.get("name") == "evaluate"]
    evaluations.sort(key=_duration_ms, reverse=True)
    slowest = [
        {
            "duration_ms": _duration_ms(span),
            "pid": span.get("pid"),
            "attrs": dict(span.get("attrs", {})),
            "children": len(children.get(span.get("span_id"), [])),
        }
        for span in evaluations[:top]
    ]

    roots = children.get(None, [])
    wall_ms = 0.0
    if spans:
        start = min(float(s.get("start", 0.0)) for s in spans)
        end = max(float(s.get("end", 0.0)) for s in spans)
        wall_ms = (end - start) * 1e3
    return {
        "span_count": len(spans),
        "trace_ids": sorted({s.get("trace_id") for s in spans if s.get("trace_id")}),
        "processes": sorted({int(s.get("pid", 0)) for s in spans}),
        "wall_ms": wall_ms,
        "root_count": len(roots),
        "phases": phase_rows,
        "critical_path": critical_path(spans),
        "slowest_evaluations": slowest,
        "evaluation_count": len(evaluations),
    }


def format_summary(summary: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`summarize` payload."""
    lines = [
        f"{summary['span_count']} spans, {summary['evaluation_count']} evaluations, "
        f"{len(summary['processes'])} process(es), {summary['wall_ms']:.1f} ms wall"
    ]
    lines.append("")
    lines.append("Per-phase breakdown (self time = phase minus child spans)")
    lines.append(f"{'phase':<28} {'count':>6} {'total ms':>10} {'self ms':>10} {'max ms':>9}")
    for row in summary["phases"]:
        lines.append(
            f"{row['name']:<28} {row['count']:>6d} {row['total_ms']:>10.2f} "
            f"{row['self_ms']:>10.2f} {row['max_ms']:>9.2f}"
        )
    if summary["critical_path"]:
        lines.append("")
        lines.append("Critical path (longest root, descending into the longest child)")
        for depth, step in enumerate(summary["critical_path"]):
            lines.append(f"  {'  ' * depth}{step['name']}  {step['duration_ms']:.2f} ms  (pid {step['pid']})")
    if summary["slowest_evaluations"]:
        lines.append("")
        lines.append("Slowest evaluations")
        for row in summary["slowest_evaluations"]:
            attrs = row["attrs"]
            label = attrs.get("arch", attrs.get("ticket", "?"))
            lines.append(
                f"  {row['duration_ms']:>9.2f} ms  pid {row['pid']}  "
                f"children {row['children']}  {label}"
            )
    return "\n".join(lines)


def chrome_trace(spans: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert spans to Chrome trace-event JSON (complete ``X`` events).

    Timestamps are rebased to the earliest span so the viewer opens at t=0;
    each (pid, thread) pair gets its own track.  Load the result in
    ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    base = min(float(span.get("start", 0.0)) for span in spans)
    threads: Dict[Any, int] = {}
    events = []
    for span in spans:
        pid = int(span.get("pid", 0))
        key = (pid, span.get("thread", "main"))
        tid = threads.setdefault(key, len(threads) + 1)
        args = {k: v for k, v in dict(span.get("attrs", {})).items()}
        args["span_id"] = span.get("span_id")
        if span.get("parent_id"):
            args["parent_id"] = span.get("parent_id")
        events.append(
            {
                "name": span.get("name", "?"),
                "ph": "X",
                "ts": (float(span.get("start", 0.0)) - base) * 1e6,
                "dur": max(
                    (float(span.get("end", 0.0)) - float(span.get("start", 0.0))) * 1e6, 0.0
                ),
                "pid": pid,
                "tid": tid,
                "cat": span.get("trace_id", "trace"),
                "args": args,
            }
        )
    events.sort(key=lambda event: event["ts"])
    for (pid, thread), tid in sorted(threads.items(), key=lambda item: item[1]):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": str(thread)},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
