"""Thread-local structured spans with a disabled-by-default no-op fast path.

The span API is deliberately tiny::

    with span("evaluate", arch=fp) as sp:
        ...
        if sp:
            sp.set(cache_hit=False)

When tracing is disabled (the default), :func:`span` returns a shared
:class:`_NullSpan` singleton whose ``__enter__``/``__exit__``/``set`` are
no-ops and which is *falsy*, so callers can skip attribute computation with
``if sp:``.  The disabled path is one thread-local read plus one shared-object
return — benched in ``benchmarks/bench_substrate.py`` (``tracing_overhead``)
and gated under 2% of an SNN evaluation by ``tools/bench_gate.py``.

Timestamps are ``time.perf_counter()`` readings rebased onto the wall clock
once per process (``_EPOCH``), so spans from different processes on one host
sort on a common axis — which is what lets a worker process's spans stitch
under the parent's trace (see :func:`capture_context` /
:func:`remote_activation`).

Enablement is layered: :func:`configure` flips the process-global default;
:func:`tracing` installs *thread-local* overrides (enabled flag, per-op
profiling flag, destination recorder, trace id) so e.g. two server job
threads each record into their own flight recorder without seeing each
other's spans.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

#: rebases perf_counter readings onto the epoch, once per process: spans from
#: parent and worker processes land on one comparable wall-clock axis while
#: keeping perf_counter resolution
_EPOCH = time.time() - time.perf_counter()

#: process-wide id source; `next` on itertools.count is atomic under the GIL
_IDS = itertools.count(1)


def _now() -> float:
    """Epoch-anchored high-resolution timestamp (seconds)."""
    return _EPOCH + time.perf_counter()


def _new_id(prefix: str = "s") -> str:
    return f"{prefix}{os.getpid()}-{next(_IDS)}"


class _Config:
    """Process-global tracing defaults (thread-local overrides in ``_State``)."""

    __slots__ = ("enabled", "ops", "recorder")

    def __init__(self) -> None:
        self.enabled = False
        self.ops = False
        self.recorder = None


_CONFIG = _Config()


class _State(threading.local):
    """Per-thread span stack plus scoped overrides installed by :func:`tracing`."""

    def __init__(self) -> None:
        self.stack: List["Span"] = []
        self.enabled: Optional[bool] = None
        self.ops: Optional[bool] = None
        self.recorder = None
        self.trace_id: Optional[str] = None
        #: parent span id inherited from another process (see remote_activation)
        self.remote_parent: Optional[str] = None


_STATE = _State()


class _NullSpan:
    """Shared no-op span returned while tracing is disabled.  Falsy, so
    ``if sp: sp.set(...)`` skips attribute computation entirely."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __bool__(self) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Span:
    """One timed, attributed region.  Use only via ``with span(...)``."""

    __slots__ = ("name", "span_id", "parent_id", "trace_id", "start", "end", "attrs")

    def __init__(self, name: str, parent_id: Optional[str], trace_id: str) -> None:
        self.name = name
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.start = 0.0
        self.end = 0.0
        self.attrs: Optional[Dict[str, Any]] = None

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes; later calls overwrite earlier keys."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs.update(attrs)
        return self

    @property
    def duration_ms(self) -> float:
        return (self.end - self.start) * 1e3

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start": self.start,
            "end": self.end,
            "duration_ms": self.duration_ms,
            "pid": os.getpid(),
            "thread": threading.current_thread().name,
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        return payload

    def __bool__(self) -> bool:
        return True

    def __enter__(self) -> "Span":
        _STATE.stack.append(self)
        self.start = _now()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = _now()
        state = _STATE
        if state.stack and state.stack[-1] is self:
            state.stack.pop()
        else:  # unbalanced exit must never corrupt the ambient stack
            try:
                state.stack.remove(self)
            except ValueError:
                pass
        if exc_type is not None:
            self.set(error=exc_type.__name__)
        recorder = state.recorder if state.recorder is not None else _CONFIG.recorder
        if recorder is not None:
            recorder.record(self.to_dict())
        return False


def span(name: str, **attrs: Any):
    """Open a span named ``name`` (use as ``with span("evaluate") as sp:``).

    Returns the shared no-op span while tracing is disabled; otherwise a live
    :class:`Span` parented under the thread's innermost open span (or the
    remote parent installed by :func:`remote_activation` at the stack root).
    """
    state = _STATE
    enabled = state.enabled if state.enabled is not None else _CONFIG.enabled
    if not enabled:
        return _NULL_SPAN
    if state.stack:
        top = state.stack[-1]
        parent_id: Optional[str] = top.span_id
        trace_id = top.trace_id
    else:
        parent_id = state.remote_parent
        if state.trace_id is None:
            state.trace_id = _new_id("t")
        trace_id = state.trace_id
    live = Span(name, parent_id, trace_id)
    if attrs:
        live.attrs = dict(attrs)
    return live


def ops_span(name: str, **attrs: Any):
    """A span gated on the per-op profiling flag *in addition to* tracing.

    Per-op substrate spans (conv2d / matmul / fused neuron step) fire once per
    operator call, so they are opt-in separately (``tracing(ops=True)``) to
    keep ordinary traces small.
    """
    state = _STATE
    ops = state.ops if state.ops is not None else _CONFIG.ops
    if not ops:
        return _NULL_SPAN
    return span(name, **attrs)  # repro-lint: disable=metrics-hygiene (forwarder: the caller's with statement manages the returned span)


def is_enabled() -> bool:
    """Is tracing active for the calling thread?"""
    state = _STATE
    return state.enabled if state.enabled is not None else _CONFIG.enabled


def ops_enabled() -> bool:
    """Is per-op substrate profiling active for the calling thread?"""
    if not is_enabled():
        return False
    state = _STATE
    return bool(state.ops if state.ops is not None else _CONFIG.ops)


def active_recorder():
    """The recorder finished spans currently flow to (``None`` when unset)."""
    state = _STATE
    return state.recorder if state.recorder is not None else _CONFIG.recorder


def configure(
    enabled: Optional[bool] = None,
    ops: Optional[bool] = None,
    recorder: Optional[object] = None,
) -> None:
    """Set process-global tracing defaults (``None`` leaves a field unchanged)."""
    if enabled is not None:
        _CONFIG.enabled = bool(enabled)
    if ops is not None:
        _CONFIG.ops = bool(ops)
    if recorder is not None:
        _CONFIG.recorder = recorder


@contextmanager
def tracing(
    enabled: bool = True,
    ops: Optional[bool] = None,
    recorder: Optional[object] = None,
    trace_id: Optional[str] = None,
) -> Iterator[Optional[object]]:
    """Scope tracing overrides to the calling thread.

    Yields the recorder spans flow to inside the block (``None`` when tracing
    without a destination).  Restores every override on exit, so scopes nest.
    """
    state = _STATE
    saved = (state.enabled, state.ops, state.recorder, state.trace_id)
    state.enabled = bool(enabled)
    if ops is not None:
        state.ops = bool(ops)
    if recorder is not None:
        state.recorder = recorder
    if trace_id is not None:
        state.trace_id = trace_id
    elif enabled and state.trace_id is None:
        state.trace_id = _new_id("t")
    try:
        yield state.recorder if state.recorder is not None else _CONFIG.recorder
    finally:
        state.enabled, state.ops, state.recorder, state.trace_id = saved


# ---------------------------------------------------------------------------
# cross-process propagation
# ---------------------------------------------------------------------------

def capture_context() -> Optional[Dict[str, Any]]:
    """Snapshot the calling thread's trace context as a picklable dict.

    Returns ``None`` while tracing is disabled — the submission paths use
    that to skip wrapping entirely.  The context rides on the payload handed
    to a worker process and is re-activated there by :func:`remote_activation`,
    so the worker's spans stitch under the span open here at capture time.
    """
    state = _STATE
    enabled = state.enabled if state.enabled is not None else _CONFIG.enabled
    if not enabled:
        return None
    if state.stack:
        parent_id: Optional[str] = state.stack[-1].span_id
        trace_id = state.stack[-1].trace_id
    else:
        parent_id = state.remote_parent
        if state.trace_id is None:
            state.trace_id = _new_id("t")
        trace_id = state.trace_id
    ops = state.ops if state.ops is not None else _CONFIG.ops
    return {"trace_id": trace_id, "parent_id": parent_id, "ops": bool(ops)}


@contextmanager
def remote_activation(context: Optional[Dict[str, Any]]) -> Iterator[List[Dict[str, Any]]]:
    """Activate a captured context in a worker and collect the spans it emits.

    Yields a list that holds every span finished inside the block (in
    completion order).  The caller ships that list back to the parent process
    on the result payload; the parent folds it into its own recorder with
    :func:`absorb`.  A ``None`` context yields an empty list and changes
    nothing — tracing stays off.
    """
    if context is None:
        yield []
        return
    from repro.trace.recorder import FlightRecorder  # deferred: recorder imports nothing back

    collector = FlightRecorder(capacity=65536)
    state = _STATE
    saved = (
        state.enabled,
        state.ops,
        state.recorder,
        state.trace_id,
        state.remote_parent,
    )
    state.enabled = True
    state.ops = bool(context.get("ops"))
    state.recorder = collector
    state.trace_id = context.get("trace_id")
    state.remote_parent = context.get("parent_id")
    collected: List[Dict[str, Any]] = []
    try:
        yield collected
    finally:
        (
            state.enabled,
            state.ops,
            state.recorder,
            state.trace_id,
            state.remote_parent,
        ) = saved
        collected.extend(collector.drain())


def absorb(spans: Optional[List[Dict[str, Any]]]) -> None:
    """Fold spans recorded elsewhere (a worker process) into the active recorder."""
    if not spans:
        return
    recorder = active_recorder()
    if recorder is not None:
        recorder.extend(spans)
