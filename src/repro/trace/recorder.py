"""Bounded flight-recorder sink for finished spans.

A :class:`FlightRecorder` keeps the most recent ``capacity`` spans in an
in-memory ring (oldest dropped first, with a dropped-span counter so
truncation is never silent) and can mirror every span to a JSONL file —
one JSON object per line, the same schema :meth:`Span.to_dict` produces —
conventionally written next to the evaluation store
(``<cache_dir>/traces/<job>.jsonl`` for server jobs, the ``--trace`` path
for CLI runs).  ``repro trace`` and ``GET /jobs/<id>/trace`` both read this
format.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union


def _json_default(value: Any) -> Any:
    """Make numpy scalars/arrays and other strays JSONL-serialisable."""
    for attr in ("item",):  # numpy scalars and 0-d arrays
        method = getattr(value, attr, None)
        if callable(method):
            try:
                return method()
            except (TypeError, ValueError):
                break
    if hasattr(value, "tolist"):
        return value.tolist()
    return str(value)


class FlightRecorder:
    """In-memory span ring with an optional JSONL mirror.

    Thread-safe: spans arrive from the traced thread, from worker-result
    absorption, and are snapshotted by HTTP handlers concurrently.
    """

    def __init__(
        self,
        capacity: int = 4096,
        jsonl_path: Optional[Union[str, Path]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=capacity)
        self._capacity = capacity
        self._dropped = 0
        self._path = Path(jsonl_path) if jsonl_path is not None else None
        self._file = None

    # ------------------------------------------------------------------
    def record(self, span: Dict[str, Any]) -> None:
        """Append one finished span (dict form)."""
        with self._lock:
            if len(self._ring) == self._capacity:
                self._dropped += 1
            self._ring.append(span)
            if self._path is not None:
                if self._file is None:
                    self._path.parent.mkdir(parents=True, exist_ok=True)
                    self._file = open(self._path, "a", encoding="utf-8")
                self._file.write(json.dumps(span, default=_json_default) + "\n")
                self._file.flush()

    def extend(self, spans: Iterable[Dict[str, Any]]) -> None:
        """Append many finished spans (e.g. a worker process's collected list)."""
        for span in spans:
            self.record(span)

    # ------------------------------------------------------------------
    def spans(self) -> List[Dict[str, Any]]:
        """Snapshot of the ring, oldest first."""
        with self._lock:
            return list(self._ring)

    def drain(self) -> List[Dict[str, Any]]:
        """Snapshot and clear the ring (dropped counter is kept)."""
        with self._lock:
            out = list(self._ring)
            self._ring.clear()
            return out

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def dropped(self) -> int:
        """Spans evicted from the ring because it was full."""
        with self._lock:
            return self._dropped

    @property
    def jsonl_path(self) -> Optional[Path]:
        return self._path

    def close(self) -> None:
        """Close the JSONL mirror (the ring stays readable)."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
