"""Zero-dependency structured tracing: spans, flight recorder, exports.

Three layers (see ``docs/observability.md`` for the operator guide):

* :mod:`repro.trace.spans` — the ``with span("evaluate"): ...`` API with a
  thread-local stack, a falsy no-op fast path while tracing is disabled, and
  picklable trace-context propagation into worker processes;
* :mod:`repro.trace.recorder` — the bounded in-memory ring + optional JSONL
  flight-recorder sink finished spans flow to;
* :mod:`repro.trace.export` — trace summaries (per-phase breakdown, critical
  path, slowest evaluations) and Chrome trace-event JSON, consumed by the
  ``repro trace`` CLI and ``GET /jobs/<id>/trace``.
"""

from repro.trace.export import (
    chrome_trace,
    critical_path,
    format_summary,
    load_trace,
    summarize,
)
from repro.trace.recorder import FlightRecorder
from repro.trace.spans import (
    Span,
    absorb,
    active_recorder,
    capture_context,
    configure,
    is_enabled,
    ops_enabled,
    ops_span,
    remote_activation,
    span,
    tracing,
)

__all__ = [
    "FlightRecorder",
    "Span",
    "absorb",
    "active_recorder",
    "capture_context",
    "chrome_trace",
    "configure",
    "critical_path",
    "format_summary",
    "is_enabled",
    "load_trace",
    "ops_enabled",
    "ops_span",
    "remote_activation",
    "span",
    "summarize",
    "tracing",
]
