"""Property-based tests of the Pareto-front invariants.

The three contracts the multi-objective engine builds on:

* strict Pareto dominance is a strict partial order (irreflexive, asymmetric,
  transitive);
* front insertion is order-independent — the retained set after any insertion
  sequence is exactly the non-dominated subset of everything offered;
* hypervolume against a fixed reference point is monotone under insertion
  (and exact on hand-computable configurations).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pareto import ParetoFront, dominates, non_dominated_mask

FAST = settings(max_examples=25, deadline=None)

# small-integer coordinates make duplicate/dominated configurations common,
# which is where the bookkeeping can go wrong
vectors = st.lists(
    st.lists(st.integers(0, 5), min_size=2, max_size=3),
    min_size=1,
    max_size=12,
).filter(lambda rows: len({len(row) for row in rows}) == 1)


# ---------------------------------------------------------------------------
# dominance is a strict partial order
# ---------------------------------------------------------------------------


@FAST
@given(v=st.lists(st.integers(-5, 5), min_size=1, max_size=4))
def test_dominance_is_irreflexive(v):
    assert not dominates(v, v)


@FAST
@given(
    a=st.lists(st.integers(-5, 5), min_size=3, max_size=3),
    b=st.lists(st.integers(-5, 5), min_size=3, max_size=3),
)
def test_dominance_is_asymmetric(a, b):
    assert not (dominates(a, b) and dominates(b, a))


@FAST
@given(
    a=st.lists(st.integers(0, 4), min_size=3, max_size=3),
    b=st.lists(st.integers(0, 4), min_size=3, max_size=3),
    c=st.lists(st.integers(0, 4), min_size=3, max_size=3),
)
def test_dominance_is_transitive(a, b, c):
    if dominates(a, b) and dominates(b, c):
        assert dominates(a, c)


def test_dominance_requires_strict_improvement_somewhere():
    assert dominates([1.0, 2.0], [1.0, 3.0])
    assert not dominates([1.0, 3.0], [1.0, 2.0])
    assert not dominates([1.0, 2.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        dominates([1.0], [1.0, 2.0])


# ---------------------------------------------------------------------------
# front insertion: order independence
# ---------------------------------------------------------------------------


def _front_value_set(rows):
    front = ParetoFront()
    for row in rows:
        front.insert(row)
    return {tuple(point.values) for point in front}


@FAST
@given(rows=vectors, seed=st.integers(0, 1000))
def test_front_insertion_is_order_independent(rows, seed):
    shuffled = list(rows)
    np.random.default_rng(seed).shuffle(shuffled)
    assert _front_value_set(rows) == _front_value_set(shuffled)


@FAST
@given(rows=vectors)
def test_front_is_the_non_dominated_subset(rows):
    values = np.asarray(rows, dtype=float)
    expected = {tuple(row) for row in values[non_dominated_mask(values)]}
    assert _front_value_set(rows) == expected


@FAST
@given(rows=vectors)
def test_front_points_are_mutually_non_dominated(rows):
    front = ParetoFront()
    for row in rows:
        front.insert(row)
    for a in front:
        for b in front:
            if a is not b:
                assert not dominates(a.values, b.values)


def test_insert_reports_acceptance_and_keeps_payload():
    front = ParetoFront()
    assert front.insert([1.0, 2.0], payload={"tag": "a"})
    assert not front.insert([2.0, 3.0])  # dominated
    assert not front.insert([1.0, 2.0])  # duplicate
    assert front.insert([0.0, 3.0])
    assert front.insert([0.0, 0.0])  # dominates everything
    assert len(front) == 1
    assert front.points[0].payload is None


# ---------------------------------------------------------------------------
# hypervolume: monotonicity and exactness
# ---------------------------------------------------------------------------


@FAST
@given(rows=vectors)
def test_hypervolume_is_monotone_under_insertion(rows):
    reference = np.full(len(rows[0]), 6.0)
    front = ParetoFront()
    previous = 0.0
    for row in rows:
        front.insert(row)
        current = front.hypervolume(reference)
        assert current >= previous - 1e-12
        previous = current


@FAST
@given(rows=vectors, seed=st.integers(0, 1000))
def test_hypervolume_is_insertion_order_independent(rows, seed):
    reference = np.full(len(rows[0]), 6.0)
    shuffled = list(rows)
    np.random.default_rng(seed).shuffle(shuffled)
    a, b = ParetoFront(), ParetoFront()
    for row in rows:
        a.insert(row)
    for row in shuffled:
        b.insert(row)
    assert a.hypervolume(reference) == pytest.approx(b.hypervolume(reference))


def test_hypervolume_known_values_2d():
    front = ParetoFront()
    front.insert([1.0, 2.0])
    front.insert([0.5, 3.0])
    # staircase: (4-0.5)*(4-3) + (4-1)*(3-2)
    assert front.hypervolume([4.0, 4.0]) == pytest.approx(6.5)
    # a point outside the reference contributes nothing
    front.insert([0.25, 5.0])
    assert front.hypervolume([4.0, 4.0]) == pytest.approx(6.5)


def test_hypervolume_known_values_3d():
    front = ParetoFront()
    front.insert([0.0, 0.0, 0.0])
    assert front.hypervolume([1.0, 1.0, 1.0]) == pytest.approx(1.0)
    # two overlapping unit-ish boxes: union = 2*2*2 + the extra slab of the
    # second box that the first does not cover
    front = ParetoFront()
    front.insert([0.0, 0.0, 1.0])
    front.insert([1.0, 1.0, 0.0])
    # box1 = 2x2x1 (z in [1,2]) plus box2 = 1x1x2; overlap = 1x1x1
    assert front.hypervolume([2.0, 2.0, 2.0]) == pytest.approx(4.0 + 2.0 - 1.0)


@FAST
@given(rows=vectors)
def test_hypervolume_3d_matches_monte_carlo(rows):
    """The recursive slicer agrees with a brute-force grid count in 3-D."""
    values = np.asarray(rows, dtype=float)
    if values.shape[1] != 3:
        values = np.concatenate([values, np.zeros((len(values), 3 - values.shape[1]))], axis=1)
    reference = np.full(3, 6.0)
    front = ParetoFront()
    for row in values:
        front.insert(row)
    # integer coordinates: count dominated unit cells exactly
    grid = np.stack(np.meshgrid(*[np.arange(6)] * 3, indexing="ij"), axis=-1).reshape(-1, 3)
    dominated = np.zeros(len(grid), dtype=bool)
    for point in front:
        dominated |= np.all(grid >= point.values, axis=1)
    assert front.hypervolume(reference) == pytest.approx(float(dominated.sum()))


# ---------------------------------------------------------------------------
# crowding-based truncation
# ---------------------------------------------------------------------------


def test_truncation_keeps_extremes():
    front = ParetoFront()
    points = [[float(i), float(10 - i)] for i in range(11)]
    for point in points:
        front.insert(point)
    removed = front.truncate(4)
    kept = {tuple(point.values) for point in front}
    assert len(front) == 4 and len(removed) == 7
    assert (0.0, 10.0) in kept and (10.0, 0.0) in kept


def test_capacity_bounds_the_front_incrementally():
    front = ParetoFront(capacity=3)
    for i in range(10):
        front.insert([float(i), float(10 - i)])
        assert len(front) <= 3
