"""Tests of the additional neuron models: adaptive-threshold and synaptic LIF."""

import numpy as np
import pytest

from repro.nn import Conv2d, GlobalAvgPool2d, Linear, Sequential
from repro.snn import ALIFNeuron, LeakyIntegrator, SynapticNeuron, TemporalRunner
from repro.tensor import Tensor


class TestALIFNeuron:
    def test_matches_lif_when_adaptation_zero(self):
        from repro.snn import LIFNeuron

        alif = ALIFNeuron(beta=0.9, adaptation=0.0)
        lif = LIFNeuron(beta=0.9)
        alif.reset_state()
        lif.reset_state()
        rng = np.random.default_rng(0)
        for _ in range(6):
            x = Tensor(rng.random((1, 4)) * 1.5)
            np.testing.assert_allclose(alif(x).data, lif(x).data)

    def test_adaptation_reduces_firing_under_constant_drive(self):
        constant = Tensor(np.full((1, 8), 1.2))
        plain = ALIFNeuron(beta=1.0, adaptation=0.0, reset_mechanism="subtract")
        adaptive = ALIFNeuron(beta=1.0, adaptation=1.0, adaptation_decay=0.95, reset_mechanism="subtract")
        for neuron in (plain, adaptive):
            neuron.record_spikes = True
            neuron.reset_state()
            for _ in range(12):
                neuron(constant)
        assert adaptive.firing_rate() <= plain.firing_rate()

    def test_reset_clears_adaptation(self):
        neuron = ALIFNeuron(adaptation=0.5)
        neuron(Tensor(np.array([2.0])))
        neuron(Tensor(np.array([2.0])))
        neuron.reset_state()
        assert neuron._adaptive_component is None and neuron.membrane is None

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ALIFNeuron(beta=0.0)
        with pytest.raises(ValueError):
            ALIFNeuron(adaptation=-0.1)
        with pytest.raises(ValueError):
            ALIFNeuron(adaptation_decay=1.0)

    def test_gradients_flow(self):
        neuron = ALIFNeuron(beta=0.9, adaptation=0.3)
        neuron.reset_state()
        x = Tensor(np.array([0.8, 1.4]), requires_grad=True)
        neuron(x)
        out = neuron(Tensor(np.array([0.8, 1.4])))
        out.sum().backward()
        assert x.grad is not None


class TestSynapticNeuron:
    def test_current_low_pass_filters_input(self):
        neuron = SynapticNeuron(alpha=0.5, beta=1.0, threshold=100.0)
        neuron.reset_state()
        neuron(Tensor(np.array([1.0])))
        neuron(Tensor(np.array([0.0])))
        # current after two steps: 1.0 then 0.5; membrane integrates 1.0 + 0.5
        assert neuron.current.data[0] == pytest.approx(0.5)
        assert neuron.membrane.data[0] == pytest.approx(1.5)

    def test_spikes_eventually_under_weak_drive(self):
        neuron = SynapticNeuron(alpha=0.9, beta=0.95, threshold=1.0)
        neuron.reset_state()
        fired = False
        for _ in range(20):
            fired = fired or bool(neuron(Tensor(np.array([0.3]))).data[0])
        assert fired

    def test_reset_and_detach(self):
        neuron = SynapticNeuron()
        x = Tensor(np.array([2.0]), requires_grad=True)
        neuron(x)
        neuron.detach_state()
        assert not neuron.current.requires_grad and not neuron.membrane.requires_grad
        neuron.reset_state()
        assert neuron.current is None and neuron.membrane is None

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SynapticNeuron(alpha=0.0)
        with pytest.raises(ValueError):
            SynapticNeuron(beta=1.5)

    def test_trains_inside_a_network(self, two_class_splits):
        rng = np.random.default_rng(0)
        model = Sequential(
            Conv2d(1, 4, 3, padding=1, rng=rng),
            SynapticNeuron(alpha=0.7, beta=0.9),
            GlobalAvgPool2d(),
            Linear(4, 2, rng=rng),
            LeakyIntegrator(beta=0.9),
        )
        from repro.nn import Adam, CrossEntropyLoss
        from repro.nn.losses import accuracy

        runner = TemporalRunner(model, num_steps=4)
        loss_fn = CrossEntropyLoss()
        optimizer = Adam(model.parameters(), lr=0.05)
        inputs, labels = two_class_splits.train[np.arange(len(two_class_splits.train))]
        for _ in range(10):
            optimizer.zero_grad()
            loss = loss_fn(runner(inputs), labels)
            loss.backward()
            optimizer.step()
        assert accuracy(runner(inputs), labels) >= 0.7
