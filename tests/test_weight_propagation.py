"""Weight-sharing state must survive cache hits and parallel workers.

The paper's search is only cheap because candidates inherit shared weights, so
two propagation paths are load-bearing and covered here:

* **cache hits** — a :class:`PersistentEvaluationStore` hit replays the
  candidate's weight snapshot into the run's :class:`WeightStore`, so a
  fully-cached run accumulates the same shared weights (and the final
  fine-tune starts from the same warm state) as the run that originally paid
  for the evaluations;
* **parallel workers** — weight updates are result-carried and merged by the
  optimizer in the parent process, so a ``workers=2`` search accumulates the
  same store contents as the equivalent sequential one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bayes_opt import BayesianOptimizer
from repro.core.cache import (
    CachedObjective,
    PersistentEvaluationStore,
    snapshot_store_for,
)
from repro.core.objectives import (
    AccuracyDropObjective,
    EnergyAwareObjective,
    SyntheticWeightObjective,
    resolve_weight_context,
)
from repro.core.search_space import BlockSearchInfo, SearchSpace
from repro.core.snapshots import WeightSnapshotStore, state_digest
from repro.core.weight_sharing import WeightStore, WeightUpdate
from repro.training.parallel import parallel_map
from repro.training.snn_trainer import SNNTrainingConfig


def make_space(depth: int = 4) -> SearchSpace:
    return SearchSpace([BlockSearchInfo(depth=depth, name="block")], name="wp-test")


def store_state(store: WeightStore) -> dict:
    return store.state_dict()


def assert_stores_equal(first: WeightStore, second: WeightStore) -> None:
    state_a, state_b = store_state(first), store_state(second)
    assert sorted(state_a) == sorted(state_b)
    for key in state_a:
        np.testing.assert_allclose(state_a[key], state_b[key], err_msg=key)


# ----------------------------------------------------------------------
# module-level functions: picklable under any multiprocessing start method
# ----------------------------------------------------------------------
def _raise_value_error(item):
    raise ValueError(f"objective failed on {item}")


def _raise_attribute_error(item):
    raise AttributeError("raised inside the objective, not by pickling")


def _identity(item):
    return item


class TestWeightSnapshotStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = WeightSnapshotStore(tmp_path / "snaps")
        state = {"layer.weight": np.arange(6, dtype=np.float64).reshape(2, 3), "buffer::bn.mean": np.zeros(3)}
        digest = store.put(state, score=0.5)
        assert digest in store
        loaded = store.get(digest)
        assert sorted(loaded) == sorted(state)
        for key in state:
            np.testing.assert_array_equal(loaded[key], state[key])

    def test_content_addressing_deduplicates(self, tmp_path):
        store = WeightSnapshotStore(tmp_path)
        state = {"w": np.ones((3, 3))}
        first = store.put(state, score=0.1)
        second = store.put({"w": np.ones((3, 3))}, score=0.7)
        assert first == second
        assert len(store) == 1
        assert len(list(tmp_path.glob("*.npz"))) == 1

    def test_digest_sensitive_to_content_and_keys(self):
        base = {"w": np.ones(4)}
        assert state_digest(base) != state_digest({"w": np.ones(4) * 2})
        assert state_digest(base) != state_digest({"v": np.ones(4)})

    def test_missing_snapshot_returns_none(self, tmp_path):
        store = WeightSnapshotStore(tmp_path)
        assert store.get("deadbeef00000000") is None

    def test_eviction_keeps_best_k(self, tmp_path):
        store = WeightSnapshotStore(tmp_path, keep_best=2)
        digests = [store.put({"w": np.full(3, float(i))}, score=float(i)) for i in range(4)]
        assert len(store) == 2
        # the two highest-scoring snapshots survive
        assert store.get(digests[3]) is not None
        assert store.get(digests[2]) is not None
        assert store.get(digests[0]) is None
        assert store.evictions == 2

    def test_store_survives_reopen(self, tmp_path):
        store = WeightSnapshotStore(tmp_path)
        digest = store.put({"w": np.ones(2)}, score=0.9)
        reopened = WeightSnapshotStore(tmp_path)
        assert digest in reopened
        np.testing.assert_array_equal(reopened.get(digest)["w"], np.ones(2))

    def test_eviction_sees_concurrent_writers(self, tmp_path):
        """Metadata is per-snapshot (no shared index), so snapshots written
        by another store instance — e.g. a worker-pool child — are visible
        to this instance's accounting and eviction."""
        writer_a = WeightSnapshotStore(tmp_path, keep_best=2)
        writer_b = WeightSnapshotStore(tmp_path, keep_best=2)
        writer_a.put({"w": np.full(3, 1.0)}, score=0.1)
        writer_b.put({"w": np.full(3, 2.0)}, score=0.2)
        assert len(writer_a) == 2
        writer_a.put({"w": np.full(3, 3.0)}, score=0.3)
        assert len(writer_a) == 2  # b's snapshot was rankable and evictable
        assert writer_a.total_bytes() > 0


class TestWeightStoreCopySemantics:
    def test_constructor_copies_arrays(self):
        raw = {"w": np.zeros(3)}
        store = WeightStore(raw)
        raw["w"] += 5.0
        np.testing.assert_array_equal(store.get("w"), np.zeros(3))

    def test_update_from_state_copies(self):
        state = {"w": np.zeros(3)}
        store = WeightStore()
        store.update_from_state(state)
        state["w"] += 1.0
        np.testing.assert_array_equal(store.get("w"), np.zeros(3))

    def test_merge_from_state_copies(self):
        state = {"w": np.zeros(3)}
        store = WeightStore()
        store.merge_from_state(state)
        state["w"] += 1.0
        np.testing.assert_array_equal(store.get("w"), np.zeros(3))

    def test_update_from_model_is_isolated_from_later_training(self, single_block_template):
        """In-place training of the source model must not mutate the snapshot."""
        model = single_block_template.build(
            single_block_template.default_architecture(), spiking=True, rng=0
        )
        store = WeightStore.from_model(model)
        before = {key: np.array(store.get(key)) for key in store.keys()}
        for _, param in model.named_parameters():
            param.data[...] = param.data + 1.0  # simulate an optimizer step
        for key, value in before.items():
            np.testing.assert_array_equal(store.get(key), value, err_msg=key)

    def test_weight_update_apply_is_idempotent(self):
        store = WeightStore()
        update = WeightUpdate(state={"w": np.ones(3)}, score=0.8)
        assert update.apply(store) is True
        snapshot = store_state(store)
        assert update.apply(store) is False  # same score: only_if_better rejects
        for key, value in snapshot.items():
            np.testing.assert_array_equal(store.get(key), value)


class TestParallelMapErrorHandling:
    def test_objective_value_error_propagates_with_workers(self):
        with pytest.raises(ValueError, match="objective failed"):
            parallel_map(_raise_value_error, [1, 2], workers=2)

    def test_objective_attribute_error_propagates_with_workers(self):
        """The old sandbox fallback swallowed AttributeError and silently
        re-ran the batch sequentially — masking the bug and doubling cost."""
        with pytest.raises(AttributeError, match="inside the objective"):
            parallel_map(_raise_attribute_error, [1, 2], workers=2)

    def test_objective_errors_propagate_sequentially(self):
        with pytest.raises(ValueError):
            parallel_map(_raise_value_error, [1, 2], workers=1)

    def test_unpicklable_workload_falls_back_to_sequential(self):
        assert parallel_map(lambda x: x + 1, [1, 2, 3], workers=4) == [2, 3, 4]

    def test_picklable_workload_preserves_order(self):
        assert parallel_map(_identity, list(range(6)), workers=2) == list(range(6))

    def test_invalid_start_method_raises(self, monkeypatch):
        """A misconfigured REPRO_MP_START_METHOD must fail loudly, not
        silently degrade a workers>1 run to sequential execution."""
        from repro.training.parallel import START_METHOD_ENV

        monkeypatch.setenv(START_METHOD_ENV, "not-a-start-method")
        with pytest.raises(ValueError):
            parallel_map(_identity, [1, 2], workers=2)


class TestResultCarriedUpdates:
    def test_direct_call_still_updates_store(self):
        objective = SyntheticWeightObjective(weight_store=WeightStore())
        spec = make_space().sample(rng=0)
        result = objective(spec)
        assert result.weight_update is not None
        assert not objective.weight_store.is_empty

    def test_deferred_call_leaves_store_untouched(self):
        objective = SyntheticWeightObjective(weight_store=WeightStore())
        objective.defer_updates = True
        result = objective(make_space().sample(rng=0))
        assert objective.weight_store.is_empty
        result.weight_update.apply(objective.weight_store)
        assert not objective.weight_store.is_empty

    def test_resolve_weight_context_walks_wrappers(self, single_block_template, tiny_dvs_splits):
        store = WeightStore()
        base = AccuracyDropObjective(
            template=single_block_template,
            splits=tiny_dvs_splits,
            training_config=SNNTrainingConfig(epochs=1, batch_size=8, num_steps=3),
            weight_store=store,
            measure_firing_rate=False,
        )
        wrapped = CachedObjective(EnergyAwareObjective(base, firing_rate_weight=0.1))
        found_base, found_store = resolve_weight_context(wrapped)
        assert found_base is base and found_store is store

    def test_resolve_weight_context_opaque_callable(self):
        assert resolve_weight_context(lambda spec: None) == (None, None)

    def test_workers2_matches_workers1_store_accumulation(self):
        """The acceptance check: worker count must not change what the shared
        store accumulates (with side-effecting updates, a workers=2 run lost
        every update to the child processes)."""
        space = make_space()

        def run(workers: int) -> tuple:
            objective = SyntheticWeightObjective(weight_store=WeightStore())
            optimizer = BayesianOptimizer(
                space,
                objective,
                initial_points=4,
                batch_size=3,
                candidate_pool_size=12,
                workers=workers,
                rng=11,
            )
            history = optimizer.optimize(2)
            assert optimizer.weight_store is objective.weight_store
            return objective.weight_store, history

        store_seq, history_seq = run(workers=1)
        store_par, history_par = run(workers=2)
        assert not store_seq.is_empty
        assert_stores_equal(store_seq, store_par)
        values_seq = [record.objective_value for record in history_seq]
        values_par = [record.objective_value for record in history_par]
        assert values_par == pytest.approx(values_seq)


class TestSnapshotReplayThroughCache:
    def test_store_hit_replays_into_weight_store(self, tmp_path):
        space = make_space()
        spec = space.sample(rng=3)
        evaluations = PersistentEvaluationStore(tmp_path)
        snapshots = snapshot_store_for(evaluations)

        warm = SyntheticWeightObjective(weight_store=WeightStore())
        CachedObjective(warm, store=evaluations, snapshots=snapshots)(spec)
        assert not warm.weight_store.is_empty

        # a fresh process-equivalent: empty weight store, objective must not run
        cold = SyntheticWeightObjective(weight_store=WeightStore())
        cached = CachedObjective(cold, store=evaluations, snapshots=snapshots)
        result = cached(spec)
        assert cold.num_evaluations == 0
        assert result.weight_update is not None
        assert_stores_equal(warm.weight_store, cold.weight_store)

    def test_fully_cached_search_matches_uncached_weight_store(self, tmp_path):
        """Adapter-style acceptance check: a warm-store re-run restores the
        exact WeightStore contents of the original run, so the final
        fine-tune starts from the same warm weights."""
        space = make_space()

        def run(tag: str):
            objective = SyntheticWeightObjective(weight_store=WeightStore())
            evaluations = PersistentEvaluationStore(tmp_path)
            cached = CachedObjective(
                objective, store=evaluations, snapshots=snapshot_store_for(evaluations)
            )
            optimizer = BayesianOptimizer(
                space, cached, initial_points=3, batch_size=2, candidate_pool_size=10, rng=21
            )
            optimizer.optimize(2)
            return objective

        first = run("cold")
        assert first.num_evaluations > 0
        second = run("warm")
        assert second.num_evaluations == 0  # everything answered from disk
        assert_stores_equal(first.weight_store, second.weight_store)

    def test_fully_cached_training_run_matches_uncached(
        self, tmp_path, single_block_template, tiny_dvs_splits
    ):
        """Same check through the real training objective (slow path, tiny)."""
        space = single_block_template.search_space()

        def run():
            seed_model = single_block_template.build(
                single_block_template.default_architecture(), spiking=True, rng=0
            )
            store = WeightStore.from_model(seed_model)
            objective = AccuracyDropObjective(
                template=single_block_template,
                splits=tiny_dvs_splits,
                training_config=SNNTrainingConfig(epochs=1, batch_size=8, num_steps=3, seed=0),
                weight_store=store,
                measure_firing_rate=False,
            )
            evaluations = PersistentEvaluationStore(tmp_path)
            cached = CachedObjective(
                objective, store=evaluations, snapshots=snapshot_store_for(evaluations)
            )
            optimizer = BayesianOptimizer(
                space, cached, initial_points=2, batch_size=1, candidate_pool_size=6, rng=5
            )
            optimizer.optimize(1)
            return objective

        first = run()
        assert first.num_evaluations == 3
        second = run()
        assert second.num_evaluations == 0
        assert_stores_equal(first.weight_store, second.weight_store)

    def test_multi_fidelity_hit_replays_snapshot(
        self, tmp_path, single_block_template, tiny_dvs_splits
    ):
        from repro.core.multi_fidelity import MultiFidelityObjective

        def make(store_dir):
            evaluations = PersistentEvaluationStore(store_dir)
            base = AccuracyDropObjective(
                template=single_block_template,
                splits=tiny_dvs_splits,
                training_config=SNNTrainingConfig(epochs=1, batch_size=8, num_steps=3, seed=0),
                weight_store=WeightStore(),
                measure_firing_rate=False,
            )
            return base, MultiFidelityObjective(
                base, store=evaluations, snapshots=snapshot_store_for(evaluations)
            )

        spec = single_block_template.search_space().default_spec()
        warm_base, warm = make(tmp_path)
        warm.evaluate(spec, epochs=1)
        assert not warm_base.weight_store.is_empty

        cold_base, cold = make(tmp_path)
        result = cold.evaluate(spec, epochs=1)
        assert cold_base.num_evaluations == 0
        assert result.weight_update is not None
        assert_stores_equal(warm_base.weight_store, cold_base.weight_store)


class TestAdapterFallbackConsistency:
    def test_vanilla_fallback_resets_validation_accuracy(
        self, single_block_template, tiny_dvs_splits, monkeypatch
    ):
        from repro.core.adapter import AdaptationConfig, SNNAdapter

        config = AdaptationConfig(
            snn_training=SNNTrainingConfig(epochs=1, batch_size=8, num_steps=3),
            candidate_finetune_epochs=1,
            final_finetune_epochs=1,
            bo_iterations=1,
            bo_initial_points=2,
            bo_candidate_pool=4,
        )
        adapter = SNNAdapter(single_block_template, tiny_dvs_splits, config)
        original = adapter.train_vanilla_snn

        def unbeatable_vanilla():
            model, _test, _val, rate = original()
            return model, 0.99, 0.97, rate

        monkeypatch.setattr(adapter, "train_vanilla_snn", unbeatable_vanilla)
        result = adapter.run()
        # the fallback must report the vanilla model consistently across
        # every column, including validation accuracy
        assert result.optimized_accuracy == pytest.approx(0.99)
        assert result.optimized_val_accuracy == pytest.approx(0.97)
        assert result.optimized_firing_rate == pytest.approx(result.snn_firing_rate)
        np.testing.assert_array_equal(
            result.best_spec.encode(), result.default_spec.encode()
        )
