"""Tests of the experiment harness: scales, reporting, and result containers."""

import os

import numpy as np
import pytest

from repro.core.adjacency import BlockAdjacency
from repro.core.bayes_opt import OptimizationHistory, OptimizationRecord
from repro.core.search_space import ArchitectureSpec
from repro.experiments import (
    ExperimentScale,
    Figure1Point,
    Figure1Result,
    Figure3Result,
    SearchCurve,
    Table1Result,
    Table1Row,
    format_figure1,
    format_figure3,
    format_series,
    format_table,
    format_table1,
    get_scale,
)
from repro.experiments.config import DEFAULT, PAPER, SMOKE, dataset_kwargs, model_kwargs
from repro.experiments.figure1 import static_splits, temporal_to_static
from repro.data.loaders import ArrayDataset


class TestScales:
    def test_get_scale_by_name(self):
        assert get_scale("smoke") is SMOKE
        assert get_scale("default") is DEFAULT
        assert get_scale("paper") is PAPER

    def test_env_variable_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert get_scale() is SMOKE

    def test_unknown_scale_raises(self):
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_scales_are_ordered_in_budget(self):
        assert SMOKE.num_samples_dvs < DEFAULT.num_samples_dvs < PAPER.num_samples_dvs
        assert SMOKE.snn_epochs <= DEFAULT.snn_epochs <= PAPER.snn_epochs
        assert SMOKE.bo_iterations <= DEFAULT.bo_iterations <= PAPER.bo_iterations

    def test_with_overrides(self):
        scale = SMOKE.with_overrides(num_steps=9)
        assert scale.num_steps == 9 and scale.name == "smoke"

    def test_dataset_kwargs_by_dataset(self):
        static = dataset_kwargs(SMOKE, "cifar10")
        assert "num_steps" not in static and static["num_samples"] == SMOKE.num_samples_static
        dvs = dataset_kwargs(SMOKE, "cifar10-dvs")
        assert dvs["num_steps"] == SMOKE.num_steps
        gesture = dataset_kwargs(SMOKE, "dvs128-gesture")
        assert gesture["num_samples"] == SMOKE.num_samples_gesture

    def test_model_kwargs_by_model(self):
        single = model_kwargs(SMOKE, "single_block", input_channels=2, num_classes=10)
        assert single["channels"] == SMOKE.single_block_channels
        resnet = model_kwargs(SMOKE, "resnet18", input_channels=2, num_classes=10)
        assert tuple(resnet["stage_channels"]) == tuple(SMOKE.stage_channels)


class TestTemporalToStatic:
    def test_collapses_time_axis(self, tiny_dvs_splits):
        static = temporal_to_static(tiny_dvs_splits.train)
        assert static.inputs.shape == (
            len(tiny_dvs_splits.train),
            *tiny_dvs_splits.sample_shape[1:],
        )
        np.testing.assert_allclose(static.inputs, tiny_dvs_splits.train.inputs.mean(axis=1))

    def test_static_input_passthrough(self, tiny_static_splits):
        assert temporal_to_static(tiny_static_splits.train) is tiny_static_splits.train

    def test_static_splits_wrapper(self, tiny_dvs_splits):
        static = static_splits(tiny_dvs_splits)
        assert not static.is_temporal
        assert static.num_classes == tiny_dvs_splits.num_classes


class TestResultContainers:
    def _figure1(self):
        result = Figure1Result(connection_type="asc", dataset_name="toy")
        for n in range(3):
            result.points.append(
                Figure1Point("asc", n, ann_accuracy=0.6, snn_accuracy=0.4 + 0.05 * n, firing_rate=0.1 + 0.02 * n, macs_per_step=1000.0)
            )
        return result

    def test_figure1_accessors(self):
        result = self._figure1()
        assert result.n_skips() == [0, 1, 2]
        assert result.snn_accuracies() == [0.4, 0.45, 0.5]
        assert result.firing_rates()[0] == pytest.approx(0.1)
        assert result.points[0].accuracy_gap == pytest.approx(0.2)

    def test_search_curve_statistics(self):
        curve = SearchCurve(method="bo", runs=[[0.1, 0.2, 0.3], [0.2, 0.2, 0.4]])
        np.testing.assert_allclose(curve.mean(), [0.15, 0.2, 0.35])
        assert curve.final_mean() == pytest.approx(0.35)
        assert curve.std().shape == (3,)
        assert curve.auc() > 0

    def test_search_curve_handles_unequal_lengths(self):
        curve = SearchCurve(method="bo", runs=[[0.1, 0.2], [0.3]])
        assert curve.max_length() == 2
        np.testing.assert_allclose(curve.mean(), [0.2, 0.25])

    def test_figure3_result_comparison(self):
        result = Figure3Result(dataset_name="toy", model_name="resnet18")
        result.bo_curve.runs.append([0.2, 0.5])
        result.rs_curve.runs.append([0.2, 0.4])
        assert result.bo_beats_rs()

    def test_table1_averages(self):
        table = Table1Result()
        table.rows.append(Table1Row("d1", "m1", 0.9, 0.5, 0.7, 0.1, 0.15, 0.2))
        table.rows.append(Table1Row("d1", "m2", None, 0.4, 0.5, 0.1, 0.12, 0.1))
        table.rows.append(Table1Row("d2", "m1", None, 0.6, 0.9, 0.1, 0.2, 0.3))
        assert table.average_improvement("d1") == pytest.approx(0.15)
        assert table.average_improvement() == pytest.approx(0.2)
        assert table.datasets() == ["d1", "d2"]


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbbb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all("|" in line for line in lines[1:] if "-+-" not in line)

    def test_format_figure1_contains_rows(self):
        result = Figure1Result(connection_type="dsc", dataset_name="toy")
        result.points.append(Figure1Point("dsc", 0, 0.5, 0.4, 0.1, 123.0))
        text = format_figure1(result)
        assert "Figure 1 (c)" in text and "123" in text

    def test_format_table1_handles_missing_ann(self):
        table = Table1Result()
        table.rows.append(Table1Row("cifar10-dvs", "resnet18", None, 0.4, 0.5, 0.1, 0.12, 0.1))
        text = format_table1(table)
        assert "-" in text and "resnet18" in text and "average improvement" in text

    def test_format_series_with_and_without_std(self):
        assert "±" in format_series("x", [0.1], [0.01])
        assert "±" not in format_series("x", [0.1])

    def test_format_figure3(self):
        result = Figure3Result(dataset_name="toy", model_name="m")
        result.bo_curve.runs.append([0.1, 0.3])
        result.rs_curve.runs.append([0.1, 0.2])
        text = format_figure3(result)
        assert "Our HPO" in text and "random search" in text and "final incumbent" in text
