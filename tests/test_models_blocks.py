"""Tests of DAG skip-blocks: wiring semantics, DSC/ASC behaviour, spiking variants."""

import numpy as np
import pytest

from repro.core.adjacency import ASC, DSC, NO_CONNECTION, BlockAdjacency
from repro.models.blocks import (
    BlockSpec,
    ClassifierHead,
    DAGBlock,
    LayerSpec,
    NeuronConfig,
    Stem,
    TransitionLayer,
)
from repro.nn import ReLU
from repro.snn import LIFNeuron, LeakyIntegrator, TemporalRunner, reset_states
from repro.tensor import Tensor


def _conv_block_spec(depth=4, channels=6, in_channels=3):
    return BlockSpec(
        in_channels=in_channels,
        layers=[LayerSpec("conv3x3", channels) for _ in range(depth)],
        name="test-block",
    )


class TestLayerSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            LayerSpec("conv5x5", 8)

    def test_invalid_channels_rejected(self):
        with pytest.raises(ValueError):
            LayerSpec("conv3x3", 0)

    def test_depthwise_forbids_dsc_automatically(self):
        spec = LayerSpec("dwconv3x3", 8, allow_dsc_input=True)
        assert not spec.allow_dsc_input


class TestBlockSpec:
    def test_node_channels(self):
        spec = _conv_block_spec(depth=3, channels=6, in_channels=2)
        assert spec.node_channels() == [2, 6, 6, 6]
        assert spec.depth == 3
        assert spec.out_channels == 6

    def test_search_info_restricts_depthwise_destinations(self):
        spec = BlockSpec(
            in_channels=4,
            layers=[LayerSpec("conv1x1", 8), LayerSpec("dwconv3x3", 8), LayerSpec("conv1x1", 4)],
        )
        info = spec.search_info()
        # destination node 2 is the depthwise layer -> DSC not allowed there
        assert info.allowed_at((0, 2)) == (NO_CONNECTION, ASC)
        assert info.allowed_at((0, 3)) == (NO_CONNECTION, DSC, ASC)

    def test_validate_adjacency_rejects_dsc_into_depthwise(self):
        spec = BlockSpec(
            in_channels=4,
            layers=[LayerSpec("conv1x1", 8), LayerSpec("dwconv3x3", 8), LayerSpec("conv1x1", 4)],
        )
        bad = BlockAdjacency(3).with_connection(0, 2, DSC)
        with pytest.raises(ValueError):
            spec.validate_adjacency(bad)
        ok = BlockAdjacency(3).with_connection(0, 2, ASC)
        spec.validate_adjacency(ok)  # does not raise

    def test_validate_adjacency_depth_mismatch(self):
        with pytest.raises(ValueError):
            _conv_block_spec(depth=3).validate_adjacency(BlockAdjacency(4))


class TestDAGBlockConstruction:
    def test_no_skip_input_channels(self):
        block = DAGBlock(_conv_block_spec(depth=3, channels=6, in_channels=2), rng=0)
        assert block.layer_input_channels() == [2, 6, 6]

    def test_dsc_grows_destination_input(self):
        adjacency = BlockAdjacency(3).with_connection(0, 3, DSC).with_connection(1, 3, DSC)
        block = DAGBlock(_conv_block_spec(depth=3, channels=6, in_channels=2), adjacency, rng=0)
        # layer 2 receives sequential 6 + DSC(block input 2) + DSC(layer0 output 6)
        assert block.layer_input_channels() == [2, 6, 14]

    def test_asc_does_not_grow_input(self):
        adjacency = BlockAdjacency(3).with_connection(0, 3, ASC).with_connection(1, 3, ASC)
        block = DAGBlock(_conv_block_spec(depth=3, channels=6, in_channels=2), adjacency, rng=0)
        assert block.layer_input_channels() == [2, 6, 6]

    def test_asc_channel_mismatch_gets_projection(self):
        adjacency = BlockAdjacency(3).with_connection(0, 2, ASC)  # block input (2ch) into layer 1 (6ch seq)
        block = DAGBlock(_conv_block_spec(depth=3, channels=6, in_channels=2), adjacency, rng=0)
        assert len(block.projections) == 1
        assert block.projections[0].in_channels == 2 and block.projections[0].out_channels == 6

    def test_asc_matched_channels_needs_no_projection(self):
        adjacency = BlockAdjacency(3).with_connection(1, 3, ASC)  # 6ch into 6ch
        block = DAGBlock(_conv_block_spec(depth=3, channels=6, in_channels=2), adjacency, rng=0)
        assert len(block.projections) == 0

    def test_spiking_block_uses_lif_neurons(self):
        block = DAGBlock(_conv_block_spec(), spiking=True, rng=0)
        assert sum(1 for m in block.modules() if isinstance(m, LIFNeuron)) == 4
        assert not any(isinstance(m, ReLU) for m in block.modules())

    def test_ann_block_uses_relu(self):
        block = DAGBlock(_conv_block_spec(), spiking=False, rng=0)
        assert not any(isinstance(m, LIFNeuron) for m in block.modules())
        assert sum(1 for m in block.modules() if isinstance(m, ReLU)) == 4

    def test_incompatible_adjacency_rejected(self):
        spec = BlockSpec(in_channels=4, layers=[LayerSpec("conv1x1", 8), LayerSpec("dwconv3x3", 8), LayerSpec("conv1x1", 4)])
        with pytest.raises(ValueError):
            DAGBlock(spec, BlockAdjacency(3).with_connection(0, 2, DSC), rng=0)


class TestDAGBlockForward:
    def test_output_shape_preserved(self, rng):
        block = DAGBlock(_conv_block_spec(depth=4, channels=6, in_channels=3), rng=0)
        out = block(Tensor(rng.random((2, 3, 8, 8))))
        assert out.shape == (2, 6, 8, 8)

    @pytest.mark.parametrize("code", [DSC, ASC])
    def test_output_shape_with_skips(self, rng, code):
        adjacency = BlockAdjacency.with_final_layer_skips(4, 3, code)
        block = DAGBlock(_conv_block_spec(depth=4, channels=6, in_channels=3), adjacency, rng=0)
        out = block(Tensor(rng.random((2, 3, 8, 8))))
        assert out.shape == (2, 6, 8, 8)

    def test_asc_skip_changes_output(self, rng):
        """Adding an ASC connection must change the function (same weights otherwise)."""
        spec = _conv_block_spec(depth=3, channels=6, in_channels=6)
        x = Tensor(rng.random((1, 6, 6, 6)))
        plain = DAGBlock(spec, BlockAdjacency(3), rng=7)
        skipped = DAGBlock(spec, BlockAdjacency(3).with_connection(0, 3, ASC), rng=7)
        skipped.load_state_dict(plain.state_dict(), strict=False)
        assert not np.allclose(plain(x).data, skipped(x).data)

    def test_gradients_flow_through_skip_paths(self, rng):
        adjacency = BlockAdjacency(4).with_connection(0, 4, DSC).with_connection(1, 3, ASC)
        block = DAGBlock(_conv_block_spec(depth=4, channels=4, in_channels=2), adjacency, rng=0)
        x = Tensor(rng.random((1, 2, 6, 6)), requires_grad=True)
        block(x).sum().backward()
        assert x.grad is not None and np.abs(x.grad).sum() > 0
        for param in block.parameters():
            assert param.grad is not None

    def test_spiking_block_emits_binary_spikes(self, rng):
        block = DAGBlock(_conv_block_spec(depth=2, channels=4, in_channels=2), spiking=True, rng=0)
        reset_states(block)
        out = block(Tensor(rng.random((1, 2, 5, 5)) * 2.0))
        assert set(np.unique(out.data)).issubset({0.0, 1.0})

    def test_weight_sharing_across_adjacencies(self):
        """Layers whose shapes do not change must transfer verbatim between variants."""
        spec = _conv_block_spec(depth=3, channels=6, in_channels=6)
        plain = DAGBlock(spec, BlockAdjacency(3), rng=0)
        dsc = DAGBlock(spec, BlockAdjacency(3).with_connection(0, 3, DSC), rng=1)
        skipped = dsc.load_state_dict(plain.state_dict(), strict=False)
        # the concatenation grows layer 2's conv, which must be among the skipped keys
        assert any("layers.2.conv.weight" in key for key in skipped)
        np.testing.assert_allclose(dsc.layers[0].conv.weight.data, plain.layers[0].conv.weight.data)


class TestAuxiliaryModules:
    def test_stem_shapes(self, rng):
        stem = Stem(2, 8, rng=0)
        assert stem(Tensor(rng.random((2, 2, 8, 8)))).shape == (2, 8, 8, 8)

    def test_transition_halves_resolution(self, rng):
        transition = TransitionLayer(8, 12, rng=0)
        assert transition(Tensor(rng.random((2, 8, 8, 8)))).shape == (2, 12, 4, 4)

    def test_classifier_head_ann(self, rng):
        head = ClassifierHead(8, 5, spiking=False, rng=0)
        assert head(Tensor(rng.random((3, 8, 4, 4)))).shape == (3, 5)
        assert head.readout is None

    def test_classifier_head_snn_accumulates(self, rng):
        head = ClassifierHead(8, 5, spiking=True, rng=0)
        x = Tensor(rng.random((2, 8, 4, 4)))
        first = head(x).data.copy()
        second = head(x).data
        assert isinstance(head.readout, LeakyIntegrator)
        assert not np.allclose(first, second)  # integrates across calls until reset

    def test_neuron_config_factories(self):
        config = NeuronConfig(beta=0.7, threshold=1.2, reset_mechanism="zero", readout_beta=0.8)
        neuron = config.make_neuron()
        assert neuron.beta == 0.7 and neuron.threshold == 1.2 and neuron.reset_mechanism == "zero"
        assert config.make_readout().beta == 0.8

    def test_spiking_stem_and_transition(self, rng):
        stem = Stem(2, 4, spiking=True, rng=0)
        transition = TransitionLayer(4, 4, spiking=True, rng=0)
        reset_states(stem)
        reset_states(transition)
        out = transition(stem(Tensor(rng.random((1, 2, 8, 8)))))
        assert out.shape == (1, 4, 4, 4)
