"""Tests of the training harness: trainers, callbacks, evaluation, parallel map."""

import numpy as np
import pytest

from repro.data.loaders import ArrayDataset
from repro.models import build_single_block_template
from repro.nn import Conv2d, GlobalAvgPool2d, Linear, ReLU, Sequential
from repro.snn import LeakyIntegrator, LIFNeuron
from repro.training import (
    EarlyStopping,
    SNNTrainer,
    SNNTrainingConfig,
    Trainer,
    TrainingConfig,
    TrainingHistory,
    evaluate_classifier,
    evaluate_with_spikes,
    parallel_map,
)
from repro.training.trainer import _build_optimizer, _build_scheduler
from repro.nn.optim import SGD, Adam
from repro.tensor import Tensor


def _ann(num_classes=2, seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2d(1, 4, 3, padding=1, rng=rng),
        ReLU(),
        GlobalAvgPool2d(),
        Linear(4, num_classes, rng=rng),
    )


def _snn(num_classes=2, seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2d(1, 4, 3, padding=1, rng=rng),
        LIFNeuron(beta=0.9),
        GlobalAvgPool2d(),
        Linear(4, num_classes, rng=rng),
        LeakyIntegrator(beta=0.9),
    )


class TestTrainingHistory:
    def test_record_and_best(self):
        history = TrainingHistory()
        history.record(1.0, 0.5, 0.6, 0.1)
        history.record(0.5, 0.7, 0.8, 0.1)
        history.record(0.4, 0.8, 0.7, 0.1)
        assert history.num_epochs == 3
        assert history.best_val_accuracy == 0.8
        assert history.best_epoch == 1
        assert set(history.as_dict()) == {"train_loss", "train_accuracy", "val_accuracy", "learning_rate"}

    def test_empty_history(self):
        history = TrainingHistory()
        assert history.best_val_accuracy == 0.0
        assert history.best_epoch == -1


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=2)
        assert not stopper.update(0.5)
        assert not stopper.update(0.4)
        assert stopper.update(0.3)

    def test_improvement_resets_counter(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(0.5)
        stopper.update(0.4)
        stopper.update(0.6)  # improvement
        assert not stopper.update(0.5)

    def test_min_delta(self):
        stopper = EarlyStopping(patience=1, min_delta=0.1)
        stopper.update(0.5)
        assert stopper.update(0.55)  # not enough improvement

    def test_reset(self):
        stopper = EarlyStopping(patience=1)
        stopper.update(0.5)
        stopper.update(0.4)
        stopper.reset()
        assert not stopper.should_stop and stopper.best is None

    def test_invalid_patience(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)


class TestTrainerANN:
    def test_learns_separable_problem(self, two_class_splits):
        model = _ann()
        trainer = Trainer(TrainingConfig(epochs=12, batch_size=8, learning_rate=0.1, optimizer="adam", seed=0))
        history = trainer.fit_splits(model, two_class_splits)
        assert history.num_epochs <= 12
        assert trainer.evaluate(model, two_class_splits.test) >= 0.75

    def test_loss_decreases(self, two_class_splits):
        model = _ann()
        trainer = Trainer(TrainingConfig(epochs=8, batch_size=8, learning_rate=0.1, optimizer="adam"))
        history = trainer.fit_splits(model, two_class_splits)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_early_stopping_cuts_epochs(self, two_class_splits):
        model = _ann()
        config = TrainingConfig(epochs=30, batch_size=8, learning_rate=0.1, optimizer="adam", early_stopping_patience=2)
        history = Trainer(config).fit_splits(model, two_class_splits)
        assert history.num_epochs < 30

    def test_evaluate_classifier_with_confusion(self, two_class_splits):
        model = _ann()
        acc, confusion = evaluate_classifier(model, two_class_splits.test, return_confusion=True)
        assert confusion.shape == (2, 2)
        assert confusion.sum() == len(two_class_splits.test)
        assert 0.0 <= acc <= 1.0

    def test_model_left_in_eval_mode_after_fit(self, two_class_splits):
        model = _ann()
        Trainer(TrainingConfig(epochs=1, batch_size=8)).fit_splits(model, two_class_splits)
        assert not model.training

    def test_optimizer_and_scheduler_factories(self):
        model = _ann()
        assert isinstance(_build_optimizer(model, TrainingConfig(optimizer="sgd")), SGD)
        assert isinstance(_build_optimizer(model, TrainingConfig(optimizer="adam")), Adam)
        with pytest.raises(ValueError):
            _build_optimizer(model, TrainingConfig(optimizer="rmsprop"))
        opt = _build_optimizer(model, TrainingConfig())
        for name in ("constant", "step", "cosine"):
            _build_scheduler(opt, TrainingConfig(scheduler=name))
        with pytest.raises(ValueError):
            _build_scheduler(opt, TrainingConfig(scheduler="exponential"))

    def test_config_with_overrides(self):
        config = TrainingConfig(epochs=3).with_overrides(epochs=7, learning_rate=0.5)
        assert config.epochs == 7 and config.learning_rate == 0.5


class TestSNNTrainer:
    def test_learns_separable_problem_with_bptt(self, two_class_splits):
        model = _snn()
        config = SNNTrainingConfig(epochs=10, batch_size=8, learning_rate=0.1, optimizer="adam", num_steps=5, seed=0)
        trainer = SNNTrainer(config)
        trainer.fit_splits(model, two_class_splits)
        assert trainer.evaluate(model, two_class_splits.test) >= 0.75

    def test_evaluate_with_firing_rate(self, two_class_splits):
        model = _snn()
        trainer = SNNTrainer(SNNTrainingConfig(epochs=1, batch_size=8, num_steps=4))
        trainer.fit_splits(model, two_class_splits)
        accuracy, stats = trainer.evaluate_with_firing_rate(model, two_class_splits.test)
        assert 0.0 <= accuracy <= 1.0
        assert 0.0 <= stats.average_firing_rate <= 1.0
        assert stats.num_steps == 4

    def test_runner_configuration(self):
        trainer = SNNTrainer(SNNTrainingConfig(num_steps=7, readout="spike_count"))
        runner = trainer.make_runner(_snn())
        assert runner.num_steps == 7 and runner.readout == "spike_count"

    def test_evaluate_with_spikes_function(self, two_class_splits):
        model = _snn()
        trainer = SNNTrainer(SNNTrainingConfig(epochs=1, num_steps=3, batch_size=8))
        runner = trainer.make_runner(model)
        accuracy, stats = evaluate_with_spikes(runner, model, two_class_splits.test, batch_size=8)
        assert 0.0 <= accuracy <= 1.0 and len(stats.per_layer_rate) == 1


class TestParallelMap:
    def test_sequential_fallback(self):
        assert parallel_map(lambda x: x * 2, [1, 2, 3], workers=1) == [2, 4, 6]

    def test_preserves_order_with_workers(self):
        result = parallel_map(_square, list(range(8)), workers=2)
        assert result == [x * x for x in range(8)]

    def test_empty_input(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_single_item_stays_sequential(self):
        assert parallel_map(lambda x: x + 1, [41], workers=8) == [42]


def _square(x):
    return x * x
