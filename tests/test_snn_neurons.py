"""Tests of the spiking neuron dynamics and surrogate gradients."""

import numpy as np
import pytest

from repro.snn import (
    ATanSurrogate,
    FastSigmoidSurrogate,
    IFNeuron,
    LeakyIntegrator,
    LIFNeuron,
    StraightThroughSurrogate,
    TriangularSurrogate,
    get_surrogate,
    spike_function,
)
from repro.tensor import Tensor


class TestSurrogates:
    def test_fast_sigmoid_peak_at_threshold(self):
        surrogate = FastSigmoidSurrogate(slope=25.0)
        values = surrogate.derivative(np.array([-1.0, 0.0, 1.0]))
        assert values[1] == pytest.approx(1.0)
        assert values[0] < values[1] and values[2] < values[1]

    def test_fast_sigmoid_symmetric(self):
        surrogate = FastSigmoidSurrogate()
        assert surrogate.derivative(np.array([0.3])) == pytest.approx(surrogate.derivative(np.array([-0.3])))

    def test_atan_positive_everywhere(self):
        surrogate = ATanSurrogate(alpha=2.0)
        assert np.all(surrogate.derivative(np.linspace(-5, 5, 21)) > 0)

    def test_triangular_support(self):
        surrogate = TriangularSurrogate(width=1.0)
        assert surrogate.derivative(np.array([2.0])) == 0.0
        assert surrogate.derivative(np.array([0.0])) == pytest.approx(1.0)

    def test_straight_through_window(self):
        surrogate = StraightThroughSurrogate(window=0.5)
        np.testing.assert_allclose(surrogate.derivative(np.array([-0.4, 0.0, 0.6])), [1.0, 1.0, 0.0])

    def test_registry_lookup(self):
        assert isinstance(get_surrogate("fast_sigmoid"), FastSigmoidSurrogate)
        assert isinstance(get_surrogate("atan", alpha=3.0), ATanSurrogate)
        instance = TriangularSurrogate()
        assert get_surrogate(instance) is instance

    def test_registry_unknown_raises(self):
        with pytest.raises(KeyError):
            get_surrogate("nope")

    @pytest.mark.parametrize("cls", [FastSigmoidSurrogate, ATanSurrogate, TriangularSurrogate, StraightThroughSurrogate])
    def test_invalid_parameters_raise(self, cls):
        with pytest.raises(ValueError):
            cls(-1.0)


class TestSpikeFunction:
    def test_forward_is_heaviside(self):
        membrane = Tensor(np.array([0.2, 1.0, 1.7]))
        spikes = spike_function(membrane, threshold=1.0, surrogate=FastSigmoidSurrogate())
        np.testing.assert_allclose(spikes.data, [0.0, 1.0, 1.0])

    def test_backward_uses_surrogate(self):
        surrogate = FastSigmoidSurrogate(slope=10.0)
        membrane = Tensor(np.array([0.5, 1.5]), requires_grad=True)
        spikes = spike_function(membrane, threshold=1.0, surrogate=surrogate)
        spikes.sum().backward()
        expected = surrogate.derivative(membrane.data - 1.0)
        np.testing.assert_allclose(membrane.grad, expected)

    def test_no_graph_without_grad(self):
        membrane = Tensor(np.array([2.0]))
        spikes = spike_function(membrane, 1.0, FastSigmoidSurrogate())
        assert not spikes.requires_grad


class TestLIFNeuron:
    def test_subthreshold_input_never_spikes(self):
        neuron = LIFNeuron(beta=0.5, threshold=1.0)
        neuron.reset_state()
        for _ in range(20):
            spikes = neuron(Tensor(np.array([0.3])))
        assert spikes.data[0] == 0.0

    def test_strong_input_spikes_immediately(self):
        neuron = LIFNeuron(beta=0.9, threshold=1.0)
        neuron.reset_state()
        spikes = neuron(Tensor(np.array([1.5])))
        assert spikes.data[0] == 1.0

    def test_membrane_decay_without_input(self):
        neuron = LIFNeuron(beta=0.5, threshold=10.0)
        neuron.reset_state()
        neuron(Tensor(np.array([1.0])))
        neuron(Tensor(np.array([0.0])))
        assert neuron.membrane.data[0] == pytest.approx(0.5)
        neuron(Tensor(np.array([0.0])))
        assert neuron.membrane.data[0] == pytest.approx(0.25)

    def test_soft_reset_subtracts_threshold(self):
        neuron = LIFNeuron(beta=1.0, threshold=1.0, reset_mechanism="subtract")
        neuron.reset_state()
        neuron(Tensor(np.array([1.4])))  # spikes, membrane 1.4
        neuron(Tensor(np.array([0.0])))
        # membrane = (1.4 - 1.0) * 1.0 + 0 = 0.4
        assert neuron.membrane.data[0] == pytest.approx(0.4)

    def test_hard_reset_zeroes_membrane(self):
        neuron = LIFNeuron(beta=1.0, threshold=1.0, reset_mechanism="zero")
        neuron.reset_state()
        neuron(Tensor(np.array([1.4])))
        neuron(Tensor(np.array([0.0])))
        assert neuron.membrane.data[0] == pytest.approx(0.0)

    def test_no_reset_accumulates(self):
        neuron = LIFNeuron(beta=1.0, threshold=1.0, reset_mechanism="none")
        neuron.reset_state()
        neuron(Tensor(np.array([1.4])))
        neuron(Tensor(np.array([0.6])))
        assert neuron.membrane.data[0] == pytest.approx(2.0)

    def test_integration_over_time_reaches_threshold(self):
        neuron = LIFNeuron(beta=1.0, threshold=1.0)
        neuron.reset_state()
        outputs = [neuron(Tensor(np.array([0.4]))).data[0] for _ in range(3)]
        assert outputs == [0.0, 0.0, 1.0]

    def test_reset_state_clears(self):
        neuron = LIFNeuron()
        neuron(Tensor(np.array([2.0])))
        neuron.reset_state()
        assert neuron.membrane is None and neuron.previous_spikes is None

    def test_detach_state_cuts_graph(self):
        neuron = LIFNeuron()
        x = Tensor(np.array([2.0]), requires_grad=True)
        neuron(x)
        neuron.detach_state()
        assert not neuron.membrane.requires_grad

    def test_record_spikes_and_firing_rate(self):
        neuron = LIFNeuron(beta=1.0, threshold=1.0)
        neuron.record_spikes = True
        neuron.reset_state()
        for value in (1.5, 0.0, 0.0, 1.5):
            neuron(Tensor(np.array([value])))
        assert len(neuron.spike_record) == 4
        assert neuron.firing_rate() == pytest.approx(0.5)

    def test_invalid_beta_raises(self):
        with pytest.raises(ValueError):
            LIFNeuron(beta=0.0)
        with pytest.raises(ValueError):
            LIFNeuron(beta=1.5)

    def test_invalid_threshold_and_reset(self):
        with pytest.raises(ValueError):
            LIFNeuron(threshold=-1.0)
        with pytest.raises(ValueError):
            LIFNeuron(reset_mechanism="bogus")

    def test_learnable_beta_not_supported(self):
        with pytest.raises(NotImplementedError):
            LIFNeuron(learn_beta=True)

    def test_gradient_flows_through_time(self):
        """BPTT: gradient of later spikes w.r.t. earlier input must be non-zero."""
        neuron = LIFNeuron(beta=0.9, threshold=1.0)
        neuron.reset_state()
        x0 = Tensor(np.array([0.6]), requires_grad=True)
        neuron(x0)
        out = neuron(Tensor(np.array([0.6])))
        out.sum().backward()
        assert x0.grad is not None and x0.grad[0] != 0.0


class TestIFNeuron:
    def test_no_leak(self):
        neuron = IFNeuron(threshold=10.0)
        neuron.reset_state()
        neuron(Tensor(np.array([1.0])))
        neuron(Tensor(np.array([0.0])))
        assert neuron.membrane.data[0] == pytest.approx(1.0)

    def test_spikes_when_threshold_crossed(self):
        neuron = IFNeuron(threshold=1.0)
        neuron.reset_state()
        outputs = [neuron(Tensor(np.array([0.5]))).data[0] for _ in range(2)]
        assert outputs == [0.0, 1.0]


class TestLeakyIntegrator:
    def test_accumulates_with_decay(self):
        readout = LeakyIntegrator(beta=0.5)
        readout.reset_state()
        readout(Tensor(np.array([1.0])))
        out = readout(Tensor(np.array([1.0])))
        assert out.data[0] == pytest.approx(1.5)

    def test_never_spikes_and_keeps_graph(self):
        readout = LeakyIntegrator(beta=0.9)
        readout.reset_state()
        x = Tensor(np.array([2.0]), requires_grad=True)
        out = readout(x)
        out = readout(Tensor(np.array([0.0])))
        out.sum().backward()
        assert x.grad[0] == pytest.approx(0.9)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            LeakyIntegrator(beta=0.0)
