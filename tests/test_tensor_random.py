"""Tests of the deterministic RNG helpers and the gradient checker itself."""

import numpy as np
import pytest

from repro.tensor import Tensor, gradcheck, numerical_gradient, ops
from repro.tensor.random import default_rng, seed_everything, spawn_rngs


class TestDefaultRng:
    def test_integer_seed_is_deterministic(self):
        a = default_rng(42).random(5)
        b = default_rng(42).random(5)
        np.testing.assert_allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert default_rng(gen) is gen

    def test_seed_everything_installs_global_default(self):
        seed_everything(7)
        a = default_rng().random(3)
        b = default_rng().random(3)
        np.testing.assert_allclose(a, b)

    def test_spawn_rngs_are_independent_and_reproducible(self):
        children_a = spawn_rngs(3, 4)
        children_b = spawn_rngs(3, 4)
        assert len(children_a) == 4
        for a, b in zip(children_a, children_b):
            np.testing.assert_allclose(a.random(3), b.random(3))
        # different children produce different streams
        assert not np.allclose(children_a[0].random(5), children_a[1].random(5))


class TestGradcheckUtility:
    def test_detects_correct_gradient(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        ok, err = gradcheck(lambda x: ops.tanh(x), [x])
        assert ok and err < 1e-4

    def test_detects_wrong_gradient(self, rng):
        """A deliberately broken op must fail the check."""
        from repro.tensor.tensor import Tensor as T, is_grad_enabled

        def broken_double(x):
            out = T(x.data * 2.0, requires_grad=True, _prev=(x,))

            def _backward():
                x.accumulate_grad(out.grad * 3.0)  # wrong: should be 2.0

            out._backward = _backward
            return out

        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        ok, err = gradcheck(broken_double, [x])
        assert not ok
        assert err > 0.5

    def test_numerical_gradient_of_square(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        num = numerical_gradient(lambda x: x * x, [x], 0)
        np.testing.assert_allclose(num, 2 * x.data, atol=1e-5)

    def test_gradcheck_skips_non_grad_inputs(self, rng):
        a = Tensor(rng.normal(size=(2,)), requires_grad=True)
        b = Tensor(rng.normal(size=(2,)))  # constant
        ok, _ = gradcheck(lambda a, b: a * b, [a, b])
        assert ok
