"""Tests of input encoders, the temporal runner and BPTT wiring."""

import numpy as np
import pytest

from repro.nn import Conv2d, GlobalAvgPool2d, Linear, Sequential
from repro.snn import (
    ConstantCurrentEncoder,
    LatencyEncoder,
    LeakyIntegrator,
    LIFNeuron,
    RateEncoder,
    TemporalRunner,
    reset_states,
    run_temporal,
)
from repro.snn.encoding import EventFrameEncoder, encode_batch
from repro.snn.temporal import aggregate_outputs, detach_states
from repro.tensor import Tensor


class TestEncoders:
    def test_rate_encoder_statistics(self):
        encoder = RateEncoder(num_steps=200, rng=np.random.default_rng(0))
        batch = np.full((1, 1, 4, 4), 0.3)
        steps = encoder.encode(batch)
        assert len(steps) == 200
        mean_rate = np.mean([s.mean() for s in steps])
        assert abs(mean_rate - 0.3) < 0.05

    def test_rate_encoder_binary_output(self):
        encoder = RateEncoder(num_steps=5, rng=np.random.default_rng(0))
        steps = encoder.encode(np.random.default_rng(1).random((2, 1, 3, 3)))
        for step in steps:
            assert set(np.unique(step)).issubset({0.0, 1.0})

    def test_latency_encoder_bright_spikes_early(self):
        encoder = LatencyEncoder(num_steps=10)
        batch = np.array([[[[1.0, 0.5, 0.0]]]])
        steps = encoder.encode(batch)
        assert steps[0][0, 0, 0, 0] == 1.0      # brightest fires at t=0
        assert steps[4][0, 0, 0, 1] == 1.0      # mid intensity fires mid-window
        assert all(step[0, 0, 0, 2] == 0.0 for step in steps)  # below threshold: silent

    def test_latency_encoder_single_spike_per_pixel(self):
        encoder = LatencyEncoder(num_steps=8)
        steps = encoder.encode(np.random.default_rng(0).random((1, 1, 4, 4)))
        total = np.sum([s for s in steps], axis=0)
        assert np.all(total <= 1.0)

    def test_constant_current_repeats_input(self):
        encoder = ConstantCurrentEncoder(num_steps=3)
        batch = np.random.default_rng(0).random((2, 1, 2, 2))
        steps = encoder.encode(batch)
        assert len(steps) == 3
        for step in steps:
            np.testing.assert_allclose(step, batch)

    def test_event_frame_encoder_slices_time_axis(self):
        encoder = EventFrameEncoder(num_steps=4)
        batch = np.random.default_rng(0).random((2, 4, 2, 3, 3))
        steps = encoder.encode(batch)
        assert len(steps) == 4
        np.testing.assert_allclose(steps[2], batch[:, 2])

    def test_event_frame_encoder_truncates_and_repeats(self):
        batch = np.random.default_rng(0).random((1, 3, 1, 2, 2))
        truncated = EventFrameEncoder(num_steps=2).encode(batch)
        assert len(truncated) == 2
        extended = EventFrameEncoder(num_steps=5).encode(batch)
        np.testing.assert_allclose(extended[4], batch[:, 2])

    def test_encode_batch_auto_selects_encoder(self):
        static = np.random.default_rng(0).random((2, 1, 4, 4))
        temporal = np.random.default_rng(0).random((2, 3, 1, 4, 4))
        assert len(encode_batch(static, None, 5)) == 5
        assert len(encode_batch(temporal, None, 3)) == 3

    def test_invalid_num_steps(self):
        with pytest.raises(ValueError):
            ConstantCurrentEncoder(0)


def _tiny_snn(rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    return Sequential(
        Conv2d(1, 3, 3, padding=1, rng=rng),
        LIFNeuron(beta=0.9),
        GlobalAvgPool2d(),
        Linear(3, 2, rng=rng),
        LeakyIntegrator(beta=0.9),
    )


class TestAggregateAndReset:
    def test_aggregate_membrane_mean(self):
        outputs = [Tensor(np.full((2, 3), float(i))) for i in range(4)]
        agg = aggregate_outputs(outputs, "membrane_mean")
        np.testing.assert_allclose(agg.data, np.full((2, 3), 1.5))

    def test_aggregate_spike_count(self):
        outputs = [Tensor(np.ones((1, 2))) for _ in range(3)]
        np.testing.assert_allclose(aggregate_outputs(outputs, "spike_count").data, np.full((1, 2), 3.0))

    def test_aggregate_last(self):
        outputs = [Tensor(np.zeros((1, 1))), Tensor(np.ones((1, 1)))]
        assert aggregate_outputs(outputs, "membrane_last").data[0, 0] == 1.0

    def test_aggregate_invalid_readout(self):
        with pytest.raises(ValueError):
            aggregate_outputs([Tensor(np.zeros((1, 1)))], "bogus")

    def test_aggregate_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate_outputs([], "membrane_mean")

    def test_reset_states_clears_all_neurons(self):
        model = _tiny_snn()
        model(Tensor(np.random.default_rng(0).random((2, 1, 4, 4))))
        neurons = [m for m in model.modules() if isinstance(m, (LIFNeuron, LeakyIntegrator))]
        assert any(n.membrane is not None for n in neurons)
        reset_states(model)
        assert all(n.membrane is None for n in neurons)

    def test_detach_states(self):
        model = _tiny_snn()
        x = Tensor(np.random.default_rng(0).random((1, 1, 4, 4)), requires_grad=True)
        model(x)
        detach_states(model)
        neurons = [m for m in model.modules() if isinstance(m, LIFNeuron)]
        assert all(not n.membrane.requires_grad for n in neurons if n.membrane is not None)


class TestTemporalRunner:
    def test_output_shape_static_input(self):
        model = _tiny_snn()
        runner = TemporalRunner(model, num_steps=4)
        out = runner(np.random.default_rng(0).random((5, 1, 6, 6)))
        assert out.shape == (5, 2)

    def test_output_shape_temporal_input(self):
        model = Sequential(
            Conv2d(2, 3, 3, padding=1, rng=np.random.default_rng(0)),
            LIFNeuron(),
            GlobalAvgPool2d(),
            Linear(3, 4, rng=np.random.default_rng(0)),
            LeakyIntegrator(),
        )
        runner = TemporalRunner(model, num_steps=3)
        out = runner(np.random.default_rng(0).random((2, 3, 2, 5, 5)))
        assert out.shape == (2, 4)

    def test_runner_resets_between_calls(self):
        model = _tiny_snn()
        runner = TemporalRunner(model, num_steps=3)
        x = np.random.default_rng(0).random((2, 1, 4, 4))
        first = runner(x).data
        second = runner(x).data
        np.testing.assert_allclose(first, second)

    def test_step_callback_invoked(self):
        model = _tiny_snn()
        seen = []
        run_temporal(model, np.random.default_rng(0).random((1, 1, 4, 4)), num_steps=4,
                     step_callback=lambda t, out: seen.append(t))
        assert seen == [0, 1, 2, 3]

    def test_truncation_detaches_state(self):
        model = _tiny_snn()
        out = run_temporal(model, np.random.default_rng(0).random((1, 1, 4, 4)), num_steps=6, truncation=2)
        assert out.shape == (1, 2)

    def test_bptt_gradients_reach_weights(self):
        model = _tiny_snn()
        runner = TemporalRunner(model, num_steps=4)
        out = runner(np.random.default_rng(0).random((2, 1, 4, 4)))
        out.sum().backward()
        conv = model[0]
        assert conv.weight.grad is not None and np.abs(conv.weight.grad).sum() > 0

    def test_invalid_arguments(self):
        model = _tiny_snn()
        with pytest.raises(ValueError):
            TemporalRunner(model, num_steps=0)
        with pytest.raises(ValueError):
            TemporalRunner(model, num_steps=2, readout="bogus")

    def test_readouts_differ_but_share_shape(self):
        model = _tiny_snn()
        x = np.random.default_rng(0).random((2, 1, 4, 4))
        mean_readout = TemporalRunner(model, num_steps=6, readout="membrane_mean")(x).data
        count_readout = TemporalRunner(model, num_steps=6, readout="spike_count")(x).data
        assert mean_readout.shape == count_readout.shape
        # summing over 6 steps scales the aggregate relative to averaging
        np.testing.assert_allclose(count_readout, mean_readout * 6, atol=1e-9)
