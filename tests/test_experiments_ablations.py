"""Smoke tests of the ablation harness at a micro scale.

These verify that every ablation runs end to end, produces one value per
configuration and records the details the benchmarks print; the quantitative
comparisons only become meaningful at larger scales (see EXPERIMENTS.md).
"""

import pytest

from repro.experiments.ablations import (
    run_acquisition_ablation,
    run_dsc_vs_asc_energy,
    run_kernel_ablation,
    run_weight_sharing_ablation,
)
from repro.experiments.config import SMOKE

#: micro scale: even smaller than "smoke" so the four ablations together stay fast
MICRO = SMOKE.with_overrides(
    num_samples_dvs=40,
    image_size=8,
    num_steps=3,
    stage_channels=(3, 4),
    single_block_channels=3,
    ann_epochs=1,
    snn_epochs=1,
    candidate_finetune_epochs=1,
    bo_iterations=1,
    bo_initial_points=2,
)


class TestAblationHarness:
    def test_acquisition_ablation_runs(self):
        result = run_acquisition_ablation(scale=MICRO, acquisitions=["ucb", "ei"], seed=0)
        assert set(result.values) == {"ucb", "ei"}
        assert all(0.0 <= value <= 1.0 for value in result.values.values())
        assert result.best() in result.values
        assert set(result.details) == {"ucb", "ei"}

    def test_kernel_ablation_runs(self):
        result = run_kernel_ablation(scale=MICRO, seed=0)
        assert set(result.values) == {"hamming", "matern52", "rbf"}

    def test_weight_sharing_ablation_runs(self):
        result = run_weight_sharing_ablation(scale=MICRO, seed=0)
        assert set(result.values) == {"shared", "from_scratch"}

    def test_dsc_vs_asc_energy_structure(self):
        result = run_dsc_vs_asc_energy(scale=MICRO, seed=0)
        assert set(result.values) == {"dsc", "asc"}
        dsc, asc = result.details["dsc"], result.details["asc"]
        # the structural halves of the Section III-A argument hold at any scale
        assert dsc["macs_per_step"] > asc["macs_per_step"]
        assert dsc["snn_energy_nj"] >= 0 and asc["snn_energy_nj"] >= 0
        assert len(dsc["points"]) == 4
